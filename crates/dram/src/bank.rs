//! Per-bank state: row buffer, timing windows, PRAC activation counters and
//! the in-DRAM mitigation queue.
//!
//! The hot timing state (open row + the three earliest-legal-time windows)
//! lives in a struct-of-arrays [`BankTimingTable`] so the device can scan
//! and min-reduce across every bank of a channel without striding over the
//! cold per-bank state (PRAC counter maps and mitigation queues), which
//! stays in [`BankMeta`].  [`Bank`] composes a one-entry table with one
//! meta record to preserve the original single-bank API for unit and
//! property tests, and [`BankRef`] is the read-only per-bank view the
//! device hands out.

use std::collections::HashMap;

use prac_core::queue::{MitigationQueue, QueueKind, RowIndex};

use crate::command::IssueError;
use crate::timing::DramTimingParams;

/// Sentinel stored in [`BankTimingTable::open_row`] for a precharged bank.
///
/// Row indices are physical row numbers (< 2^31 in any real geometry), so
/// `u32::MAX` can never collide with an open row.
pub const ROW_NONE: u32 = u32::MAX;

/// Low bits of each [`BankTimingTable::packed_transition`] lane reserved
/// for the bank index (so the table is capped at 2^16 banks).
const INDEX_BITS: u32 = 16;

/// Largest tick that packs without colliding with the index bits.
const TICK_CEIL: u64 = u64::MAX >> INDEX_BITS;

/// Struct-of-arrays timing state for every bank of one channel.
///
/// Each index holds the state the old per-bank struct kept inline:
///
/// * `open_row` — currently open row, [`ROW_NONE`] when precharged,
/// * `next_act` — earliest tick an ACT may be issued (tRC/tRP),
/// * `next_pre` — earliest tick a PRE may be issued (tRAS / recovery),
/// * `next_column` — earliest tick a RD/WR may be issued (tRCD/tCCD).
///
/// `packed_transition` is derived state: bank `i`'s next transition tick
/// (see [`BankTimingTable::next_transition_at`]) packed into the high
/// `64 - INDEX_BITS` bits with the bank index below.  Every mutator
/// refreshes the touched lane, which keeps the channel-wide min-reduce —
/// the hot read in the event engine's wake-up computation, called far more
/// often than any timing window moves — down to a single loop-carried
/// `min` per bank over one contiguous array.
#[derive(Debug, Clone)]
pub struct BankTimingTable {
    open_row: Vec<u32>,
    next_act: Vec<u64>,
    next_pre: Vec<u64>,
    next_column: Vec<u64>,
    packed_transition: Vec<u64>,
}

impl BankTimingTable {
    /// Creates timing state for `banks` idle, fully-precharged banks.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        debug_assert!(
            banks < (1 << INDEX_BITS),
            "bank index must fit the packed-transition low bits"
        );
        Self {
            open_row: vec![ROW_NONE; banks],
            next_act: vec![0; banks],
            next_pre: vec![0; banks],
            next_column: vec![0; banks],
            // Idle precharged banks can transition (ACT) at tick 0.
            packed_transition: (0..banks as u64).collect(),
        }
    }

    /// Number of banks tracked by the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// Whether the table tracks no banks at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The currently open row of bank `i`, if the bank is active.
    #[must_use]
    pub fn open_row(&self, i: usize) -> Option<u32> {
        let row = self.open_row[i];
        (row != ROW_NONE).then_some(row)
    }

    /// Earliest tick at which an ACT to bank `i` is legal.
    #[must_use]
    pub fn act_ready_at(&self, i: usize) -> u64 {
        self.next_act[i]
    }

    /// Earliest tick at which *any* command to bank `i` can change its
    /// state — the bank state machine's next possible transition.
    ///
    /// * Bank precharged: the next transition is an ACT (gated by tRC/tRP).
    /// * Row open: the earliest of a column access (tRCD/tCCD) or a
    ///   precharge (tRAS / write recovery).
    ///
    /// The returned tick never moves backwards while the bank is idle, which
    /// is what lets an event-driven scheduler sleep until it without
    /// re-polling.  Note this is a *bank-local* bound; channel-wide
    /// constraints (bus occupancy, rank ACT-to-ACT spacing, refresh
    /// blocking) can push the real issue time later.
    ///
    /// The select between the two cases is branchless: `open` is widened to
    /// an all-ones/all-zeros mask so the reduce over a whole channel never
    /// takes a data-dependent branch.
    #[must_use]
    pub fn next_transition_at(&self, i: usize) -> u64 {
        let mask = u64::from(self.open_row[i] != ROW_NONE).wrapping_neg();
        let open_bound = self.next_column[i].min(self.next_pre[i]);
        (open_bound & mask) | (self.next_act[i] & !mask)
    }

    /// Re-derives bank `i`'s `packed_transition` lane after its timing
    /// state moved.
    ///
    /// The `(tick, bank index)` pair packs into one `u64` — tick in the
    /// high `64 - INDEX_BITS` bits, index below — so the reduce is a
    /// packed argmin whose low bits break ties toward the lowest bank
    /// index.  Ticks are saturated at `2^48 - 1` before packing; real
    /// transition ticks sit many orders of magnitude below that bound (the
    /// livelock cap is tens of millions), so saturation never fires on a
    /// reachable schedule.
    fn refresh_packed(&mut self, i: usize) {
        let tick = self.next_transition_at(i);
        self.packed_transition[i] = (tick.min(TICK_CEIL) << INDEX_BITS) | i as u64;
    }

    /// The minimum of [`BankTimingTable::next_transition_at`] across every
    /// bank, or `u64::MAX` for an empty table.
    ///
    /// This is the channel-wide "something can happen next at" bound.  The
    /// mutators keep the packed `(tick, bank index)` lanes current, so the
    /// fold here streams one contiguous `u64` array with a single
    /// loop-carried `min` per bank — no select, no re-derivation — which
    /// is what the auto-vectorizer turns into the cheapest possible
    /// unsigned min-reduce.
    #[must_use]
    pub fn min_next_transition_at(&self) -> u64 {
        if self.packed_transition.is_empty() {
            return u64::MAX;
        }
        let mut packed_min = u64::MAX;
        for &packed in &self.packed_transition {
            packed_min = packed_min.min(packed);
        }
        packed_min >> INDEX_BITS
    }

    /// The minimum of [`BankTimingTable::next_transition_at`] across the
    /// contiguous bank range `[start, end)`, or `u64::MAX` for an empty
    /// range.
    ///
    /// The device's flat bank index is rank-major (rank `r`'s banks occupy
    /// `[r * banks_per_rank, (r + 1) * banks_per_rank)`), so this is the
    /// rank-local "something can happen next at" bound — the same packed
    /// argmin lane as the channel-wide reduce, folded over a subrange.
    #[must_use]
    pub fn min_next_transition_in(&self, start: usize, end: usize) -> u64 {
        let end = end.min(self.packed_transition.len());
        if start >= end {
            return u64::MAX;
        }
        let mut packed_min = u64::MAX;
        for &packed in &self.packed_transition[start..end] {
            packed_min = packed_min.min(packed);
        }
        packed_min >> INDEX_BITS
    }

    /// Checks whether activating a row of bank `i` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when a row is already open and
    /// [`IssueError::TooEarly`] when tRC/tRP have not elapsed.
    pub fn can_activate(&self, i: usize, now: u64) -> Result<(), IssueError> {
        if self.open_row[i] != ROW_NONE {
            return Err(IssueError::IllegalState {
                reason: "activate issued while another row is open",
            });
        }
        if now < self.next_act[i] {
            return Err(IssueError::TooEarly {
                ready_at: self.next_act[i],
            });
        }
        Ok(())
    }

    /// Opens `row` in bank `i` at `now`, arming the tRAS/tRCD/tRC windows.
    ///
    /// Timing state only — the caller pairs this with
    /// [`BankMeta::note_activation`] for the PRAC side.
    ///
    /// # Errors
    ///
    /// Propagates the legality checks of [`BankTimingTable::can_activate`].
    pub fn activate(
        &mut self,
        i: usize,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<(), IssueError> {
        self.can_activate(i, now)?;
        self.open_row[i] = row;
        self.next_pre[i] = now + timing.t_ras;
        self.next_column[i] = now + timing.t_rcd;
        self.next_act[i] = now + timing.t_rc;
        self.refresh_packed(i);
        Ok(())
    }

    /// Checks whether a precharge of bank `i` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::TooEarly`] when tRAS (or read/write recovery)
    /// has not elapsed. Precharging an already-closed bank is a no-op and is
    /// allowed.
    pub fn can_precharge(&self, i: usize, now: u64) -> Result<(), IssueError> {
        if self.open_row[i] == ROW_NONE {
            return Ok(());
        }
        if now < self.next_pre[i] {
            return Err(IssueError::TooEarly {
                ready_at: self.next_pre[i],
            });
        }
        Ok(())
    }

    /// Precharges (closes) bank `i` at `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`BankTimingTable::can_precharge`].
    pub fn precharge(
        &mut self,
        i: usize,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<(), IssueError> {
        self.can_precharge(i, now)?;
        if self.open_row[i] != ROW_NONE {
            self.open_row[i] = ROW_NONE;
            self.next_act[i] = self.next_act[i].max(now + timing.t_rp);
            self.refresh_packed(i);
        }
        Ok(())
    }

    /// Checks whether a column read/write of `row` in bank `i` at `now` is
    /// legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when the addressed row is not the
    /// open row, and [`IssueError::TooEarly`] before tRCD/tCCD elapse.
    pub fn can_access_column(&self, i: usize, row: RowIndex, now: u64) -> Result<(), IssueError> {
        match self.open_row[i] {
            open if open == row && open != ROW_NONE => {}
            ROW_NONE => {
                return Err(IssueError::IllegalState {
                    reason: "column access while the bank is precharged",
                })
            }
            _ => {
                return Err(IssueError::IllegalState {
                    reason: "column access to a row that is not the open row",
                })
            }
        }
        if now < self.next_column[i] {
            return Err(IssueError::TooEarly {
                ready_at: self.next_column[i],
            });
        }
        Ok(())
    }

    /// Performs a column read in bank `i` at `now`; returns the tick at
    /// which data has fully returned.
    ///
    /// # Errors
    ///
    /// Propagates [`BankTimingTable::can_access_column`].
    pub fn read(
        &mut self,
        i: usize,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.can_access_column(i, row, now)?;
        self.next_column[i] = now + timing.t_ccd;
        self.next_pre[i] = self.next_pre[i].max(now + timing.t_rtp);
        self.refresh_packed(i);
        Ok(now + timing.read_latency())
    }

    /// Performs a column write in bank `i` at `now`; returns the tick at
    /// which the write has been accepted (write data fully transferred).
    ///
    /// # Errors
    ///
    /// Propagates [`BankTimingTable::can_access_column`].
    pub fn write(
        &mut self,
        i: usize,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.can_access_column(i, row, now)?;
        self.next_column[i] = now + timing.t_ccd;
        self.next_pre[i] = self.next_pre[i].max(now + timing.t_cl + timing.t_bl + timing.t_wr);
        self.refresh_packed(i);
        Ok(now + timing.t_cl + timing.t_bl)
    }

    /// Applies a channel-wide blocking command (refresh or RFM) to bank
    /// `i`: the bank is precharged immediately and no command may be issued
    /// before `now + duration`.
    pub fn block_until(&mut self, i: usize, now: u64, duration: u64) {
        self.open_row[i] = ROW_NONE;
        let until = now + duration;
        self.next_act[i] = self.next_act[i].max(until);
        self.next_pre[i] = self.next_pre[i].max(until);
        self.next_column[i] = self.next_column[i].max(until);
        self.refresh_packed(i);
    }

    /// Applies [`BankTimingTable::block_until`] to every bank at once.
    pub fn block_all_until(&mut self, now: u64, duration: u64) {
        for i in 0..self.open_row.len() {
            self.block_until(i, now, duration);
        }
    }

    /// Applies [`BankTimingTable::block_until`] to the contiguous bank range
    /// `[start, end)` — the rank-local blocking primitive used by staggered
    /// refresh, where each rank's blackout starts at its own offset.
    pub fn block_range_until(&mut self, start: usize, end: usize, now: u64, duration: u64) {
        for i in start..end.min(self.open_row.len()) {
            self.block_until(i, now, duration);
        }
    }
}

/// Cold per-bank state: PRAC activation counters and the in-DRAM
/// mitigation queue, plus the activation tallies derived from them.
#[derive(Debug, Clone)]
pub struct BankMeta {
    /// Per-row PRAC activation counters (sparse; untouched rows are zero).
    counters: HashMap<RowIndex, u32>,
    /// In-DRAM mitigation queue for this bank.
    queue: Box<dyn MitigationQueue>,
    /// Number of activations since the bank was last mitigated or reset
    /// (used for ACB-RFM / BAT accounting by the controller via a getter).
    activations_since_rfm: u32,
    /// Lifetime activation count (statistics).
    total_activations: u64,
}

impl BankMeta {
    /// Creates the cold state for one bank with the chosen queue design.
    #[must_use]
    pub fn new(queue_kind: QueueKind) -> Self {
        Self {
            counters: HashMap::new(),
            queue: queue_kind.instantiate(),
            activations_since_rfm: 0,
            total_activations: 0,
        }
    }

    /// Records an activation of `row`: increments its PRAC counter, shows
    /// the new value to the mitigation queue and bumps the activation
    /// tallies.  Returns the row's new counter value.
    ///
    /// PRAC: the per-row counter is incremented (physically during the
    /// precharge read-modify-write; counted here at activation time, which
    /// is equivalent for threshold-crossing purposes).
    pub fn note_activation(&mut self, row: RowIndex) -> u32 {
        let counter = self.counters.entry(row).or_insert(0);
        *counter = counter.saturating_add(1);
        let value = *counter;
        self.queue.observe_activation(row, value);
        self.activations_since_rfm = self.activations_since_rfm.saturating_add(1);
        self.total_activations += 1;
        value
    }

    /// The PRAC counter value of `row`.
    #[must_use]
    pub fn counter(&self, row: RowIndex) -> u32 {
        self.counters.get(&row).copied().unwrap_or(0)
    }

    /// The maximum PRAC counter value across all rows of this bank.
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.counters.values().copied().max().unwrap_or(0)
    }

    /// Row currently nominated by the mitigation queue, if any.
    #[must_use]
    pub fn queue_head(&self) -> Option<RowIndex> {
        self.queue.peek()
    }

    /// Activations performed since the last RFM that reached this bank.
    #[must_use]
    pub fn activations_since_rfm(&self) -> u32 {
        self.activations_since_rfm
    }

    /// Lifetime activation count.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Mitigates the row nominated by the mitigation queue (if any),
    /// resetting its PRAC counter.  Returns the mitigated row.
    ///
    /// Called by the device when an RFM or a Targeted Refresh reaches the
    /// bank.  Also clears the per-bank ACB activation count.
    pub fn mitigate_queue_head(&mut self) -> Option<RowIndex> {
        let row = self.queue.pop_for_mitigation();
        if let Some(row) = row {
            self.counters.insert(row, 0);
        }
        self.activations_since_rfm = 0;
        row
    }

    /// Resets all PRAC counters and the mitigation queue (counter reset at
    /// tREFW).
    pub fn reset_counters(&mut self) {
        self.counters.clear();
        self.queue.reset();
    }

    /// Number of distinct rows with a non-zero PRAC counter.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.counters.values().filter(|&&c| c > 0).count()
    }
}

/// Read-only view of one bank: its slot in the shared timing table plus its
/// cold state.  This is what [`crate::device::DramDevice::bank`] hands out;
/// it exposes the same accessors the old per-bank struct did.
#[derive(Debug, Clone, Copy)]
pub struct BankRef<'a> {
    timings: &'a BankTimingTable,
    index: usize,
    meta: &'a BankMeta,
}

impl<'a> BankRef<'a> {
    /// Builds the view for bank `index` of `timings`.
    #[must_use]
    pub fn new(timings: &'a BankTimingTable, index: usize, meta: &'a BankMeta) -> Self {
        Self {
            timings,
            index,
            meta,
        }
    }

    /// The currently open row, if the bank is active.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.timings.open_row(self.index)
    }

    /// The PRAC counter value of `row`.
    #[must_use]
    pub fn counter(&self, row: RowIndex) -> u32 {
        self.meta.counter(row)
    }

    /// The maximum PRAC counter value across all rows of this bank.
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.meta.max_counter()
    }

    /// Row currently nominated by the mitigation queue, if any.
    #[must_use]
    pub fn queue_head(&self) -> Option<RowIndex> {
        self.meta.queue_head()
    }

    /// Activations performed since the last RFM that reached this bank.
    #[must_use]
    pub fn activations_since_rfm(&self) -> u32 {
        self.meta.activations_since_rfm()
    }

    /// Lifetime activation count.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.meta.total_activations()
    }

    /// Earliest tick at which an ACT to this bank is legal.
    #[must_use]
    pub fn act_ready_at(&self) -> u64 {
        self.timings.act_ready_at(self.index)
    }

    /// Earliest tick at which *any* command to this bank can change its
    /// state (see [`BankTimingTable::next_transition_at`]).
    #[must_use]
    pub fn next_transition_at(&self) -> u64 {
        self.timings.next_transition_at(self.index)
    }

    /// Number of distinct rows with a non-zero PRAC counter.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.meta.tracked_rows()
    }
}

/// State of a single DRAM bank: a one-entry [`BankTimingTable`] composed
/// with one [`BankMeta`].
///
/// The device keeps its banks in the shared table directly; this composite
/// preserves the original mutating single-bank API so unit and property
/// tests exercise exactly the code the device runs.
#[derive(Debug, Clone)]
pub struct Bank {
    timings: BankTimingTable,
    meta: BankMeta,
}

impl Bank {
    /// Creates an idle, fully-precharged bank with the chosen queue design.
    #[must_use]
    pub fn new(queue_kind: QueueKind) -> Self {
        Self {
            timings: BankTimingTable::new(1),
            meta: BankMeta::new(queue_kind),
        }
    }

    /// The currently open row, if the bank is active.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.timings.open_row(0)
    }

    /// The PRAC counter value of `row`.
    #[must_use]
    pub fn counter(&self, row: RowIndex) -> u32 {
        self.meta.counter(row)
    }

    /// The maximum PRAC counter value across all rows of this bank.
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.meta.max_counter()
    }

    /// Row currently nominated by the mitigation queue, if any.
    #[must_use]
    pub fn queue_head(&self) -> Option<RowIndex> {
        self.meta.queue_head()
    }

    /// Activations performed since the last RFM that reached this bank.
    #[must_use]
    pub fn activations_since_rfm(&self) -> u32 {
        self.meta.activations_since_rfm()
    }

    /// Lifetime activation count.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.meta.total_activations()
    }

    /// Earliest tick at which an ACT to this bank is legal.
    #[must_use]
    pub fn act_ready_at(&self) -> u64 {
        self.timings.act_ready_at(0)
    }

    /// Earliest tick at which *any* command to this bank can change its
    /// state (see [`BankTimingTable::next_transition_at`]).
    #[must_use]
    pub fn next_transition_at(&self) -> u64 {
        self.timings.next_transition_at(0)
    }

    /// Checks whether activating `row` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when a row is already open and
    /// [`IssueError::TooEarly`] when tRC/tRP have not elapsed.
    pub fn can_activate(&self, now: u64) -> Result<(), IssueError> {
        self.timings.can_activate(0, now)
    }

    /// Activates `row` at `now`, incrementing its PRAC counter and updating
    /// the mitigation queue.  Returns the row's new counter value.
    ///
    /// # Errors
    ///
    /// Propagates the legality checks of [`Bank::can_activate`].
    pub fn activate(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u32, IssueError> {
        self.timings.activate(0, row, now, timing)?;
        Ok(self.meta.note_activation(row))
    }

    /// Checks whether a precharge at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::TooEarly`] when tRAS (or read/write recovery)
    /// has not elapsed. Precharging an already-closed bank is a no-op and is
    /// allowed.
    pub fn can_precharge(&self, now: u64) -> Result<(), IssueError> {
        self.timings.can_precharge(0, now)
    }

    /// Precharges (closes) the bank at `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_precharge`].
    pub fn precharge(&mut self, now: u64, timing: &DramTimingParams) -> Result<(), IssueError> {
        self.timings.precharge(0, now, timing)
    }

    /// Checks whether a column read/write of `row` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when the addressed row is not the
    /// open row, and [`IssueError::TooEarly`] before tRCD/tCCD elapse.
    pub fn can_access_column(&self, row: RowIndex, now: u64) -> Result<(), IssueError> {
        self.timings.can_access_column(0, row, now)
    }

    /// Performs a column read at `now`; returns the tick at which data has
    /// fully returned.
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_access_column`].
    pub fn read(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.timings.read(0, row, now, timing)
    }

    /// Performs a column write at `now`; returns the tick at which the write
    /// has been accepted (write data fully transferred).
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_access_column`].
    pub fn write(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.timings.write(0, row, now, timing)
    }

    /// Mitigates the row nominated by the mitigation queue (if any),
    /// resetting its PRAC counter.  Returns the mitigated row.
    pub fn mitigate_queue_head(&mut self) -> Option<RowIndex> {
        self.meta.mitigate_queue_head()
    }

    /// Resets all PRAC counters and the mitigation queue (counter reset at
    /// tREFW).
    pub fn reset_counters(&mut self) {
        self.meta.reset_counters()
    }

    /// Applies a channel-wide blocking command (refresh or RFM): the bank is
    /// precharged immediately and no command may be issued before
    /// `now + duration`.
    pub fn block_until(&mut self, now: u64, duration: u64) {
        self.timings.block_until(0, now, duration);
    }

    /// Number of distinct rows with a non-zero PRAC counter.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.meta.tracked_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTimingParams {
        DramTimingParams::ddr5_8000b()
    }

    fn bank() -> Bank {
        Bank::new(QueueKind::SingleEntryFrequency)
    }

    #[test]
    fn activate_opens_row_and_increments_counter() {
        let mut b = bank();
        let count = b.activate(5, 0, &timing()).unwrap();
        assert_eq!(count, 1);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.counter(5), 1);
        assert_eq!(b.queue_head(), Some(5));
    }

    #[test]
    fn double_activate_is_illegal() {
        let mut b = bank();
        b.activate(5, 0, &timing()).unwrap();
        let err = b.activate(6, 1_000, &timing()).unwrap_err();
        assert!(matches!(err, IssueError::IllegalState { .. }));
    }

    #[test]
    fn activate_respects_trc() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 0, &t).unwrap();
        b.precharge(t.t_ras, &t).unwrap();
        // tRC (208 ticks) not yet elapsed at tRAS + tRP = 64 + 144 = 208... it
        // is exactly equal, so issuing just before must fail.
        let err = b.activate(2, t.t_ras + t.t_rp - 1, &t).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { .. }));
        assert!(b.activate(2, t.t_rc, &t).is_ok());
    }

    #[test]
    fn precharge_respects_tras() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 100, &t).unwrap();
        let err = b.precharge(100 + t.t_ras - 1, &t).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { ready_at } if ready_at == 100 + t.t_ras));
        assert!(b.precharge(100 + t.t_ras, &t).is_ok());
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn precharging_closed_bank_is_noop() {
        let t = timing();
        let mut b = bank();
        assert!(b.precharge(0, &t).is_ok());
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn read_requires_matching_open_row() {
        let t = timing();
        let mut b = bank();
        assert!(matches!(
            b.read(3, 0, &t).unwrap_err(),
            IssueError::IllegalState { .. }
        ));
        b.activate(3, 0, &t).unwrap();
        assert!(matches!(
            b.read(4, t.t_rcd, &t).unwrap_err(),
            IssueError::IllegalState { .. }
        ));
    }

    #[test]
    fn read_respects_trcd_and_returns_data_time() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        assert!(matches!(
            b.read(3, t.t_rcd - 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        let done = b.read(3, t.t_rcd, &t).unwrap();
        assert_eq!(done, t.t_rcd + t.read_latency());
    }

    #[test]
    fn write_extends_precharge_window() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        b.write(3, t.t_rcd, &t).unwrap();
        // Precharge must wait for write recovery: tRCD + tCL + tBL + tWR.
        let earliest = t.t_rcd + t.t_cl + t.t_bl + t.t_wr;
        assert!(matches!(
            b.precharge(earliest - 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        assert!(b.precharge(earliest, &t).is_ok());
    }

    #[test]
    fn consecutive_column_accesses_respect_tccd() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        b.read(3, t.t_rcd, &t).unwrap();
        assert!(matches!(
            b.read(3, t.t_rcd + 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        assert!(b.read(3, t.t_rcd + t.t_ccd, &t).is_ok());
    }

    #[test]
    fn counters_accumulate_across_activations() {
        let t = timing();
        let mut b = bank();
        let mut now = 0;
        for i in 0..10 {
            let count = b.activate(7, now, &t).unwrap();
            assert_eq!(count, i + 1);
            now += t.t_ras;
            b.precharge(now, &t).unwrap();
            now += t.t_rp.max(t.t_rc - t.t_ras);
        }
        assert_eq!(b.counter(7), 10);
        assert_eq!(b.total_activations(), 10);
    }

    #[test]
    fn mitigation_resets_counter_of_queue_head() {
        let t = timing();
        let mut b = bank();
        let mut now = 0;
        for row in [1u32, 1, 1, 2] {
            b.activate(row, now, &t).unwrap();
            now += t.t_ras;
            b.precharge(now, &t).unwrap();
            now += t.t_rc;
        }
        // Row 1 has 3 activations and is the queue head.
        assert_eq!(b.queue_head(), Some(1));
        let mitigated = b.mitigate_queue_head();
        assert_eq!(mitigated, Some(1));
        assert_eq!(b.counter(1), 0);
        assert_eq!(b.counter(2), 1);
        assert_eq!(b.activations_since_rfm(), 0);
    }

    #[test]
    fn reset_clears_counters_and_queue() {
        let t = timing();
        let mut b = bank();
        b.activate(9, 0, &t).unwrap();
        b.reset_counters();
        assert_eq!(b.counter(9), 0);
        assert_eq!(b.queue_head(), None);
        assert_eq!(b.tracked_rows(), 0);
    }

    #[test]
    fn block_until_closes_row_and_defers_commands() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 0, &t).unwrap();
        b.block_until(10, 1_400);
        assert_eq!(b.open_row(), None);
        assert!(matches!(
            b.activate(2, 1_000, &t).unwrap_err(),
            IssueError::TooEarly { ready_at } if ready_at >= 1_410
        ));
        assert!(b.activate(2, 1_410, &t).is_ok());
    }

    #[test]
    fn branchless_transition_matches_state_machine() {
        let t = timing();
        let mut table = BankTimingTable::new(4);
        // Bank 0 precharged, bank 1 open, bank 2 blocked, bank 3 idle.
        table.activate(1, 7, 0, &t).unwrap();
        table.block_until(2, 0, 1_000);
        assert_eq!(table.next_transition_at(0), 0);
        assert_eq!(table.next_transition_at(1), t.t_rcd.min(t.t_ras));
        assert_eq!(table.next_transition_at(2), 1_000);
        let expected = (0..table.len()).map(|i| table.next_transition_at(i)).min();
        assert_eq!(table.min_next_transition_at(), expected.unwrap());
        assert_eq!(table.min_next_transition_at(), 0);
    }

    #[test]
    fn min_reduce_of_empty_table_is_max() {
        let table = BankTimingTable::new(0);
        assert!(table.is_empty());
        assert_eq!(table.min_next_transition_at(), u64::MAX);
    }

    #[test]
    fn subrange_min_reduce_matches_per_bank_fold() {
        let t = timing();
        let mut table = BankTimingTable::new(8);
        table.activate(1, 7, 0, &t).unwrap();
        table.block_until(2, 0, 1_000);
        table.activate(5, 3, 10, &t).unwrap();
        table.block_until(6, 0, 2_500);
        for (start, end) in [(0usize, 4usize), (4, 8), (2, 7), (0, 8), (3, 3)] {
            let expected = (start..end)
                .map(|i| table.next_transition_at(i))
                .min()
                .unwrap_or(u64::MAX);
            assert_eq!(
                table.min_next_transition_in(start, end),
                expected,
                "subrange [{start}, {end})"
            );
        }
        // The full-range fold agrees with the channel-wide reduce.
        assert_eq!(
            table.min_next_transition_in(0, table.len()),
            table.min_next_transition_at()
        );
    }

    #[test]
    fn block_range_only_touches_the_range() {
        let t = timing();
        let mut table = BankTimingTable::new(4);
        table.block_range_until(2, 4, 0, 1_000);
        assert_eq!(table.next_transition_at(0), 0);
        assert_eq!(table.next_transition_at(1), 0);
        assert_eq!(table.next_transition_at(2), 1_000);
        assert_eq!(table.next_transition_at(3), 1_000);
        assert!(table.can_activate(0, 0).is_ok());
        assert!(matches!(
            table.can_activate(3, 500),
            Err(IssueError::TooEarly { ready_at: 1_000 })
        ));
        let _ = t;
    }
}
