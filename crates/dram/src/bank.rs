//! Per-bank state: row buffer, timing windows, PRAC activation counters and
//! the in-DRAM mitigation queue.

use std::collections::HashMap;

use prac_core::queue::{MitigationQueue, QueueKind, RowIndex};

use crate::command::IssueError;
use crate::timing::DramTimingParams;

/// State of a single DRAM bank.
///
/// The bank owns:
/// * the open-row tracking used for row-buffer hit/miss/conflict accounting,
/// * the earliest-legal-time bookkeeping for ACT / PRE / RD / WR,
/// * the per-row PRAC activation counters,
/// * one mitigation queue (design selected by [`QueueKind`]).
#[derive(Debug)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u32>,
    /// Earliest tick an ACT may be issued.
    next_act: u64,
    /// Earliest tick a PRE may be issued.
    next_pre: u64,
    /// Earliest tick a column (RD/WR) command may be issued.
    next_column: u64,
    /// Tick of the most recent activation (for tRAS/tRC bookkeeping).
    last_act: u64,
    /// Per-row PRAC activation counters (sparse; untouched rows are zero).
    counters: HashMap<RowIndex, u32>,
    /// In-DRAM mitigation queue for this bank.
    queue: Box<dyn MitigationQueue>,
    /// Number of activations since the bank was last mitigated or reset
    /// (used for ACB-RFM / BAT accounting by the controller via a getter).
    activations_since_rfm: u32,
    /// Lifetime activation count (statistics).
    total_activations: u64,
}

impl Bank {
    /// Creates an idle, fully-precharged bank with the chosen queue design.
    #[must_use]
    pub fn new(queue_kind: QueueKind) -> Self {
        Self {
            open_row: None,
            next_act: 0,
            next_pre: 0,
            next_column: 0,
            last_act: 0,
            counters: HashMap::new(),
            queue: queue_kind.instantiate(),
            activations_since_rfm: 0,
            total_activations: 0,
        }
    }

    /// The currently open row, if the bank is active.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// The PRAC counter value of `row`.
    #[must_use]
    pub fn counter(&self, row: RowIndex) -> u32 {
        self.counters.get(&row).copied().unwrap_or(0)
    }

    /// The maximum PRAC counter value across all rows of this bank.
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.counters.values().copied().max().unwrap_or(0)
    }

    /// Row currently nominated by the mitigation queue, if any.
    #[must_use]
    pub fn queue_head(&self) -> Option<RowIndex> {
        self.queue.peek()
    }

    /// Activations performed since the last RFM that reached this bank.
    #[must_use]
    pub fn activations_since_rfm(&self) -> u32 {
        self.activations_since_rfm
    }

    /// Lifetime activation count.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Earliest tick at which an ACT to this bank is legal.
    #[must_use]
    pub fn act_ready_at(&self) -> u64 {
        self.next_act
    }

    /// Earliest tick at which *any* command to this bank can change its
    /// state — the bank state machine's next possible transition.
    ///
    /// * Bank precharged: the next transition is an ACT (gated by tRC/tRP).
    /// * Row open: the earliest of a column access (tRCD/tCCD) or a
    ///   precharge (tRAS / write recovery).
    ///
    /// The returned tick never moves backwards while the bank is idle, which
    /// is what lets an event-driven scheduler sleep until it without
    /// re-polling.  Note this is a *bank-local* bound; channel-wide
    /// constraints (bus occupancy, rank ACT-to-ACT spacing, refresh
    /// blocking) can push the real issue time later.
    #[must_use]
    pub fn next_transition_at(&self) -> u64 {
        match self.open_row {
            None => self.next_act,
            Some(_) => self.next_column.min(self.next_pre),
        }
    }

    /// Checks whether activating `row` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when a row is already open and
    /// [`IssueError::TooEarly`] when tRC/tRP have not elapsed.
    pub fn can_activate(&self, now: u64) -> Result<(), IssueError> {
        if self.open_row.is_some() {
            return Err(IssueError::IllegalState {
                reason: "activate issued while another row is open",
            });
        }
        if now < self.next_act {
            return Err(IssueError::TooEarly {
                ready_at: self.next_act,
            });
        }
        Ok(())
    }

    /// Activates `row` at `now`, incrementing its PRAC counter and updating
    /// the mitigation queue.  Returns the row's new counter value.
    ///
    /// # Errors
    ///
    /// Propagates the legality checks of [`Bank::can_activate`].
    pub fn activate(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u32, IssueError> {
        self.can_activate(now)?;
        self.open_row = Some(row);
        self.last_act = now;
        self.next_pre = now + timing.t_ras;
        self.next_column = now + timing.t_rcd;
        self.next_act = now + timing.t_rc;
        // PRAC: the per-row counter is incremented (physically during the
        // precharge read-modify-write; counted here at activation time, which
        // is equivalent for threshold-crossing purposes).
        let counter = self.counters.entry(row).or_insert(0);
        *counter = counter.saturating_add(1);
        let value = *counter;
        self.queue.observe_activation(row, value);
        self.activations_since_rfm = self.activations_since_rfm.saturating_add(1);
        self.total_activations += 1;
        Ok(value)
    }

    /// Checks whether a precharge at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::TooEarly`] when tRAS (or read/write recovery)
    /// has not elapsed. Precharging an already-closed bank is a no-op and is
    /// allowed.
    pub fn can_precharge(&self, now: u64) -> Result<(), IssueError> {
        if self.open_row.is_none() {
            return Ok(());
        }
        if now < self.next_pre {
            return Err(IssueError::TooEarly {
                ready_at: self.next_pre,
            });
        }
        Ok(())
    }

    /// Precharges (closes) the bank at `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_precharge`].
    pub fn precharge(&mut self, now: u64, timing: &DramTimingParams) -> Result<(), IssueError> {
        self.can_precharge(now)?;
        if self.open_row.is_some() {
            self.open_row = None;
            self.next_act = self.next_act.max(now + timing.t_rp);
        }
        Ok(())
    }

    /// Checks whether a column read/write of `row` at `now` is legal.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::IllegalState`] when the addressed row is not the
    /// open row, and [`IssueError::TooEarly`] before tRCD/tCCD elapse.
    pub fn can_access_column(&self, row: RowIndex, now: u64) -> Result<(), IssueError> {
        match self.open_row {
            Some(open) if open == row => {}
            Some(_) => {
                return Err(IssueError::IllegalState {
                    reason: "column access to a row that is not the open row",
                })
            }
            None => {
                return Err(IssueError::IllegalState {
                    reason: "column access while the bank is precharged",
                })
            }
        }
        if now < self.next_column {
            return Err(IssueError::TooEarly {
                ready_at: self.next_column,
            });
        }
        Ok(())
    }

    /// Performs a column read at `now`; returns the tick at which data has
    /// fully returned.
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_access_column`].
    pub fn read(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.can_access_column(row, now)?;
        self.next_column = now + timing.t_ccd;
        self.next_pre = self.next_pre.max(now + timing.t_rtp);
        Ok(now + timing.read_latency())
    }

    /// Performs a column write at `now`; returns the tick at which the write
    /// has been accepted (write data fully transferred).
    ///
    /// # Errors
    ///
    /// Propagates [`Bank::can_access_column`].
    pub fn write(
        &mut self,
        row: RowIndex,
        now: u64,
        timing: &DramTimingParams,
    ) -> Result<u64, IssueError> {
        self.can_access_column(row, now)?;
        self.next_column = now + timing.t_ccd;
        self.next_pre = self
            .next_pre
            .max(now + timing.t_cl + timing.t_bl + timing.t_wr);
        Ok(now + timing.t_cl + timing.t_bl)
    }

    /// Mitigates the row nominated by the mitigation queue (if any),
    /// resetting its PRAC counter.  Returns the mitigated row.
    ///
    /// Called by the device when an RFM or a Targeted Refresh reaches the
    /// bank.  Also clears the per-bank ACB activation count.
    pub fn mitigate_queue_head(&mut self) -> Option<RowIndex> {
        let row = self.queue.pop_for_mitigation();
        if let Some(row) = row {
            self.counters.insert(row, 0);
        }
        self.activations_since_rfm = 0;
        row
    }

    /// Resets all PRAC counters and the mitigation queue (counter reset at
    /// tREFW).
    pub fn reset_counters(&mut self) {
        self.counters.clear();
        self.queue.reset();
    }

    /// Applies a channel-wide blocking command (refresh or RFM): the bank is
    /// precharged immediately and no command may be issued before
    /// `now + duration`.
    pub fn block_until(&mut self, now: u64, duration: u64) {
        self.open_row = None;
        let until = now + duration;
        self.next_act = self.next_act.max(until);
        self.next_pre = self.next_pre.max(until);
        self.next_column = self.next_column.max(until);
    }

    /// Number of distinct rows with a non-zero PRAC counter.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.counters.values().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTimingParams {
        DramTimingParams::ddr5_8000b()
    }

    fn bank() -> Bank {
        Bank::new(QueueKind::SingleEntryFrequency)
    }

    #[test]
    fn activate_opens_row_and_increments_counter() {
        let mut b = bank();
        let count = b.activate(5, 0, &timing()).unwrap();
        assert_eq!(count, 1);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.counter(5), 1);
        assert_eq!(b.queue_head(), Some(5));
    }

    #[test]
    fn double_activate_is_illegal() {
        let mut b = bank();
        b.activate(5, 0, &timing()).unwrap();
        let err = b.activate(6, 1_000, &timing()).unwrap_err();
        assert!(matches!(err, IssueError::IllegalState { .. }));
    }

    #[test]
    fn activate_respects_trc() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 0, &t).unwrap();
        b.precharge(t.t_ras, &t).unwrap();
        // tRC (208 ticks) not yet elapsed at tRAS + tRP = 64 + 144 = 208... it
        // is exactly equal, so issuing just before must fail.
        let err = b.activate(2, t.t_ras + t.t_rp - 1, &t).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { .. }));
        assert!(b.activate(2, t.t_rc, &t).is_ok());
    }

    #[test]
    fn precharge_respects_tras() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 100, &t).unwrap();
        let err = b.precharge(100 + t.t_ras - 1, &t).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { ready_at } if ready_at == 100 + t.t_ras));
        assert!(b.precharge(100 + t.t_ras, &t).is_ok());
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn precharging_closed_bank_is_noop() {
        let t = timing();
        let mut b = bank();
        assert!(b.precharge(0, &t).is_ok());
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn read_requires_matching_open_row() {
        let t = timing();
        let mut b = bank();
        assert!(matches!(
            b.read(3, 0, &t).unwrap_err(),
            IssueError::IllegalState { .. }
        ));
        b.activate(3, 0, &t).unwrap();
        assert!(matches!(
            b.read(4, t.t_rcd, &t).unwrap_err(),
            IssueError::IllegalState { .. }
        ));
    }

    #[test]
    fn read_respects_trcd_and_returns_data_time() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        assert!(matches!(
            b.read(3, t.t_rcd - 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        let done = b.read(3, t.t_rcd, &t).unwrap();
        assert_eq!(done, t.t_rcd + t.read_latency());
    }

    #[test]
    fn write_extends_precharge_window() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        b.write(3, t.t_rcd, &t).unwrap();
        // Precharge must wait for write recovery: tRCD + tCL + tBL + tWR.
        let earliest = t.t_rcd + t.t_cl + t.t_bl + t.t_wr;
        assert!(matches!(
            b.precharge(earliest - 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        assert!(b.precharge(earliest, &t).is_ok());
    }

    #[test]
    fn consecutive_column_accesses_respect_tccd() {
        let t = timing();
        let mut b = bank();
        b.activate(3, 0, &t).unwrap();
        b.read(3, t.t_rcd, &t).unwrap();
        assert!(matches!(
            b.read(3, t.t_rcd + 1, &t).unwrap_err(),
            IssueError::TooEarly { .. }
        ));
        assert!(b.read(3, t.t_rcd + t.t_ccd, &t).is_ok());
    }

    #[test]
    fn counters_accumulate_across_activations() {
        let t = timing();
        let mut b = bank();
        let mut now = 0;
        for i in 0..10 {
            let count = b.activate(7, now, &t).unwrap();
            assert_eq!(count, i + 1);
            now += t.t_ras;
            b.precharge(now, &t).unwrap();
            now += t.t_rp.max(t.t_rc - t.t_ras);
        }
        assert_eq!(b.counter(7), 10);
        assert_eq!(b.total_activations(), 10);
    }

    #[test]
    fn mitigation_resets_counter_of_queue_head() {
        let t = timing();
        let mut b = bank();
        let mut now = 0;
        for row in [1u32, 1, 1, 2] {
            b.activate(row, now, &t).unwrap();
            now += t.t_ras;
            b.precharge(now, &t).unwrap();
            now += t.t_rc;
        }
        // Row 1 has 3 activations and is the queue head.
        assert_eq!(b.queue_head(), Some(1));
        let mitigated = b.mitigate_queue_head();
        assert_eq!(mitigated, Some(1));
        assert_eq!(b.counter(1), 0);
        assert_eq!(b.counter(2), 1);
        assert_eq!(b.activations_since_rfm(), 0);
    }

    #[test]
    fn reset_clears_counters_and_queue() {
        let t = timing();
        let mut b = bank();
        b.activate(9, 0, &t).unwrap();
        b.reset_counters();
        assert_eq!(b.counter(9), 0);
        assert_eq!(b.queue_head(), None);
        assert_eq!(b.tracked_rows(), 0);
    }

    #[test]
    fn block_until_closes_row_and_defers_commands() {
        let t = timing();
        let mut b = bank();
        b.activate(1, 0, &t).unwrap();
        b.block_until(10, 1_400);
        assert_eq!(b.open_row(), None);
        assert!(matches!(
            b.activate(2, 1_000, &t).unwrap_err(),
            IssueError::TooEarly { ready_at } if ready_at >= 1_410
        ));
        assert!(b.activate(2, 1_410, &t).is_ok());
    }
}
