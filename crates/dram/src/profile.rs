//! Named device timing profiles and the on-die ECC post-breach model.
//!
//! Real DDR5 parts diverge from the JEDEC baseline in exactly the knobs
//! that matter for RowHammer defence economics: refresh blocking time
//! (tRFC), RFM cadence (tRFMab), which PRAC levels the part implements,
//! whether rank-level constraints (tFAW, staggered refresh) bite, and
//! whether on-die ECC absorbs part of a breach.  [`DeviceProfile`] names
//! three such parts:
//!
//! * [`DeviceProfile::JedecBaseline`] — exactly the Table 3 DDR5-8000B
//!   timing set the rest of the workspace defaults to.  No tFAW, no
//!   refresh staggering, no on-die ECC: selecting it is bit-identical to
//!   not selecting any profile at all (the campaign cache keys rely on
//!   this — the baseline is omitted from canonical scenario JSON).
//! * [`DeviceProfile::VendorA`] — a fast-refresh part: shorter tRFC and
//!   tRFMab, rank-staggered refresh, a tFAW window, 128-bit on-die ECC
//!   codewords.  Supports only PRAC-1 and PRAC-2.
//! * [`DeviceProfile::VendorB`] — a dense, slow-refresh part: longer tRFC,
//!   slower RFM, a wider tFAW window, 256-bit on-die ECC codewords.  All
//!   PRAC levels supported.
//!
//! The on-die ECC model is a *post-breach metric layer*, not a behavioural
//! change: the simulation runs identically, and [`OnDieEcc::adjudicate`]
//! afterwards converts activation overshoot beyond `NRH` into estimated
//! raw bit flips, scatters them deterministically (seeded) over the row's
//! SEC codewords, and splits them into flips-corrected (singleton
//! codewords) vs flips-escaped (codewords holding two or more flips, which
//! single-error-correcting codes cannot repair).

use prac_core::config::PracLevel;
use prac_core::timing::ns_to_ticks;
use serde::{Deserialize, Serialize};

use crate::timing::DramTimingParams;

/// A named device timing profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DeviceProfile {
    /// The Table 3 DDR5-8000B timing set; the workspace default.
    #[default]
    JedecBaseline,
    /// Fast-refresh vendor part with 128-bit on-die ECC codewords.
    VendorA,
    /// Dense slow-refresh vendor part with 256-bit on-die ECC codewords.
    VendorB,
}

impl DeviceProfile {
    /// Stable kebab-case slug (scenario JSON, CLI).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            DeviceProfile::JedecBaseline => "jedec-baseline",
            DeviceProfile::VendorA => "vendor-a",
            DeviceProfile::VendorB => "vendor-b",
        }
    }

    /// Human-readable label (reports, listings).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeviceProfile::JedecBaseline => "JEDEC baseline",
            DeviceProfile::VendorA => "Vendor A",
            DeviceProfile::VendorB => "Vendor B",
        }
    }

    /// One-line description for listings.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            DeviceProfile::JedecBaseline => {
                "Table 3 DDR5-8000B; no tFAW, no stagger, no on-die ECC"
            }
            DeviceProfile::VendorA => {
                "fast refresh (tRFC 350ns), staggered ranks, 128b ECC; PRAC-1/2 only"
            }
            DeviceProfile::VendorB => {
                "slow refresh (tRFC 560ns), wide tFAW, 256b ECC; all PRAC levels"
            }
        }
    }

    /// Parses a CLI / scenario-JSON slug.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "jedec-baseline" | "jedec" | "baseline" => Some(DeviceProfile::JedecBaseline),
            "vendor-a" => Some(DeviceProfile::VendorA),
            "vendor-b" => Some(DeviceProfile::VendorB),
            _ => None,
        }
    }

    /// The full timing parameter set of this profile.
    ///
    /// [`DeviceProfile::JedecBaseline`] returns
    /// [`DramTimingParams::ddr5_8000b`] verbatim — the 1:1 identity the
    /// golden gates pin down.
    #[must_use]
    pub fn timing(self) -> DramTimingParams {
        let base = DramTimingParams::ddr5_8000b();
        match self {
            DeviceProfile::JedecBaseline => base,
            DeviceProfile::VendorA => DramTimingParams {
                t_rfc: ns_to_ticks(350.0),
                t_rfmab: ns_to_ticks(300.0),
                // tFAW of 4x tRRD plus slack; refresh staggered a quarter
                // of the (shortened) tRFC per rank.
                t_faw: ns_to_ticks(13.0),
                refresh_stagger: ns_to_ticks(87.5),
                ..base
            },
            DeviceProfile::VendorB => DramTimingParams {
                t_rfc: ns_to_ticks(560.0),
                t_rfmab: ns_to_ticks(400.0),
                t_faw: ns_to_ticks(21.0),
                refresh_stagger: 0,
                ..base
            },
        }
    }

    /// Whether this part implements `level`.
    #[must_use]
    pub fn supports_prac_level(self, level: PracLevel) -> bool {
        match self {
            DeviceProfile::JedecBaseline | DeviceProfile::VendorB => true,
            DeviceProfile::VendorA => matches!(level, PracLevel::One | PracLevel::Two),
        }
    }

    /// The on-die ECC configuration, when the part has one.
    #[must_use]
    pub fn on_die_ecc(self) -> Option<OnDieEcc> {
        match self {
            DeviceProfile::JedecBaseline => None,
            DeviceProfile::VendorA => Some(OnDieEcc {
                codeword_bits: 128,
                acts_per_flip: 64,
            }),
            DeviceProfile::VendorB => Some(OnDieEcc {
                codeword_bits: 256,
                acts_per_flip: 48,
            }),
        }
    }

    /// Every named profile, baseline first.
    #[must_use]
    pub fn registry() -> [DeviceProfile; 3] {
        [
            DeviceProfile::JedecBaseline,
            DeviceProfile::VendorA,
            DeviceProfile::VendorB,
        ]
    }
}

/// Single-error-correcting on-die ECC, as a post-breach adjudication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OnDieEcc {
    /// Data bits per SEC codeword.
    pub codeword_bits: u32,
    /// Estimated activations beyond `NRH` per raw bit flip in the victim
    /// row (the disturbance slope above threshold).
    pub acts_per_flip: u64,
}

/// Outcome of adjudicating one breached row through on-die ECC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EccAdjudication {
    /// Estimated raw bit flips induced in the victim row.
    pub raw_flips: u64,
    /// Flips in codewords holding exactly one flip: silently corrected.
    pub flips_corrected: u64,
    /// Flips in codewords holding two or more flips: beyond SEC, escaping
    /// to the host.
    pub flips_escaped: u64,
}

impl OnDieEcc {
    /// Adjudicates a breach: `overshoot` activations beyond `NRH` on the
    /// hottest row of a `row_bits`-bit row.
    ///
    /// Deterministic in `(overshoot, row_bits, seed)`: raw flips are
    /// `overshoot / acts_per_flip` (capped at the row size), and each flip
    /// lands in the codeword selected by an FNV-1a hash of the seed and
    /// flip ordinal.  Flips that share a codeword overwhelm single-error
    /// correction and escape.
    #[must_use]
    pub fn adjudicate(&self, overshoot: u64, row_bits: u64, seed: u64) -> EccAdjudication {
        let codewords = (row_bits / u64::from(self.codeword_bits.max(1))).max(1);
        let raw_flips = (overshoot / self.acts_per_flip.max(1)).min(row_bits);
        let mut per_codeword = vec![0u64; usize::try_from(codewords).unwrap_or(1)];
        for flip in 0..raw_flips {
            let slot = fnv1a64(seed, flip) % codewords;
            per_codeword[usize::try_from(slot).expect("codeword index fits usize")] += 1;
        }
        let mut corrected = 0u64;
        let mut escaped = 0u64;
        for &count in &per_codeword {
            match count {
                0 => {}
                1 => corrected += 1,
                n => escaped += n,
            }
        }
        EccAdjudication {
            raw_flips,
            flips_corrected: corrected,
            flips_escaped: escaped,
        }
    }
}

/// FNV-1a over the little-endian bytes of `(seed, ordinal)`.
fn fnv1a64(seed: u64, ordinal: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in seed.to_le_bytes().into_iter().chain(ordinal.to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_timing_is_bit_identical_to_ddr5_8000b() {
        assert_eq!(
            DeviceProfile::JedecBaseline.timing(),
            DramTimingParams::ddr5_8000b()
        );
        assert!(DeviceProfile::JedecBaseline.on_die_ecc().is_none());
    }

    #[test]
    fn vendor_profiles_diverge_and_stay_consistent() {
        let base = DramTimingParams::ddr5_8000b();
        for profile in [DeviceProfile::VendorA, DeviceProfile::VendorB] {
            let t = profile.timing();
            assert!(t.is_consistent(), "{}: inconsistent timing", profile.slug());
            assert_ne!(t.t_rfc, base.t_rfc, "{}: tRFC must diverge", profile.slug());
            assert!(t.t_faw > 0, "{}: vendor parts enforce tFAW", profile.slug());
            assert!(profile.on_die_ecc().is_some());
        }
        assert_ne!(
            DeviceProfile::VendorA.timing().t_rfc,
            DeviceProfile::VendorB.timing().t_rfc
        );
    }

    #[test]
    fn slugs_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for profile in DeviceProfile::registry() {
            assert!(seen.insert(profile.slug()), "duplicate slug");
            assert_eq!(DeviceProfile::parse(profile.slug()), Some(profile));
            assert!(!profile.label().is_empty());
            assert!(!profile.summary().is_empty());
        }
        assert_eq!(DeviceProfile::parse("vendor-c"), None);
    }

    #[test]
    fn prac_level_support_matrix() {
        for level in PracLevel::all() {
            assert!(DeviceProfile::JedecBaseline.supports_prac_level(level));
            assert!(DeviceProfile::VendorB.supports_prac_level(level));
        }
        assert!(DeviceProfile::VendorA.supports_prac_level(PracLevel::One));
        assert!(DeviceProfile::VendorA.supports_prac_level(PracLevel::Two));
        assert!(!DeviceProfile::VendorA.supports_prac_level(PracLevel::Four));
    }

    #[test]
    fn ecc_adjudication_is_deterministic_and_conserves_flips() {
        let ecc = DeviceProfile::VendorA.on_die_ecc().unwrap();
        let row_bits = 8 * 1024 * 8; // one 8 KB row
        let a = ecc.adjudicate(10_000, row_bits, 0x5EED);
        let b = ecc.adjudicate(10_000, row_bits, 0x5EED);
        assert_eq!(a, b, "same inputs must adjudicate identically");
        assert_eq!(a.raw_flips, 10_000 / ecc.acts_per_flip);
        assert_eq!(a.flips_corrected + a.flips_escaped, a.raw_flips);
        let other_seed = ecc.adjudicate(10_000, row_bits, 0x5EED + 1);
        assert_eq!(other_seed.raw_flips, a.raw_flips);
    }

    #[test]
    fn no_overshoot_means_no_flips() {
        let ecc = DeviceProfile::VendorB.on_die_ecc().unwrap();
        let out = ecc.adjudicate(0, 8 * 1024 * 8, 7);
        assert_eq!(out, EccAdjudication::default());
    }

    #[test]
    fn dense_flip_fields_escape_correction() {
        let ecc = OnDieEcc {
            codeword_bits: 128,
            acts_per_flip: 1,
        };
        // Far more flips than codewords: nearly all codewords hold >= 2
        // flips, so escapes dominate corrections.
        let row_bits = 128 * 8; // 8 codewords
        let out = ecc.adjudicate(1_000, row_bits, 42);
        assert_eq!(out.raw_flips, 1_000);
        assert!(out.flips_escaped > out.flips_corrected);
    }
}
