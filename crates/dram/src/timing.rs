//! DDR5 timing parameters in simulator ticks.
//!
//! All values are expressed in ticks of 0.25 ns (the workspace-wide 4 GHz
//! clock, see [`prac_core::timing::PICOS_PER_TICK`]).  The defaults implement
//! the 32 Gb DDR5-8000B device of Table 3 with the PRAC-adjusted precharge
//! and write-recovery timings already applied.

use prac_core::timing::{ns_to_ticks, DramTimingSummary};
use serde::{Deserialize, Serialize};

/// Full timing parameter set used by the per-bank state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramTimingParams {
    /// ACT → column command delay (tRCD).
    pub t_rcd: u64,
    /// Column read latency (tCL / CAS latency).
    pub t_cl: u64,
    /// ACT → PRE minimum (tRAS).
    pub t_ras: u64,
    /// PRE → ACT minimum on the same bank (tRP, PRAC-adjusted).
    pub t_rp: u64,
    /// ACT → ACT minimum on the same bank (tRC).
    pub t_rc: u64,
    /// Read → Precharge minimum (tRTP).
    pub t_rtp: u64,
    /// Write recovery time: end of write data → precharge (tWR).
    pub t_wr: u64,
    /// Data burst duration on the bus (tBL).
    pub t_bl: u64,
    /// Column-to-column delay (tCCD, same bank group).
    pub t_ccd: u64,
    /// ACT → ACT minimum across banks of the same rank (tRRD).
    pub t_rrd: u64,
    /// Refresh blocking time (tRFC).
    pub t_rfc: u64,
    /// Average refresh interval (tREFI).
    pub t_refi: u64,
    /// Refresh window over which counters may be reset (tREFW).
    pub t_refw: u64,
    /// RFM All-Bank blocking time (tRFMab).
    pub t_rfmab: u64,
    /// Alert Back-Off activation window (tABOACT): the time budget within
    /// which the controller may issue up to `ABOACT` further activations
    /// after Alert asserts.
    pub t_abo_act: u64,
    /// Four-activation window per rank (tFAW): no more than four ACTs may
    /// issue to one rank inside any window of this length.  `0` disables the
    /// constraint (the seed behaviour, preserved bit-for-bit).
    pub t_faw: u64,
    /// Per-rank refresh stagger: rank `r`'s refresh blackout starts
    /// `r * refresh_stagger` ticks after the refresh command, so other ranks
    /// keep serving commands during part of the tRFC window.  `0` keeps the
    /// channel-wide blanket blackout (the seed behaviour).
    pub refresh_stagger: u64,
}

impl DramTimingParams {
    /// Timing set for the 32 Gb DDR5-8000B device of Table 3.
    #[must_use]
    pub fn ddr5_8000b() -> Self {
        Self {
            t_rcd: ns_to_ticks(16.0),
            t_cl: ns_to_ticks(16.0),
            t_ras: ns_to_ticks(16.0),
            t_rp: ns_to_ticks(36.0),
            t_rc: ns_to_ticks(52.0),
            t_rtp: ns_to_ticks(5.0),
            t_wr: ns_to_ticks(10.0),
            t_bl: ns_to_ticks(2.0),
            t_ccd: ns_to_ticks(2.0),
            t_rrd: ns_to_ticks(2.0),
            t_rfc: ns_to_ticks(410.0),
            t_refi: ns_to_ticks(3900.0),
            t_refw: ns_to_ticks(32.0 * 1_000_000.0),
            t_rfmab: ns_to_ticks(350.0),
            t_abo_act: ns_to_ticks(180.0),
            t_faw: 0,
            refresh_stagger: 0,
        }
    }

    /// A compressed timing set for fast unit tests (same structural
    /// relationships, much smaller refresh window).
    #[must_use]
    pub fn fast_for_tests() -> Self {
        Self {
            t_refw: ns_to_ticks(50_000.0),
            ..Self::ddr5_8000b()
        }
    }

    /// Read latency from column command to first data beat (tCL),
    /// plus the burst itself.
    #[must_use]
    pub fn read_latency(&self) -> u64 {
        self.t_cl + self.t_bl
    }

    /// Returns the summary view used by the analytical models in `prac-core`.
    #[must_use]
    pub fn summary(&self, rows_per_bank: u32) -> DramTimingSummary {
        DramTimingSummary {
            t_rc_ns: self.t_rc as f64 * 0.25,
            t_refi_ns: self.t_refi as f64 * 0.25,
            t_refw_ns: self.t_refw as f64 * 0.25,
            t_rfc_ns: self.t_rfc as f64 * 0.25,
            t_rfmab_ns: self.t_rfmab as f64 * 0.25,
            t_abo_act_ns: self.t_abo_act as f64 * 0.25,
            rows_per_bank,
        }
    }

    /// Sanity-checks internal consistency of the timing set.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.t_rc >= self.t_ras + self.t_rp.min(self.t_rc)
            && self.t_rc >= self.t_ras
            && self.t_refi > self.t_rfc
            && self.t_refw > self.t_refi
            && self.t_rfmab > 0
            && self.t_rcd > 0
            && self.t_cl > 0
    }
}

impl Default for DramTimingParams {
    fn default() -> Self {
        Self::ddr5_8000b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_values_match_table3_in_ticks() {
        let t = DramTimingParams::ddr5_8000b();
        assert_eq!(t.t_rcd, 64); // 16 ns
        assert_eq!(t.t_rp, 144); // 36 ns (PRAC adjusted)
        assert_eq!(t.t_rc, 208); // 52 ns
        assert_eq!(t.t_rfmab, 1400); // 350 ns
        assert_eq!(t.t_refi, 15_600); // 3.9 us
        assert_eq!(t.t_rfc, 1640); // 410 ns
        assert!(t.is_consistent());
    }

    #[test]
    fn read_latency_includes_burst() {
        let t = DramTimingParams::ddr5_8000b();
        assert_eq!(t.read_latency(), t.t_cl + t.t_bl);
    }

    #[test]
    fn summary_round_trips_to_ns() {
        let t = DramTimingParams::ddr5_8000b();
        let s = t.summary(128 * 1024);
        assert!((s.t_rc_ns - 52.0).abs() < 1e-9);
        assert!((s.t_refi_ns - 3900.0).abs() < 1e-9);
        assert!((s.t_rfmab_ns - 350.0).abs() < 1e-9);
        assert_eq!(s.rows_per_bank, 128 * 1024);
    }

    #[test]
    fn fast_test_timing_is_consistent() {
        assert!(DramTimingParams::fast_for_tests().is_consistent());
    }

    #[test]
    fn rank_level_knobs_default_off() {
        // The seed device has no tFAW constraint and no refresh staggering;
        // both knobs must stay 0 in every stock timing set so the default
        // path is bit-identical to the pre-rank-refactor simulator.
        let t = DramTimingParams::ddr5_8000b();
        assert_eq!(t.t_faw, 0);
        assert_eq!(t.refresh_stagger, 0);
        let fast = DramTimingParams::fast_for_tests();
        assert_eq!(fast.t_faw, 0);
        assert_eq!(fast.refresh_stagger, 0);
    }

    #[test]
    fn inconsistent_timing_detected() {
        let mut t = DramTimingParams::ddr5_8000b();
        t.t_refi = 1;
        assert!(!t.is_consistent());
    }
}
