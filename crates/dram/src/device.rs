//! The DRAM device (one channel): banks, channel-wide commands, the Alert
//! Back-Off protocol and counter-reset handling.

use prac_core::config::PracConfig;
use prac_core::queue::QueueKind;
use serde::{Deserialize, Serialize};

use crate::bank::{BankMeta, BankRef, BankTimingTable};
use crate::command::{DramCommand, IssueError};
use crate::org::{DramAddress, DramOrganization};
use crate::stats::DramStats;
use crate::timing::DramTimingParams;

/// Static configuration of a [`DramDevice`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramDeviceConfig {
    /// Channel geometry.
    pub organization: DramOrganization,
    /// Timing parameter set.
    pub timing: DramTimingParams,
    /// PRAC protocol parameters (Back-Off threshold, PRAC level, …).
    pub prac: PracConfig,
    /// In-DRAM mitigation-queue design instantiated per bank.
    pub queue_kind: QueueKind,
    /// Whether Targeted Refresh is enabled: every `tref_every_n_refreshes`-th
    /// periodic refresh additionally mitigates each bank's queue head.
    /// `None` disables TREF.
    pub tref_every_n_refreshes: Option<u32>,
}

impl DramDeviceConfig {
    /// The paper's default device: full DDR5 geometry, DDR5-8000B timing,
    /// `NRH = 1024` PRAC configuration, single-entry queue, no TREF.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            organization: DramOrganization::ddr5_32gb_quad_rank(),
            timing: DramTimingParams::ddr5_8000b(),
            prac: PracConfig::paper_default(),
            queue_kind: QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        }
    }

    /// A small device for fast unit tests.
    #[must_use]
    pub fn tiny_for_tests(prac: PracConfig) -> Self {
        Self {
            organization: DramOrganization::tiny_for_tests(),
            timing: DramTimingParams::fast_for_tests(),
            prac,
            queue_kind: QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        }
    }
}

/// Sentinel for an empty slot of the per-rank tFAW activation ring (no ACT
/// recorded; real issue ticks are bounded far below this).
const ACT_NONE: u64 = u64::MAX;

/// Result of issuing an `Activate` command: the row's new PRAC counter value
/// and whether this activation pushed the device into asserting Alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivateOutcome {
    /// The row's PRAC counter after this activation.
    pub counter: u32,
    /// Whether the Alert signal is asserted after this activation.
    pub alert_asserted: bool,
}

/// One DRAM channel with PRAC support.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramDeviceConfig,
    /// Hot per-bank timing state, struct-of-arrays across the channel.
    timings: BankTimingTable,
    /// Cold per-bank state (PRAC counters, mitigation queues), parallel to
    /// the timing table.
    meta: Vec<BankMeta>,
    /// Channel-wide earliest command time (set by refresh / RFM blocking).
    channel_ready_at: u64,
    /// Per-rank earliest ACT time (tRRD).
    rank_next_act: Vec<u64>,
    /// Per-rank ring of the last four ACT issue ticks (tFAW window), oldest
    /// at the cursor.  Only maintained when `timing.t_faw > 0`, so the
    /// default (tFAW-less) hot path is untouched.
    rank_act_history: Vec<[u64; 4]>,
    /// Per-rank cursor into `rank_act_history` (index of the oldest entry).
    rank_act_cursor: Vec<u8>,
    /// Shared data-bus availability.
    bus_ready_at: u64,
    /// Whether the Alert signal is currently asserted.
    alert: bool,
    /// Activations remaining before a new Alert may assert (ABODelay).
    alert_suppressed_for_acts: u32,
    /// Tick of the next counter reset (tREFW boundary), when enabled.
    next_counter_reset: u64,
    /// Refreshes serviced so far (for TREF cadence).
    refreshes_seen: u64,
    stats: DramStats,
}

impl DramDevice {
    /// Creates a device in the idle state at tick 0.
    #[must_use]
    pub fn new(config: DramDeviceConfig) -> Self {
        let total_banks = config.organization.total_banks() as usize;
        let meta = (0..total_banks)
            .map(|_| BankMeta::new(config.queue_kind))
            .collect();
        let next_counter_reset = if config.prac.counter_reset_every_trefw {
            config.timing.t_refw
        } else {
            u64::MAX
        };
        let ranks = config.organization.ranks as usize;
        Self {
            rank_next_act: vec![0; ranks],
            rank_act_history: vec![[ACT_NONE; 4]; ranks],
            rank_act_cursor: vec![0; ranks],
            timings: BankTimingTable::new(total_banks),
            meta,
            channel_ready_at: 0,
            bus_ready_at: 0,
            alert: false,
            alert_suppressed_for_acts: 0,
            next_counter_reset,
            refreshes_seen: 0,
            config,
            stats: DramStats::default(),
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DramDeviceConfig {
        &self.config
    }

    /// Re-targets a forked device at a different PRAC configuration without
    /// disturbing the accumulated bank state (checkpoint/fork divergence
    /// point — see `prac_core::snapshot`).
    ///
    /// Only valid while no counter reset has fired yet (the campaign fork
    /// point is always before the first tREFW boundary; the caller's purity
    /// guard enforces this): a cold device in that regime has its first
    /// reset still scheduled at `tREFW`, so re-deriving the schedule from
    /// the new configuration is exactly what a cold run would hold.
    pub fn refit_prac(&mut self, prac: PracConfig, tref_every_n_refreshes: Option<u32>) {
        debug_assert_eq!(
            self.stats.counter_resets, 0,
            "refit_prac after a counter reset would diverge from a cold run"
        );
        self.config.prac = prac;
        self.config.tref_every_n_refreshes = tref_every_n_refreshes;
        self.next_counter_reset = if self.config.prac.counter_reset_every_trefw {
            self.config.timing.t_refw
        } else {
            u64::MAX
        };
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Whether the Alert signal is currently asserted (a row reached the
    /// Back-Off threshold and the controller has not yet serviced the ABO).
    #[must_use]
    pub fn alert_asserted(&self) -> bool {
        self.alert
    }

    /// Read-only access to a bank by flat index.
    ///
    /// # Panics
    ///
    /// Panics when `flat_bank` is out of range.
    #[must_use]
    pub fn bank(&self, flat_bank: u32) -> BankRef<'_> {
        let i = flat_bank as usize;
        BankRef::new(&self.timings, i, &self.meta[i])
    }

    /// The earliest tick at which *any* bank of the channel can change
    /// state: the branchless min-reduce of
    /// [`BankTimingTable::next_transition_at`] across every bank.
    ///
    /// A bank-local bound only — channel-wide constraints (bus occupancy,
    /// rank ACT-to-ACT spacing, refresh blocking) can push the real issue
    /// time later.
    #[must_use]
    pub fn next_bank_transition_at(&self) -> u64 {
        self.timings.min_next_transition_at()
    }

    /// The earliest tick at which any bank of `rank` can change state: the
    /// packed-argmin fold of [`BankTimingTable::next_transition_at`] over
    /// the rank's contiguous (rank-major) slice of the bank array.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    #[must_use]
    pub fn next_rank_transition_at(&self, rank: u32) -> u64 {
        assert!(rank < self.config.organization.ranks, "rank out of range");
        let banks_per_rank = self.config.organization.banks_per_rank() as usize;
        let start = rank as usize * banks_per_rank;
        self.timings
            .min_next_transition_in(start, start + banks_per_rank)
    }

    /// Number of banks in the channel.
    #[must_use]
    pub fn bank_count(&self) -> u32 {
        self.config.organization.total_banks()
    }

    /// Earliest tick at which the channel accepts any command (after
    /// channel-wide blocking by refresh or RFM).
    #[must_use]
    pub fn channel_ready_at(&self) -> u64 {
        self.channel_ready_at
    }

    fn bank_index(&self, addr: &DramAddress) -> usize {
        addr.flat_bank(&self.config.organization) as usize
    }

    /// Performs the per-tREFW counter reset if the boundary has been crossed.
    fn maybe_reset_counters(&mut self, now: u64) {
        while now >= self.next_counter_reset {
            for meta in &mut self.meta {
                meta.reset_counters();
            }
            self.alert = false;
            self.alert_suppressed_for_acts = 0;
            self.stats.counter_resets += 1;
            self.next_counter_reset += self.config.timing.t_refw;
        }
    }

    /// Checks whether `cmd` may be issued at `now` without mutating state.
    ///
    /// # Errors
    ///
    /// Returns the same errors [`DramDevice::issue`] would return.
    pub fn can_issue(&self, cmd: &DramCommand, now: u64) -> Result<(), IssueError> {
        if now < self.channel_ready_at {
            return Err(IssueError::TooEarly {
                ready_at: self.channel_ready_at,
            });
        }
        match cmd {
            DramCommand::Activate(addr) => {
                let rank_ready = self.rank_next_act[addr.rank as usize];
                if now < rank_ready {
                    return Err(IssueError::TooEarly {
                        ready_at: rank_ready,
                    });
                }
                if self.config.timing.t_faw > 0 {
                    // tFAW: the fourth-most-recent ACT to this rank must be
                    // at least one tFAW window in the past.
                    let rank = addr.rank as usize;
                    let oldest = self.rank_act_history[rank][self.rank_act_cursor[rank] as usize];
                    if oldest != ACT_NONE && now < oldest + self.config.timing.t_faw {
                        return Err(IssueError::TooEarly {
                            ready_at: oldest + self.config.timing.t_faw,
                        });
                    }
                }
                self.timings.can_activate(self.bank_index(addr), now)
            }
            DramCommand::Precharge(addr) => self.timings.can_precharge(self.bank_index(addr), now),
            DramCommand::PrechargeAll => {
                for i in 0..self.timings.len() {
                    self.timings.can_precharge(i, now)?;
                }
                Ok(())
            }
            DramCommand::Read(addr) | DramCommand::Write(addr) => {
                if now < self.bus_ready_at {
                    return Err(IssueError::TooEarly {
                        ready_at: self.bus_ready_at,
                    });
                }
                self.timings
                    .can_access_column(self.bank_index(addr), addr.row, now)
            }
            DramCommand::Refresh | DramCommand::RfmAllBank => Ok(()),
        }
    }

    /// Issues `cmd` at `now`.
    ///
    /// Returns the tick at which the command's effect completes:
    /// * for reads/writes, the data-return / write-accept time,
    /// * for refresh and RFM, the end of the channel-wide blocking period,
    /// * for ACT/PRE, the issue tick itself.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] when the command violates a timing constraint or
    /// the bank state machine.
    pub fn issue(&mut self, cmd: DramCommand, now: u64) -> Result<u64, IssueError> {
        self.maybe_reset_counters(now);
        self.can_issue(&cmd, now)?;
        match cmd {
            DramCommand::Activate(addr) => {
                let idx = self.bank_index(&addr);
                self.timings
                    .activate(idx, addr.row, now, &self.config.timing)?;
                let counter = self.meta[idx].note_activation(addr.row);
                self.rank_next_act[addr.rank as usize] = now + self.config.timing.t_rrd;
                if self.config.timing.t_faw > 0 {
                    let rank = addr.rank as usize;
                    let cursor = self.rank_act_cursor[rank] as usize;
                    self.rank_act_history[rank][cursor] = now;
                    self.rank_act_cursor[rank] = ((cursor + 1) % 4) as u8;
                }
                self.stats.activations += 1;
                self.stats.max_row_counter = self.stats.max_row_counter.max(counter);
                self.note_activation(counter);
                Ok(now)
            }
            DramCommand::Precharge(addr) => {
                let idx = self.bank_index(&addr);
                self.timings.precharge(idx, now, &self.config.timing)?;
                self.stats.precharges += 1;
                Ok(now)
            }
            DramCommand::PrechargeAll => {
                for i in 0..self.timings.len() {
                    self.timings.precharge(i, now, &self.config.timing)?;
                }
                self.stats.precharges += self.timings.len() as u64;
                Ok(now)
            }
            DramCommand::Read(addr) => {
                let idx = self.bank_index(&addr);
                let done = self.timings.read(idx, addr.row, now, &self.config.timing)?;
                self.bus_ready_at = now + self.config.timing.t_bl;
                self.stats.reads += 1;
                Ok(done)
            }
            DramCommand::Write(addr) => {
                let idx = self.bank_index(&addr);
                let done = self
                    .timings
                    .write(idx, addr.row, now, &self.config.timing)?;
                self.bus_ready_at = now + self.config.timing.t_bl;
                self.stats.writes += 1;
                Ok(done)
            }
            DramCommand::Refresh => Ok(self.service_refresh(now)),
            DramCommand::RfmAllBank => Ok(self.service_rfm(now)),
        }
    }

    /// Handles the PRAC bookkeeping after an activation whose counter reached
    /// `counter`.  Under [`prac_core::config::MitigationPolicy::Disabled`]
    /// the Alert Back-Off protocol is off entirely: counters still count
    /// (they are in-DRAM state), but Alert is never asserted.
    fn note_activation(&mut self, counter: u32) {
        if !self.config.prac.policy.uses_abo() {
            return;
        }
        if self.alert_suppressed_for_acts > 0 {
            self.alert_suppressed_for_acts -= 1;
        }
        if counter >= self.config.prac.back_off_threshold
            && !self.alert
            && self.alert_suppressed_for_acts == 0
        {
            self.alert = true;
            self.stats.alerts_asserted += 1;
        }
    }

    /// Services an all-bank refresh: blocks the channel for tRFC, and when the
    /// TREF cadence is hit, mitigates each bank's queue head.
    fn service_refresh(&mut self, now: u64) -> u64 {
        let t = &self.config.timing;
        let end = if t.refresh_stagger > 0 && self.config.organization.ranks > 1 {
            // Staggered refresh: rank r's blackout runs `r * stagger` ticks
            // longer, so the ranks come back online one after another and
            // the channel itself is never blanket-blocked for the full
            // window (commands to an already-recovered rank may issue while
            // later ranks are still refreshing).
            let banks_per_rank = self.config.organization.banks_per_rank() as usize;
            let ranks = self.config.organization.ranks as usize;
            let mut end = now + t.t_rfc;
            for rank in 0..ranks {
                let duration = t.t_rfc + t.refresh_stagger * rank as u64;
                self.timings.block_range_until(
                    rank * banks_per_rank,
                    (rank + 1) * banks_per_rank,
                    now,
                    duration,
                );
                end = end.max(now + duration);
            }
            end
        } else {
            let end = now + t.t_rfc;
            self.timings.block_all_until(now, t.t_rfc);
            self.channel_ready_at = self.channel_ready_at.max(end);
            end
        };
        self.stats.refreshes += 1;
        self.refreshes_seen += 1;
        if let Some(every) = self.config.tref_every_n_refreshes {
            if every > 0 && self.refreshes_seen.is_multiple_of(u64::from(every)) {
                for meta in &mut self.meta {
                    if meta.mitigate_queue_head().is_some() {
                        self.stats.rows_mitigated_by_tref += 1;
                    }
                }
            }
        }
        end
    }

    /// Services an RFM All-Bank: blocks the channel for tRFMab and mitigates
    /// the queue head of every bank.  Clears the Alert signal and arms the
    /// ABODelay suppression window.
    fn service_rfm(&mut self, now: u64) -> u64 {
        let t = &self.config.timing;
        let end = now + t.t_rfmab;
        self.timings.block_all_until(now, t.t_rfmab);
        for meta in &mut self.meta {
            if meta.mitigate_queue_head().is_some() {
                self.stats.rows_mitigated_by_rfm += 1;
            }
        }
        self.channel_ready_at = self.channel_ready_at.max(end);
        self.stats.rfm_all_bank += 1;
        if self.alert {
            self.alert = false;
            self.alert_suppressed_for_acts = self.config.prac.abo_delay;
        }
        end
    }

    /// Returns `true` when a Targeted Refresh will piggy-back on the next
    /// periodic refresh (used by the controller to skip a TB-RFM).
    #[must_use]
    pub fn next_refresh_performs_tref(&self) -> bool {
        match self.config.tref_every_n_refreshes {
            Some(every) if every > 0 => (self.refreshes_seen + 1).is_multiple_of(u64::from(every)),
            _ => false,
        }
    }

    /// The maximum PRAC counter across all banks (for diagnostics/tests).
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.meta
            .iter()
            .map(BankMeta::max_counter)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::config::PracConfig;

    fn tiny_device(nbo: u32) -> DramDevice {
        let prac = PracConfig::builder()
            .rowhammer_threshold(nbo)
            .back_off_threshold(nbo)
            .build();
        DramDevice::new(DramDeviceConfig::tiny_for_tests(prac))
    }

    fn addr(device: &DramDevice, bank_group: u32, bank: u32, row: u32) -> DramAddress {
        DramAddress::new(&device.config().organization, 0, bank_group, bank, row, 0)
    }

    /// Activates `row` `n` times (with precharges in between), returning the
    /// tick after the last precharge.
    fn hammer(device: &mut DramDevice, a: DramAddress, n: u32, mut now: u64) -> u64 {
        let t = device.config().timing;
        for _ in 0..n {
            now = now.max(device.channel_ready_at());
            let issued = device.issue(DramCommand::Activate(a), now);
            let issued = match issued {
                Ok(_) => now,
                Err(IssueError::TooEarly { ready_at }) => {
                    now = ready_at;
                    device.issue(DramCommand::Activate(a), now).unwrap();
                    now
                }
                Err(e) => panic!("unexpected issue error: {e}"),
            };
            now = issued + t.t_ras;
            device.issue(DramCommand::Precharge(a), now).unwrap();
            now += t.t_rp;
        }
        now
    }

    #[test]
    fn read_after_activate_returns_data() {
        let mut d = tiny_device(64);
        let a = addr(&d, 0, 0, 3);
        let t = d.config().timing;
        d.issue(DramCommand::Activate(a), 0).unwrap();
        let done = d.issue(DramCommand::Read(a), t.t_rcd).unwrap();
        assert_eq!(done, t.t_rcd + t.read_latency());
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn alert_asserts_exactly_at_nbo() {
        let nbo = 8;
        let mut d = tiny_device(nbo);
        let a = addr(&d, 0, 0, 5);
        hammer(&mut d, a, nbo - 1, 0);
        assert!(!d.alert_asserted());
        let now = d.bank(0).act_ready_at().max(d.channel_ready_at());
        d.issue(DramCommand::Activate(a), now).unwrap();
        assert!(d.alert_asserted());
        assert_eq!(d.stats().alerts_asserted, 1);
    }

    #[test]
    fn rfm_clears_alert_and_resets_hot_row() {
        let nbo = 8;
        let mut d = tiny_device(nbo);
        let a = addr(&d, 0, 0, 5);
        let end = hammer(&mut d, a, nbo, 0);
        assert!(d.alert_asserted());
        assert_eq!(d.bank(0).counter(5), nbo);
        let rfm_end = d.issue(DramCommand::RfmAllBank, end).unwrap();
        assert_eq!(rfm_end, end + d.config().timing.t_rfmab);
        assert!(!d.alert_asserted());
        assert_eq!(d.bank(0).counter(5), 0);
        assert!(d.stats().rows_mitigated_by_rfm >= 1);
    }

    #[test]
    fn rfm_blocks_the_whole_channel() {
        let mut d = tiny_device(64);
        let a = addr(&d, 1, 1, 2);
        let end = d.issue(DramCommand::RfmAllBank, 0).unwrap();
        // Any command in any bank must wait for the blocking period to end.
        let err = d.issue(DramCommand::Activate(a), end - 1).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { ready_at } if ready_at >= end));
        assert!(d.issue(DramCommand::Activate(a), end).is_ok());
    }

    #[test]
    fn refresh_blocks_for_trfc() {
        let mut d = tiny_device(64);
        let end = d.issue(DramCommand::Refresh, 0).unwrap();
        assert_eq!(end, d.config().timing.t_rfc);
        assert_eq!(d.stats().refreshes, 1);
    }

    #[test]
    fn abo_delay_suppresses_immediate_realert() {
        // With NBO = 4 and ABODelay = 1 (PRAC-1), after an RFM the very next
        // activation cannot re-assert Alert even if a counter is still at the
        // threshold (a different row kept its count because only the queue
        // head is mitigated).
        let nbo = 4;
        let mut d = tiny_device(nbo);
        let hot = addr(&d, 0, 0, 1);
        let warm = addr(&d, 0, 1, 2); // different bank: its counter survives
        let end = hammer(&mut d, warm, nbo, 0);
        assert!(d.alert_asserted());
        let end = hammer(&mut d, hot, nbo - 1, end);
        let end = end.max(d.channel_ready_at());
        let rfm_end = d.issue(DramCommand::RfmAllBank, end).unwrap();
        assert!(!d.alert_asserted());
        // `hot` was not the queue head in its bank? It was (only row) — so it
        // got mitigated. Hammer `hot` back up to NBO-1 and check the first
        // activation after RFM does not assert (ABODelay = 1 consumes it).
        let after = hammer(&mut d, hot, 1, rfm_end);
        assert!(!d.alert_asserted());
        let _ = after;
    }

    #[test]
    fn counter_reset_at_trefw_clears_counters() {
        let nbo = 1024; // keep Alert out of the picture
        let mut d = tiny_device(nbo);
        let a = addr(&d, 0, 0, 7);
        hammer(&mut d, a, 5, 0);
        assert_eq!(d.bank(0).counter(7), 5);
        // Jump past the (shortened) tREFW used by the test timing.
        let past_refw = d.config().timing.t_refw + 10;
        d.issue(DramCommand::Activate(a), past_refw).unwrap();
        // The reset happened before the new activation was applied.
        assert_eq!(d.bank(0).counter(7), 1);
        assert_eq!(d.stats().counter_resets, 1);
    }

    #[test]
    fn no_counter_reset_when_disabled() {
        let prac = PracConfig::builder()
            .rowhammer_threshold(1024)
            .counter_reset_every_trefw(false)
            .build();
        let mut d = DramDevice::new(DramDeviceConfig::tiny_for_tests(prac));
        let a = DramAddress::new(&d.config().organization, 0, 0, 0, 7, 0);
        hammer(&mut d, a, 5, 0);
        let past_refw = d.config().timing.t_refw + 10;
        d.issue(DramCommand::Activate(a), past_refw).unwrap();
        assert_eq!(d.bank(0).counter(7), 6);
        assert_eq!(d.stats().counter_resets, 0);
    }

    #[test]
    fn tref_mitigates_on_configured_cadence() {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let mut cfg = DramDeviceConfig::tiny_for_tests(prac);
        cfg.tref_every_n_refreshes = Some(2);
        let mut d = DramDevice::new(cfg);
        let a = DramAddress::new(&d.config().organization, 0, 0, 0, 3, 0);
        let end = hammer(&mut d, a, 3, 0);
        assert!(!d.next_refresh_performs_tref());
        let end = d.issue(DramCommand::Refresh, end).unwrap();
        assert_eq!(d.stats().rows_mitigated_by_tref, 0);
        assert!(d.next_refresh_performs_tref());
        d.issue(DramCommand::Refresh, end).unwrap();
        assert!(d.stats().rows_mitigated_by_tref >= 1);
        assert_eq!(d.bank(0).counter(3), 0);
    }

    #[test]
    fn disabled_policy_never_asserts_alert() {
        use prac_core::config::MitigationPolicy;
        let nbo = 8;
        let prac = PracConfig::builder()
            .rowhammer_threshold(nbo)
            .back_off_threshold(nbo)
            .policy(MitigationPolicy::Disabled)
            .build();
        let mut d = DramDevice::new(DramDeviceConfig::tiny_for_tests(prac));
        let a = addr(&d, 0, 0, 5);
        hammer(&mut d, a, nbo * 3, 0);
        // Counters still count (in-DRAM state the reset clock owns) but the
        // Alert Back-Off protocol is off entirely.
        assert!(d.bank(0).counter(5) >= nbo);
        assert!(!d.alert_asserted());
        assert_eq!(d.stats().alerts_asserted, 0);
    }

    #[test]
    fn rank_level_act_to_act_spacing_enforced() {
        let mut d = tiny_device(64);
        let a = addr(&d, 0, 0, 1);
        let b = addr(&d, 1, 0, 1); // same rank, different bank group
        d.issue(DramCommand::Activate(a), 0).unwrap();
        let err = d.issue(DramCommand::Activate(b), 1).unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { .. }));
        let ready = d.config().timing.t_rrd;
        assert!(d.issue(DramCommand::Activate(b), ready).is_ok());
    }

    #[test]
    fn tfaw_caps_four_activations_per_rank_window() {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let mut cfg = DramDeviceConfig::tiny_for_tests(prac);
        cfg.organization = cfg.organization.with_ranks(2);
        cfg.timing.t_faw = 500; // larger than tRC so tFAW is the binding constraint
        let mut d = DramDevice::new(cfg);
        let org = d.config().organization;
        let t_rrd = d.config().timing.t_rrd;
        // Four ACTs to distinct banks of rank 0 at tRRD spacing.
        let mut now = 0;
        for (bg, bank) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let a = DramAddress::new(&org, 0, bg, bank, 1, 0);
            d.issue(DramCommand::Activate(a), now).unwrap();
            now += t_rrd;
        }
        // A fifth rank-0 ACT before the window closes is deferred to
        // oldest-of-four + tFAW, even once tRC on the bank has elapsed.
        let first = DramAddress::new(&org, 0, 0, 0, 1, 0);
        d.issue(DramCommand::Precharge(first), d.config().timing.t_ras)
            .unwrap();
        let again = DramAddress::new(&org, 0, 0, 0, 2, 0);
        let err = d
            .issue(DramCommand::Activate(again), d.config().timing.t_rc)
            .unwrap_err();
        assert!(matches!(err, IssueError::TooEarly { ready_at: 500 }));
        // The other rank's window is independent.
        let other_rank = DramAddress::new(&org, 1, 0, 0, 1, 0);
        assert!(d.issue(DramCommand::Activate(other_rank), now).is_ok());
        // At the window boundary the deferred ACT issues.
        assert!(d.issue(DramCommand::Activate(again), 500).is_ok());
    }

    #[test]
    fn staggered_refresh_releases_ranks_in_order() {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let mut cfg = DramDeviceConfig::tiny_for_tests(prac);
        cfg.organization = cfg.organization.with_ranks(2);
        cfg.timing.refresh_stagger = 100;
        let mut d = DramDevice::new(cfg);
        let org = d.config().organization;
        let t_rfc = d.config().timing.t_rfc;
        let end = d.issue(DramCommand::Refresh, 0).unwrap();
        assert_eq!(end, t_rfc + 100, "last rank ends the refresh");
        let rank0 = DramAddress::new(&org, 0, 0, 0, 1, 0);
        let rank1 = DramAddress::new(&org, 1, 0, 0, 1, 0);
        // Rank 0 recovers a full stagger step before rank 1.
        assert!(matches!(
            d.can_issue(&DramCommand::Activate(rank0), t_rfc - 1),
            Err(IssueError::TooEarly { .. })
        ));
        assert!(d.can_issue(&DramCommand::Activate(rank0), t_rfc).is_ok());
        assert!(matches!(
            d.can_issue(&DramCommand::Activate(rank1), t_rfc),
            Err(IssueError::TooEarly { ready_at }) if ready_at == t_rfc + 100
        ));
        assert!(d
            .can_issue(&DramCommand::Activate(rank1), t_rfc + 100)
            .is_ok());
        // The rank-local transition bound tracks the staggered recovery.
        assert_eq!(d.next_rank_transition_at(0), t_rfc);
        assert_eq!(d.next_rank_transition_at(1), t_rfc + 100);
    }

    #[test]
    fn unstaggered_refresh_blocks_the_channel_as_before() {
        let mut d = tiny_device(64);
        let end = d.issue(DramCommand::Refresh, 0).unwrap();
        assert_eq!(end, d.config().timing.t_rfc);
        assert_eq!(d.channel_ready_at(), end);
    }

    #[test]
    fn stats_track_commands() {
        let mut d = tiny_device(64);
        let a = addr(&d, 0, 0, 1);
        let t = d.config().timing;
        d.issue(DramCommand::Activate(a), 0).unwrap();
        d.issue(DramCommand::Read(a), t.t_rcd).unwrap();
        d.issue(DramCommand::Write(a), t.t_rcd + t.t_ccd).unwrap();
        assert_eq!(d.stats().activations, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }
}
