//! DRAM organisation and device-level addressing.
//!
//! The organisation mirrors Table 3 of the paper — quad-rank DDR5 with
//! 8 bank groups × 4 banks per rank, 128 K rows per bank and 8 KB rows —
//! generalised to `channels` identical channels (the paper evaluates one).
//! [`DramAddress`] is the fully-decoded coordinate of a cache line inside
//! the memory subsystem, including the channel; the physical→DRAM mapping
//! policy that produces it lives in the `memctrl` crate.  Every per-bank /
//! per-rank accessor on [`DramOrganization`] remains *per channel*: a
//! `DramDevice` models exactly one channel, and the `MemorySubsystem` in the
//! `system-sim` crate owns one device (behind one controller) per channel.

use serde::{Deserialize, Serialize};

/// Geometry of the memory subsystem: `channels` identical DDR5 channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramOrganization {
    /// Independent memory channels (each with its own controller and
    /// command/data bus).  The per-channel geometry below is replicated per
    /// channel; `1` reproduces the paper's Table 3 system exactly.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Columns (cache-line slots) per row.
    pub columns_per_row: u32,
    /// Cache-line size in bytes (column granularity).
    pub column_bytes: u32,
}

impl DramOrganization {
    /// The paper's configuration: 4 ranks × 8 bank groups × 4 banks,
    /// 128 K rows per bank, 8 KB rows of 64-byte cache lines.
    #[must_use]
    pub fn ddr5_32gb_quad_rank() -> Self {
        Self {
            channels: 1,
            ranks: 4,
            bank_groups: 8,
            banks_per_group: 4,
            rows_per_bank: 128 * 1024,
            columns_per_row: 128,
            column_bytes: 64,
        }
    }

    /// A deliberately small organisation for fast unit tests.
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 64,
            columns_per_row: 8,
            column_bytes: 64,
        }
    }

    /// Replaces the channel count (builder-style), leaving the per-channel
    /// geometry untouched.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Replaces the rank count (builder-style), leaving the per-rank
    /// geometry untouched.
    #[must_use]
    pub fn with_ranks(mut self, ranks: u32) -> Self {
        self.ranks = ranks;
        self
    }

    /// Banks per rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks in **one** channel (the bank array a single device /
    /// controller manages).
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.banks_per_rank() * self.ranks
    }

    /// Row size in bytes.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        u64::from(self.columns_per_row) * u64::from(self.column_bytes)
    }

    /// Capacity of **one** channel in bytes.
    #[must_use]
    pub fn channel_capacity_bytes(&self) -> u64 {
        self.row_bytes() * u64::from(self.rows_per_bank) * u64::from(self.total_banks())
    }

    /// Total subsystem capacity in bytes, across every channel.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.channel_capacity_bytes() * u64::from(self.channels)
    }

    /// Converts a (rank, bank-group, bank) triple into a flat bank index in
    /// `[0, total_banks)`.
    #[must_use]
    pub fn flat_bank_index(&self, rank: u32, bank_group: u32, bank: u32) -> u32 {
        debug_assert!(rank < self.ranks);
        debug_assert!(bank_group < self.bank_groups);
        debug_assert!(bank < self.banks_per_group);
        rank * self.banks_per_rank() + bank_group * self.banks_per_group + bank
    }

    /// Inverse of [`DramOrganization::flat_bank_index`].
    #[must_use]
    pub fn unflatten_bank_index(&self, flat: u32) -> (u32, u32, u32) {
        debug_assert!(flat < self.total_banks());
        let rank = flat / self.banks_per_rank();
        let within_rank = flat % self.banks_per_rank();
        let bank_group = within_rank / self.banks_per_group;
        let bank = within_rank % self.banks_per_group;
        (rank, bank_group, bank)
    }

    /// Validates that every dimension is non-zero and power-of-two sized
    /// where the address mapping requires it.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let nonzero = self.channels > 0
            && self.ranks > 0
            && self.bank_groups > 0
            && self.banks_per_group > 0
            && self.rows_per_bank > 0
            && self.columns_per_row > 0
            && self.column_bytes > 0;
        let pow2 = self.channels.is_power_of_two()
            && self.ranks.is_power_of_two()
            && self.bank_groups.is_power_of_two()
            && self.banks_per_group.is_power_of_two()
            && self.rows_per_bank.is_power_of_two()
            && self.columns_per_row.is_power_of_two()
            && self.column_bytes.is_power_of_two();
        nonzero && pow2
    }
}

impl Default for DramOrganization {
    fn default() -> Self {
        Self::ddr5_32gb_quad_rank()
    }
}

/// Fully decoded DRAM coordinate of one cache line.
///
/// The `channel` field is listed first so the derived ordering sorts by
/// channel before any within-channel coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DramAddress {
    /// Channel index (0 in single-channel systems).
    pub channel: u32,
    /// Rank index.
    pub rank: u32,
    /// Bank-group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column (cache-line slot) within the row.
    pub column: u32,
}

impl DramAddress {
    /// Creates a channel-0 address, asserting (in debug builds) that it is
    /// within the bounds of `org`.  Multi-channel coordinates are built with
    /// [`DramAddress::with_channel`].
    #[must_use]
    pub fn new(
        org: &DramOrganization,
        rank: u32,
        bank_group: u32,
        bank: u32,
        row: u32,
        column: u32,
    ) -> Self {
        debug_assert!(rank < org.ranks, "rank {rank} out of range");
        debug_assert!(
            bank_group < org.bank_groups,
            "bank group {bank_group} out of range"
        );
        debug_assert!(bank < org.banks_per_group, "bank {bank} out of range");
        debug_assert!(row < org.rows_per_bank, "row {row} out of range");
        debug_assert!(column < org.columns_per_row, "column {column} out of range");
        Self {
            channel: 0,
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Replaces the channel index (builder-style).
    #[must_use]
    pub fn with_channel(mut self, channel: u32) -> Self {
        self.channel = channel;
        self
    }

    /// Flat bank index of this address **within its channel** (the index a
    /// single channel's device uses; the channel itself selects the device).
    #[must_use]
    pub fn flat_bank(&self, org: &DramOrganization) -> u32 {
        org.flat_bank_index(self.rank, self.bank_group, self.bank)
    }

    /// Returns `true` when two addresses target the same bank (and therefore
    /// contend for the same row buffer).
    #[must_use]
    pub fn same_bank(&self, other: &DramAddress) -> bool {
        self.channel == other.channel
            && self.rank == other.rank
            && self.bank_group == other.bank_group
            && self.bank == other.bank
    }

    /// Returns `true` when two addresses target the same row of the same bank.
    #[must_use]
    pub fn same_row(&self, other: &DramAddress) -> bool {
        self.same_bank(other) && self.row == other.row
    }
}

impl std::fmt::Display for DramAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Channel 0 is elided so single-channel output stays compact (and
        // byte-identical to the pre-multi-channel format).
        if self.channel != 0 {
            write!(f, "ch{}.", self.channel)?;
        }
        write!(
            f,
            "r{}.bg{}.b{}.row{}.col{}",
            self.rank, self.bank_group, self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_organisation_matches_table3() {
        let org = DramOrganization::ddr5_32gb_quad_rank();
        assert_eq!(org.total_banks(), 128);
        assert_eq!(org.banks_per_rank(), 32);
        assert_eq!(org.rows_per_bank, 128 * 1024);
        assert_eq!(org.row_bytes(), 8 * 1024);
        // 128 GB channel: 8KB * 128K rows * 128 banks.
        assert_eq!(org.capacity_bytes(), 128 * 1024 * 1024 * 1024);
        assert!(org.is_valid());
    }

    #[test]
    fn flat_bank_index_round_trips() {
        let org = DramOrganization::ddr5_32gb_quad_rank();
        for flat in 0..org.total_banks() {
            let (rank, bg, bank) = org.unflatten_bank_index(flat);
            assert_eq!(org.flat_bank_index(rank, bg, bank), flat);
        }
    }

    #[test]
    fn tiny_org_is_valid() {
        assert!(DramOrganization::tiny_for_tests().is_valid());
    }

    #[test]
    fn invalid_org_detected() {
        let mut org = DramOrganization::tiny_for_tests();
        org.rows_per_bank = 0;
        assert!(!org.is_valid());
        let mut org = DramOrganization::tiny_for_tests();
        org.columns_per_row = 3;
        assert!(!org.is_valid());
        let org = DramOrganization::tiny_for_tests().with_channels(0);
        assert!(!org.is_valid());
        let org = DramOrganization::tiny_for_tests().with_channels(3);
        assert!(!org.is_valid());
    }

    #[test]
    fn ranks_scale_banks_and_capacity() {
        let quad = DramOrganization::ddr5_32gb_quad_rank();
        let dual = quad.with_ranks(2);
        assert!(dual.is_valid());
        assert_eq!(dual.banks_per_rank(), quad.banks_per_rank());
        assert_eq!(dual.total_banks(), quad.total_banks() / 2);
        assert_eq!(dual.capacity_bytes(), quad.capacity_bytes() / 2);
        assert!(!quad.with_ranks(0).is_valid());
        assert!(!quad.with_ranks(3).is_valid());
    }

    #[test]
    fn channels_scale_capacity_not_per_channel_geometry() {
        let one = DramOrganization::ddr5_32gb_quad_rank();
        let four = one.with_channels(4);
        assert!(four.is_valid());
        assert_eq!(four.total_banks(), one.total_banks());
        assert_eq!(four.channel_capacity_bytes(), one.capacity_bytes());
        assert_eq!(four.capacity_bytes(), 4 * one.capacity_bytes());
    }

    #[test]
    fn same_row_and_bank_predicates() {
        let org = DramOrganization::tiny_for_tests();
        let a = DramAddress::new(&org, 0, 1, 1, 5, 0);
        let b = DramAddress::new(&org, 0, 1, 1, 5, 3);
        let c = DramAddress::new(&org, 0, 1, 1, 6, 3);
        let d = DramAddress::new(&org, 0, 0, 1, 5, 3);
        assert!(a.same_row(&b));
        assert!(a.same_bank(&c));
        assert!(!a.same_row(&c));
        assert!(!a.same_bank(&d));
        // The same within-channel coordinates in another channel are a
        // different bank (and a different row).
        let e = a.with_channel(1);
        assert!(!a.same_bank(&e));
        assert!(!a.same_row(&e));
    }

    #[test]
    fn display_is_compact() {
        let org = DramOrganization::tiny_for_tests();
        let a = DramAddress::new(&org, 0, 1, 0, 9, 2);
        assert_eq!(a.to_string(), "r0.bg1.b0.row9.col2");
        assert_eq!(a.with_channel(2).to_string(), "ch2.r0.bg1.b0.row9.col2");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn flat_bank_round_trip_random(rank in 0u32..4, bg in 0u32..8, bank in 0u32..4) {
            let org = DramOrganization::ddr5_32gb_quad_rank();
            let flat = org.flat_bank_index(rank, bg, bank);
            prop_assert!(flat < org.total_banks());
            prop_assert_eq!(org.unflatten_bank_index(flat), (rank, bg, bank));
        }
    }
}
