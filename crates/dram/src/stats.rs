//! Device-side statistics collected during simulation.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::device::DramDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Row activations performed (demand ACT commands).
    pub activations: u64,
    /// Precharges performed.
    pub precharges: u64,
    /// Column reads performed.
    pub reads: u64,
    /// Column writes performed.
    pub writes: u64,
    /// All-bank refresh commands serviced.
    pub refreshes: u64,
    /// RFM All-Bank commands serviced.
    pub rfm_all_bank: u64,
    /// Rows mitigated via RFM commands (summed over banks).
    pub rows_mitigated_by_rfm: u64,
    /// Rows mitigated via Targeted Refresh.
    pub rows_mitigated_by_tref: u64,
    /// Number of times the Alert signal was asserted (ABO events).
    pub alerts_asserted: u64,
    /// Number of per-row counter resets performed at tREFW boundaries
    /// (counted once per reset event, not per row).
    pub counter_resets: u64,
    /// Highest per-row PRAC counter value *observed at activate time* over
    /// the whole run — the security headline of an attack run: a value at or
    /// above the RowHammer threshold means some row was hammered past `NRH`
    /// before any mitigation reset it.  (The live counters reset on RFM /
    /// TREF / tREFW, so this peak is tracked here rather than recovered from
    /// the final bank state.)
    pub max_row_counter: u32,
}

impl DramStats {
    /// Total rows mitigated by any mechanism.
    #[must_use]
    pub fn total_mitigations(&self) -> u64 {
        self.rows_mitigated_by_rfm + self.rows_mitigated_by_tref
    }

    /// Merges another statistics block into this one (used when aggregating
    /// across devices or runs).
    pub fn merge(&mut self, other: &DramStats) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.rfm_all_bank += other.rfm_all_bank;
        self.rows_mitigated_by_rfm += other.rows_mitigated_by_rfm;
        self.rows_mitigated_by_tref += other.rows_mitigated_by_tref;
        self.alerts_asserted += other.alerts_asserted;
        self.counter_resets += other.counter_resets;
        // A peak, not a flow: the subsystem-wide maximum is the max of the
        // per-channel maxima.
        self.max_row_counter = self.max_row_counter.max(other.max_row_counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = DramStats {
            activations: 1,
            precharges: 2,
            reads: 3,
            writes: 4,
            refreshes: 5,
            rfm_all_bank: 6,
            rows_mitigated_by_rfm: 7,
            rows_mitigated_by_tref: 8,
            alerts_asserted: 9,
            counter_resets: 10,
            max_row_counter: 11,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.activations, 2);
        assert_eq!(a.counter_resets, 20);
        assert_eq!(a.total_mitigations(), 30);
        assert_eq!(a.max_row_counter, 11, "peaks merge by max, not by sum");
    }

    #[test]
    fn default_is_zeroed() {
        let s = DramStats::default();
        assert_eq!(s.total_mitigations(), 0);
        assert_eq!(s.activations, 0);
    }
}
