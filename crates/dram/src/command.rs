//! DRAM commands issued by the memory controller.

use serde::{Deserialize, Serialize};

use crate::org::DramAddress;

/// Commands understood by the device model.
///
/// Per-bank commands carry the full [`DramAddress`] of the target; channel- or
/// rank-wide commands (refresh, RFM) carry no address because they affect
/// every bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Activate (open) the row addressed by `addr` in its bank.
    Activate(DramAddress),
    /// Precharge (close) the bank containing `addr`.
    Precharge(DramAddress),
    /// Precharge every bank in the channel.
    PrechargeAll,
    /// Column read of the cache line at `addr` (its row must be open).
    Read(DramAddress),
    /// Column write of the cache line at `addr` (its row must be open).
    Write(DramAddress),
    /// All-bank periodic refresh (REFab). When the device is configured with
    /// Targeted Refresh, a refresh may also mitigate the head of each bank's
    /// mitigation queue.
    Refresh,
    /// RFM All-Bank: blocks the channel for tRFMab and mitigates the head of
    /// each bank's mitigation queue.
    RfmAllBank,
}

impl DramCommand {
    /// The address targeted by a per-bank command, if any.
    #[must_use]
    pub fn address(&self) -> Option<DramAddress> {
        match self {
            DramCommand::Activate(a)
            | DramCommand::Precharge(a)
            | DramCommand::Read(a)
            | DramCommand::Write(a) => Some(*a),
            DramCommand::PrechargeAll | DramCommand::Refresh | DramCommand::RfmAllBank => None,
        }
    }

    /// Returns `true` for commands that block the entire channel
    /// (refresh and RFM).
    #[must_use]
    pub fn is_channel_wide(&self) -> bool {
        matches!(
            self,
            DramCommand::PrechargeAll | DramCommand::Refresh | DramCommand::RfmAllBank
        )
    }

    /// Short mnemonic used in debug traces.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Activate(_) => "ACT",
            DramCommand::Precharge(_) => "PRE",
            DramCommand::PrechargeAll => "PREab",
            DramCommand::Read(_) => "RD",
            DramCommand::Write(_) => "WR",
            DramCommand::Refresh => "REFab",
            DramCommand::RfmAllBank => "RFMab",
        }
    }
}

/// Reasons a command could not be issued at the requested time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueError {
    /// A timing constraint has not yet elapsed; the command may be legal at
    /// the contained tick.
    TooEarly {
        /// Earliest tick at which the command could become legal.
        ready_at: u64,
    },
    /// The command is illegal in the bank's current state (e.g. reading from
    /// a closed row or activating an already-open bank).
    IllegalState {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssueError::TooEarly { ready_at } => {
                write!(
                    f,
                    "command violates a timing constraint until tick {ready_at}"
                )
            }
            IssueError::IllegalState { reason } => {
                write!(f, "illegal command for bank state: {reason}")
            }
        }
    }
}

impl std::error::Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::DramOrganization;

    #[test]
    fn address_extraction() {
        let org = DramOrganization::tiny_for_tests();
        let addr = DramAddress::new(&org, 0, 0, 1, 3, 2);
        assert_eq!(DramCommand::Activate(addr).address(), Some(addr));
        assert_eq!(DramCommand::Refresh.address(), None);
        assert_eq!(DramCommand::RfmAllBank.address(), None);
    }

    #[test]
    fn channel_wide_commands() {
        assert!(DramCommand::Refresh.is_channel_wide());
        assert!(DramCommand::RfmAllBank.is_channel_wide());
        assert!(DramCommand::PrechargeAll.is_channel_wide());
        let org = DramOrganization::tiny_for_tests();
        let addr = DramAddress::new(&org, 0, 0, 0, 0, 0);
        assert!(!DramCommand::Read(addr).is_channel_wide());
    }

    #[test]
    fn mnemonics_are_unique() {
        let org = DramOrganization::tiny_for_tests();
        let addr = DramAddress::new(&org, 0, 0, 0, 0, 0);
        let all = [
            DramCommand::Activate(addr),
            DramCommand::Precharge(addr),
            DramCommand::PrechargeAll,
            DramCommand::Read(addr),
            DramCommand::Write(addr),
            DramCommand::Refresh,
            DramCommand::RfmAllBank,
        ];
        let mut set = std::collections::HashSet::new();
        for cmd in all {
            assert!(set.insert(cmd.mnemonic()));
        }
    }

    #[test]
    fn issue_error_display() {
        let e = IssueError::TooEarly { ready_at: 42 };
        assert!(e.to_string().contains("42"));
        let e = IssueError::IllegalState {
            reason: "row closed",
        };
        assert!(e.to_string().contains("row closed"));
    }
}
