//! # dram-sim
//!
//! A cycle-accurate DDR5 DRAM device model with **Per Row Activation Counting
//! (PRAC)** support, built for studying RowHammer mitigations and the timing
//! channels they introduce.
//!
//! The model covers everything the paper's evaluation needs from Ramulator2:
//!
//! * the DDR5 organisation of Table 3 (channel → rank → bank group → bank →
//!   row → column) with the 32 Gb DDR5-8000B timing set,
//! * a per-bank command/state machine enforcing the relevant timing
//!   constraints (tRCD, tRAS, tRP, tRC, tWR, tRTP, tCCD, tRRD, tRFC,
//!   tRFMab, tREFI),
//! * open-row tracking (row-buffer hits vs conflicts),
//! * per-row activation counters incremented on every activation,
//! * the Alert Back-Off protocol: the device asserts Alert when any counter
//!   reaches the Back-Off threshold, honours `ABOACT` and `ABODelay`, and
//!   performs mitigations when the controller issues RFM All-Bank commands,
//! * in-DRAM mitigation queues (single-entry frequency-based, FIFO, or
//!   idealised priority, from [`prac_core::queue`]),
//! * Targeted Refresh (TREF) piggy-backed on periodic refresh,
//! * optional per-row counter reset at every refresh window (tREFW),
//! * activation/refresh/RFM statistics for the energy model.
//!
//! The memory controller lives in the separate `memctrl` crate; this crate
//! only models the device side of the interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod device;
pub mod org;
pub mod profile;
pub mod stats;
pub mod timing;

pub use bank::Bank;
pub use command::DramCommand;
pub use device::{DramDevice, DramDeviceConfig};
pub use org::{DramAddress, DramOrganization};
pub use profile::{DeviceProfile, EccAdjudication, OnDieEcc};
pub use stats::DramStats;
pub use timing::DramTimingParams;
