//! Property tests for the per-bank DRAM state machine.
//!
//! Random command sequences — activates, precharges, reads and writes at
//! randomly spaced ticks — are replayed against a [`Bank`] while a shadow
//! model records when each successful command happened.  The properties:
//!
//! 1. **Timing ordering is never violated.**  Whenever the bank *accepts* a
//!    command, the mandated gap to the commands that precede it has elapsed:
//!    tRCD between ACT and a column access, tRAS between ACT and PRE, tRP
//!    between PRE and the next ACT, tRC between ACTs, tCCD between column
//!    accesses, and write recovery (tCL + tBL + tWR) between a write and
//!    the precharge.
//! 2. **Rejections name the future.**  A `TooEarly` rejection always carries
//!    a `ready_at` strictly after the attempted tick.
//! 3. **The next-transition bound moves forward.**  Immediately after the
//!    bank accepts a command at tick `t`, `next_transition_at()` is strictly
//!    greater than `t` — the event-driven engine relies on this to sleep
//!    without re-polling.
//!
//! The proptest shim replays a fixed number of deterministically seeded
//! cases, so failures reproduce bit-for-bit across runs and machines.

use dram_sim::bank::Bank;
use dram_sim::command::{DramCommand, IssueError};
use dram_sim::device::{DramDevice, DramDeviceConfig};
use dram_sim::org::DramAddress;
use dram_sim::timing::DramTimingParams;
use prac_core::config::PracConfig;
use prac_core::queue::QueueKind;
use proptest::collection;
use proptest::prelude::*;

/// Shadow record of the last accepted command of each class.
#[derive(Debug, Default, Clone, Copy)]
struct Shadow {
    last_act: Option<u64>,
    last_precharge: Option<u64>,
    last_column: Option<u64>,
    last_write: Option<u64>,
}

/// One randomised step: command selector, target row, tick delta.
type Step = (u8, u32, u64);

fn drive(timing: &DramTimingParams, steps: &[Step]) {
    let mut bank = Bank::new(QueueKind::SingleEntryFrequency);
    let mut shadow = Shadow::default();
    let mut now = 0u64;
    for &(cmd, row, delta) in steps {
        now += delta;
        let before_open = bank.open_row();
        match cmd % 4 {
            0 => match bank.activate(row, now, timing) {
                Ok(_) => {
                    assert_eq!(before_open, None, "ACT accepted while a row was open");
                    if let Some(act) = shadow.last_act {
                        assert!(now >= act + timing.t_rc, "tRC violated: {act} -> {now}");
                    }
                    if let Some(pre) = shadow.last_precharge {
                        assert!(now >= pre + timing.t_rp, "tRP violated: {pre} -> {now}");
                    }
                    shadow.last_act = Some(now);
                    assert!(bank.next_transition_at() > now);
                }
                Err(IssueError::TooEarly { ready_at }) => {
                    assert!(ready_at > now, "TooEarly must name a future tick");
                }
                Err(IssueError::IllegalState { .. }) => {
                    assert!(before_open.is_some(), "ACT is only illegal on an open bank");
                }
            },
            1 => match bank.precharge(now, timing) {
                Ok(()) => {
                    if before_open.is_some() {
                        let act = shadow.last_act.expect("open row implies an ACT");
                        assert!(now >= act + timing.t_ras, "tRAS violated: {act} -> {now}");
                        if let Some(write) = shadow.last_write {
                            let recovery = timing.t_cl + timing.t_bl + timing.t_wr;
                            assert!(
                                now >= write + recovery,
                                "write recovery violated: {write} -> {now}"
                            );
                        }
                        shadow.last_precharge = Some(now);
                        shadow.last_column = None;
                        shadow.last_write = None;
                        assert!(bank.next_transition_at() > now);
                    }
                    assert_eq!(bank.open_row(), None);
                }
                Err(IssueError::TooEarly { ready_at }) => assert!(ready_at > now),
                Err(IssueError::IllegalState { reason }) => {
                    panic!("precharge must never be an illegal state: {reason}")
                }
            },
            col => {
                let result = if col == 2 {
                    bank.read(row, now, timing)
                } else {
                    bank.write(row, now, timing)
                };
                match result {
                    Ok(done) => {
                        assert_eq!(before_open, Some(row), "column access to a closed row");
                        let act = shadow.last_act.expect("open row implies an ACT");
                        assert!(now >= act + timing.t_rcd, "tRCD violated: {act} -> {now}");
                        if let Some(column) = shadow.last_column {
                            assert!(now >= column + timing.t_ccd, "tCCD violated");
                        }
                        assert!(done > now, "data/write-accept time must be in the future");
                        shadow.last_column = Some(now);
                        if col != 2 {
                            shadow.last_write = Some(now);
                        }
                        assert!(bank.next_transition_at() > now);
                    }
                    Err(IssueError::TooEarly { ready_at }) => assert!(ready_at > now),
                    Err(IssueError::IllegalState { .. }) => {
                        assert_ne!(
                            before_open,
                            Some(row),
                            "column access to the open row must not be an illegal state"
                        );
                    }
                }
            }
        }
    }
}

/// One randomised subsystem step: channel selector, command selector, bank
/// selector, row, tick delta.
type DeviceStep = (u8, u8, u8, u32, u64);

/// Replays a random command stream against one [`DramDevice`] per channel
/// (the subsystem shape: a device models exactly one channel) and checks the
/// struct-of-arrays layout's device-wide invariants at every step:
///
/// * **The min-reduce is honest.**  `next_bank_transition_at()` equals the
///   fold of `next_transition_at` over every per-bank view — the branchless
///   reduction can never disagree with the per-bank state it summarises.
/// * **The bound is monotone.**  Accepted commands only push per-bank
///   windows into the future and rejected commands mutate nothing, so the
///   device-wide bound never moves backwards as the stream advances.
/// * **Ordering survives the layout.**  Whenever a bank accepts an ACT, the
///   tRC/tRP gaps to that same bank's previous ACT/PRE have elapsed, and
///   accepted column accesses respect tRCD — indexed per (channel, bank) so
///   cross-bank SoA indexing errors cannot hide.
fn drive_devices(channels: u32, steps: &[DeviceStep]) {
    let config = DramDeviceConfig::tiny_for_tests(PracConfig::paper_default());
    let org = config.organization;
    let timing = config.timing;
    let mut devices: Vec<DramDevice> = (0..channels)
        .map(|_| DramDevice::new(config.clone()))
        .collect();
    let banks = org.total_banks();
    let mut last_act = vec![None::<u64>; (channels * banks) as usize];
    let mut last_pre = vec![None::<u64>; (channels * banks) as usize];
    let mut now = 0u64;
    for &(chan_sel, cmd_sel, bank_sel, row, delta) in steps {
        now += delta;
        let channel = u32::from(chan_sel) % channels;
        let device = &mut devices[channel as usize];
        let flat = u32::from(bank_sel) % banks;
        let addr = DramAddress::new(
            &org,
            flat / org.banks_per_rank(),
            (flat / org.banks_per_group) % org.bank_groups,
            flat % org.banks_per_group,
            row % org.rows_per_bank,
            0,
        )
        .with_channel(channel);
        let before = device.next_bank_transition_at();
        let command = match cmd_sel % 4 {
            0 => DramCommand::Activate(addr),
            1 => DramCommand::Precharge(addr),
            2 => DramCommand::Read(addr),
            _ => DramCommand::Write(addr),
        };
        let shadow = (channel * banks + flat) as usize;
        let was_open = device.bank(flat).open_row().is_some();
        match device.issue(command, now) {
            Ok(_) => match cmd_sel % 4 {
                0 => {
                    if let Some(act) = last_act[shadow] {
                        assert!(now >= act + timing.t_rc, "tRC violated: {act} -> {now}");
                    }
                    if let Some(pre) = last_pre[shadow] {
                        assert!(now >= pre + timing.t_rp, "tRP violated: {pre} -> {now}");
                    }
                    last_act[shadow] = Some(now);
                }
                // A precharge of an already-closed bank is an accepted
                // no-op: it pushes no window, so the shadow ignores it.
                1 if was_open => {
                    if let Some(act) = last_act[shadow] {
                        assert!(now >= act + timing.t_ras, "tRAS violated: {act} -> {now}");
                    }
                    last_pre[shadow] = Some(now);
                }
                1 => {}
                _ => {
                    let act = last_act[shadow].expect("column access implies an ACT");
                    assert!(now >= act + timing.t_rcd, "tRCD violated: {act} -> {now}");
                }
            },
            Err(IssueError::TooEarly { ready_at }) => {
                assert!(ready_at > now, "TooEarly must name a future tick");
            }
            Err(IssueError::IllegalState { .. }) => {}
        }
        let folded = (0..banks)
            .map(|index| device.bank(index).next_transition_at())
            .min()
            .expect("a device has at least one bank");
        assert_eq!(
            device.next_bank_transition_at(),
            folded,
            "min-reduce disagrees with the per-bank fold on channel {channel}"
        );
        assert!(
            device.next_bank_transition_at() >= before,
            "device-wide bound moved backwards on channel {channel}"
        );
    }
}

/// Replays a random command stream against one 2-rank, tFAW-enabled device
/// and checks the rank-aware invariants at every step:
///
/// * **The per-rank tFAW window is never exceeded.**  A shadow log of every
///   accepted ACT's (rank, tick) proves that no half-open window
///   `(now - tFAW, now]` ever holds more than four ACTs to one rank — the
///   rolling-window restatement of the four-ACT ring the device maintains.
/// * **The rank lane agrees with the per-bank fold.**  For each rank,
///   `next_rank_transition_at(rank)` equals the min-fold of
///   `next_transition_at` over exactly that rank's banks, and the
///   device-wide `next_bank_transition_at()` equals the min across the two
///   rank lanes — so the packed subrange reduction can neither leak a bank
///   into the wrong rank nor disagree with the full reduce.
fn drive_two_rank_device(t_faw: u64, steps: &[DeviceStep]) {
    let mut config = DramDeviceConfig::tiny_for_tests(PracConfig::paper_default());
    config.organization = config.organization.with_ranks(2);
    config.timing.t_faw = t_faw;
    let org = config.organization;
    let mut device = DramDevice::new(config);
    let banks = org.total_banks();
    let banks_per_rank = org.banks_per_rank();
    let mut act_log: Vec<(u32, u64)> = Vec::new();
    let mut now = 0u64;
    for &(_, cmd_sel, bank_sel, row, delta) in steps {
        now += delta;
        let flat = u32::from(bank_sel) % banks;
        let rank = flat / banks_per_rank;
        let addr = DramAddress::new(
            &org,
            rank,
            (flat / org.banks_per_group) % org.bank_groups,
            flat % org.banks_per_group,
            row % org.rows_per_bank,
            0,
        );
        let command = match cmd_sel % 4 {
            0 => DramCommand::Activate(addr),
            1 => DramCommand::Precharge(addr),
            2 => DramCommand::Read(addr),
            _ => DramCommand::Write(addr),
        };
        let accepted_act =
            matches!(command, DramCommand::Activate(_)) && device.issue(command, now).is_ok();
        if accepted_act {
            act_log.push((rank, now));
            let in_window = act_log
                .iter()
                .filter(|&&(r, tick)| r == rank && tick + t_faw > now)
                .count();
            assert!(
                in_window <= 4,
                "tFAW exceeded: {in_window} ACTs to rank {rank} within {t_faw} ticks of {now}"
            );
        }
        for lane in 0..org.ranks {
            let start = lane * banks_per_rank;
            let folded = (start..start + banks_per_rank)
                .map(|index| device.bank(index).next_transition_at())
                .min()
                .expect("a rank has at least one bank");
            assert_eq!(
                device.next_rank_transition_at(lane),
                folded,
                "rank lane {lane} disagrees with its per-bank fold"
            );
        }
        assert_eq!(
            device.next_bank_transition_at(),
            (0..org.ranks)
                .map(|lane| device.next_rank_transition_at(lane))
                .min()
                .expect("a device has at least one rank"),
            "device-wide bound disagrees with the min across rank lanes"
        );
    }
}

proptest! {
    #[test]
    fn device_min_reduce_and_ordering_hold_across_channel_counts(
        steps in collection::vec((0u8..8, 0u8..4, 0u8..8, 0u32..64, 0u64..120), 1..200),
    ) {
        for channels in [1u32, 2, 4] {
            drive_devices(channels, &steps);
        }
    }

    #[test]
    fn two_rank_device_honours_tfaw_and_the_rank_lanes(
        t_faw in 1u64..600,
        steps in collection::vec((0u8..1, 0u8..4, 0u8..8, 0u32..64, 0u64..120), 1..200),
    ) {
        drive_two_rank_device(t_faw, &steps);
    }

    #[test]
    fn random_sequences_respect_timing_under_paper_parameters(
        steps in collection::vec((0u8..4, 0u32..8, 0u64..600), 1..250),
    ) {
        drive(&DramTimingParams::ddr5_8000b(), &steps);
    }

    #[test]
    fn random_sequences_respect_timing_under_test_parameters(
        steps in collection::vec((0u8..4, 0u32..8, 0u64..90), 1..250),
    ) {
        drive(&DramTimingParams::fast_for_tests(), &steps);
    }

    #[test]
    fn fresh_activates_gate_the_immediate_followups(
        row in 0u32..64,
        delta in 0u64..32,
    ) {
        let timing = DramTimingParams::ddr5_8000b();
        let mut bank = Bank::new(QueueKind::SingleEntryFrequency);
        let start = 10 + delta;
        bank.activate(row, start, &timing).unwrap();

        // Column access strictly inside tRCD must be rejected with the exact
        // release tick; the same for a precharge inside tRAS.
        prop_assume!(timing.t_rcd > 0 && timing.t_ras > 0);
        let too_early = bank.read(row, start + timing.t_rcd - 1, &timing).unwrap_err();
        prop_assert!(
            matches!(too_early, IssueError::TooEarly { ready_at } if ready_at == start + timing.t_rcd)
        );
        let too_early = bank.precharge(start + timing.t_ras - 1, &timing).unwrap_err();
        prop_assert!(
            matches!(too_early, IssueError::TooEarly { ready_at } if ready_at == start + timing.t_ras)
        );

        // And the bank's advertised next transition matches the earlier of
        // the two windows.
        prop_assert_eq!(
            bank.next_transition_at(),
            (start + timing.t_rcd).min(start + timing.t_ras)
        );
    }

    #[test]
    fn blocking_commands_push_the_next_transition_past_the_window(
        row in 0u32..64,
        duration in 1u64..5_000,
    ) {
        let timing = DramTimingParams::ddr5_8000b();
        let mut bank = Bank::new(QueueKind::SingleEntryFrequency);
        bank.activate(row, 0, &timing).unwrap();
        bank.block_until(10, duration);
        prop_assert_eq!(bank.open_row(), None, "blocking closes the row");
        prop_assert!(bank.next_transition_at() >= 10 + duration);
        prop_assert!(matches!(
            bank.activate(row, 10 + duration - 1, &timing),
            Err(IssueError::TooEarly { .. })
        ));
    }
}
