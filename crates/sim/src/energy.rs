//! Energy accounting for full-system runs (Table 5).

use prac_core::energy::{EnergyInputs, EnergyModel, EnergyOverhead};

use crate::system::SystemResult;

/// Converts a run result into the inputs of the `prac-core` energy model.
///
/// Following the paper's accounting (Section 6.7), each RFM is charged five
/// additional activations (four victim refreshes plus one counter-reset
/// activation of the aggressor); `banks_per_rfm` is therefore fixed at 1 and
/// the RFM count is the number of RFM commands issued by the controller.
#[must_use]
pub fn energy_inputs_for(result: &SystemResult, _banks_per_rfm: u32) -> EnergyInputs {
    EnergyInputs {
        activations: result.dram_stats.activations,
        reads_writes: result.dram_stats.reads + result.dram_stats.writes,
        refreshes: result.dram_stats.refreshes,
        rfms: result.controller_stats.total_rfms(),
        banks_per_rfm: 1,
        execution_time_ns: result.execution_time_ns(),
    }
}

/// Computes the Table 5 energy-overhead row for a protected run relative to
/// its baseline.
#[must_use]
pub fn energy_overhead_for(
    baseline: &SystemResult,
    protected: &SystemResult,
    banks_per_rfm: u32,
) -> EnergyOverhead {
    let model = EnergyModel::default();
    model.overhead(
        &energy_inputs_for(baseline, banks_per_rfm),
        &energy_inputs_for(protected, banks_per_rfm),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::stats::CoreStats;
    use dram_sim::stats::DramStats;
    use memctrl::stats::ControllerStats;

    fn result(activations: u64, rows_mitigated: u64, ticks: u64) -> SystemResult {
        let controller_stats = ControllerStats {
            tb_rfms: rows_mitigated,
            ..Default::default()
        };
        SystemResult {
            core_stats: vec![CoreStats::default()],
            controller_stats,
            dram_stats: DramStats {
                activations,
                reads: activations,
                writes: 0,
                refreshes: 10,
                rows_mitigated_by_rfm: rows_mitigated,
                ..DramStats::default()
            },
            channel_stats: Vec::new(),
            rfm_log: Vec::new(),
            elapsed_ticks: ticks,
            completed: true,
        }
    }

    #[test]
    fn identical_runs_have_zero_overhead() {
        let base = result(10_000, 0, 1_000_000);
        let overhead = energy_overhead_for(&base, &base, 128);
        assert!(overhead.total.abs() < 1e-12);
    }

    #[test]
    fn rfms_and_longer_runtime_increase_overhead() {
        let base = result(10_000, 0, 1_000_000);
        let protected = result(10_000, 500, 1_050_000);
        let overhead = energy_overhead_for(&base, &protected, 128);
        assert!(overhead.mitigation > 0.0);
        assert!(overhead.non_mitigation > 0.0);
        assert!((overhead.total - overhead.mitigation - overhead.non_mitigation).abs() < 1e-12);
    }

    #[test]
    fn inputs_reflect_run_counters() {
        let r = result(123, 7, 400);
        let inputs = energy_inputs_for(&r, 64);
        assert_eq!(inputs.activations, 123);
        assert_eq!(
            inputs.rfms, 7,
            "five activations are charged per issued RFM"
        );
        assert_eq!(inputs.banks_per_rfm, 1);
        assert!((inputs.execution_time_ns - 100.0).abs() < 1e-9);
    }
}
