//! # system-sim
//!
//! The full-system simulation harness: trace-driven cores and caches
//! (`cpu-sim`) in front of a PRAC-enabled DDR5 memory system (`memctrl` +
//! `dram-sim`), used to reproduce the paper's performance, energy and
//! sensitivity studies (Figures 10–14 and Table 5).
//!
//! * [`system`] — the [`system::SystemSimulation`] wiring the CPU cluster to
//!   the memory subsystem, and the per-run result record (aggregate and
//!   per-channel statistics).
//! * [`subsystem`] — the multi-channel [`subsystem::MemorySubsystem`]: one
//!   memory controller (with its own PRAC device and mitigation engine) per
//!   channel behind a channel-bit address router; one channel reproduces
//!   the paper's single-channel system bit-identically.
//! * [`event`] — the two interchangeable execution engines behind one trait:
//!   the legacy per-tick loop ([`event::TickEngine`]) and the event-driven
//!   engine ([`event::EventEngine`]) whose slab-backed [`event::EventWheel`]
//!   jumps straight to each component's next wake-up while producing
//!   bit-identical results (asserted by `tests/engine_equivalence.rs`).
//! * [`experiment`] — the mitigation-descriptor layer of the pluggable
//!   defense API: declarative [`experiment::MitigationSetup`]s (baseline,
//!   ABO-Only, ABO+ACB-RFM, TPRAC with/without TREF and counter reset, and
//!   the beyond-paper PRFM and PARA engines), the
//!   [`experiment::mitigation_registry`] that enumerates them for the CLI,
//!   the campaigns and the differential harness, and helpers that run a
//!   workload under a configuration and report normalised performance.
//!   [`experiment::ExperimentConfig`] also carries the adversarial
//!   co-runner knob (`attack`): when set, one extra core replays a
//!   registered `workloads::attack` pattern next to the benign workload.
//! * [`energy`] — converts run results into the Table 5 energy-overhead rows
//!   via the `prac-core` energy model.
//! * [`snapshot`] — the checkpoint/fork execution layer:
//!   [`system::SystemSimulation::run_until`] pauses a run on a tick boundary
//!   as a [`snapshot::PausedSimulation`] that can be forked (deep-copied),
//!   refitted to a different mitigation configuration, and resumed
//!   bit-identically to an uninterrupted run — the campaign runner uses it
//!   to simulate shared scenario prefixes once and fork per cell.
//! * [`parallel`] — a work-stealing thread pool used by the campaign runner
//!   to sweep workloads and configurations concurrently, with a streaming
//!   variant whose producer can keep feeding the pool while workers run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod event;
pub mod experiment;
pub mod parallel;
pub mod snapshot;
pub mod subsystem;
pub mod system;

pub use energy::energy_overhead_for;
pub use event::{EngineKind, EventEngine, SimulationEngine, TickEngine};
pub use experiment::{
    mitigation_registry, run_workload, run_workload_normalized, workload_traces, ExperimentConfig,
    MitigationDescriptor, MitigationSetup, ResolvedMitigation, PARA_DEFAULT_SEED,
};
pub use parallel::{parallel_map, parallel_map_streaming};
pub use snapshot::{fork_horizon, PausedSimulation, PrefixOutcome};
pub use subsystem::{ChannelStats, MemorySubsystem};
pub use system::{simulations_built, SystemConfig, SystemResult, SystemSimulation};
// The attacker-side registry mirrors `mitigation_registry` and is consumed
// by the same layers (campaigns, CLI, differential tests), so re-export it
// from the simulation facade alongside the defender-side descriptors.
pub use workloads::attack::{attack_registry, AttackDescriptor, AttackKind, AttackPattern};
