//! Mitigation descriptors and workload runners for the performance
//! experiments (Figures 10–14).
//!
//! Every performance figure compares one or more *protected* configurations
//! against the same baseline: a PRAC-enabled DDR5 system with mitigation
//! disabled outright (no Alert Back-Off, no proactive RFMs of any kind).
//! The types here are the descriptor layer of the pluggable mitigation API:
//! a [`MitigationSetup`] is the serialisable description of one
//! configuration, its [`MitigationDescriptor`] carries the stable
//! identifiers and the recipe that resolves it (plus a RowHammer threshold)
//! into a full [`SystemConfig`], and [`mitigation_registry`] enumerates
//! every built-in setup so callers — the campaign registry, the CLI, and the
//! engine-equivalence differential harness — discover new defenses without
//! code changes.

use cpu_sim::config::CpuConfig;
use cpu_sim::trace::{Trace, TraceOp};
use dram_sim::device::DramDeviceConfig;
use dram_sim::profile::DeviceProfile;
use memctrl::controller::ControllerConfig;
use prac_core::config::{MitigationPolicy, PracConfig, PracLevel};
use prac_core::error::{ConfigError, Result};
use prac_core::security::CounterResetPolicy;
use prac_core::timing::DramTimingSummary;
use prac_core::tprac::{TpracConfig, TrefRate};
use serde::{Deserialize, Serialize};
use workloads::attack::AttackKind;
use workloads::generator::SyntheticWorkload;

use crate::event::EngineKind;
use crate::system::{SystemConfig, SystemResult, SystemSimulation};

/// Which mitigation configuration a run uses.
///
/// This is declarative *data* (serialisable, hashable into campaign cache
/// keys); the runtime behaviour lives in the
/// [`prac_core::mitigation::MitigationEngine`] the resolved
/// [`MitigationPolicy`] builds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MitigationSetup {
    /// PRAC-enabled DRAM with mitigation disabled outright: the Alert signal
    /// is never asserted and no RFMs are issued.  This is the normalisation
    /// baseline of every performance figure.
    BaselineNoAbo,
    /// Rely solely on the ABO protocol (insecure against timing channels).
    AboOnly,
    /// ABO plus proactive Activation-Based RFMs (insecure against timing
    /// channels).
    AboPlusAcbRfm,
    /// The TPRAC defense.
    Tprac {
        /// Targeted-Refresh rate used to skip TB-RFMs.
        tref_rate: TrefRate,
        /// Whether per-row counters reset every tREFW.
        counter_reset: bool,
    },
    /// PRFM baseline: one RFM every `every_trefi` tREFI on a fixed,
    /// activity-independent cadence, with no per-row counters.
    Prfm {
        /// RFM period in tREFI intervals (>= 1).
        every_trefi: u32,
    },
    /// PARA-style probabilistic mitigation: each activation triggers an RFM
    /// with probability `1 / one_in`, from a stream seeded with `seed`.
    Para {
        /// Inverse issue probability per activation (>= 1).
        one_in: u32,
        /// Seed of the decision stream (part of the scenario's identity).
        seed: u64,
    },
}

/// A [`MitigationSetup`] resolved against a RowHammer threshold: everything
/// `build_system_config` needs to configure the device and controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedMitigation {
    /// The mitigation policy the controller's engine is built from.
    pub policy: MitigationPolicy,
    /// Whether per-row counters reset every tREFW.
    pub counter_reset: bool,
    /// The Back-Off threshold `NBO` programmed into the device.
    pub back_off_threshold: u32,
    /// Targeted-Refresh cadence for the device (`None` disables TREF).
    pub tref_every_n_refreshes: Option<u32>,
}

impl MitigationSetup {
    /// Label used in reports and plots.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MitigationSetup::BaselineNoAbo => "Baseline (no ABO)".to_string(),
            MitigationSetup::AboOnly => "ABO-Only".to_string(),
            MitigationSetup::AboPlusAcbRfm => "ABO+ACB-RFM".to_string(),
            MitigationSetup::Tprac {
                tref_rate,
                counter_reset,
            } => {
                let reset = if *counter_reset { "" } else { "-NoReset" };
                match tref_rate {
                    TrefRate::None => format!("TPRAC{reset} w/o Targeted"),
                    TrefRate::EveryTrefi(n) => format!("TPRAC{reset} w/ 1 Targeted per {n} tREFI"),
                }
            }
            MitigationSetup::Prfm { every_trefi } => {
                format!("PRFM (1 RFM per {every_trefi} tREFI)")
            }
            MitigationSetup::Para { one_in, .. } => format!("PARA (p = 1/{one_in})"),
        }
    }

    /// Stable kebab-case slug used in scenario names and the CLI.  Must stay
    /// byte-identical for existing setups: the campaign golden snapshot pins
    /// scenario names built from it.
    #[must_use]
    pub fn slug(&self) -> String {
        match self {
            MitigationSetup::BaselineNoAbo => "baseline".into(),
            MitigationSetup::AboOnly => "abo-only".into(),
            MitigationSetup::AboPlusAcbRfm => "abo-acb-rfm".into(),
            MitigationSetup::Tprac {
                tref_rate,
                counter_reset,
            } => {
                let reset = if *counter_reset { "" } else { "-noreset" };
                match tref_rate {
                    TrefRate::None => format!("tprac{reset}"),
                    TrefRate::EveryTrefi(n) => format!("tprac{reset}-tref{n}"),
                }
            }
            MitigationSetup::Prfm { every_trefi } => format!("prfm{every_trefi}"),
            MitigationSetup::Para { one_in, .. } => format!("para{one_in}"),
        }
    }

    /// The descriptor for this setup.
    #[must_use]
    pub fn descriptor(&self) -> MitigationDescriptor {
        MitigationDescriptor::of(self.clone())
    }

    /// Resolves the declarative setup against a RowHammer threshold (`NBO`
    /// is set equal to it).
    ///
    /// # Errors
    ///
    /// Propagates [`prac_core::error::ConfigError::NoSafeWindow`] when the TPRAC security
    /// solver cannot find a TB-Window protecting the threshold.  The failure
    /// is *not* silently papered over with a default window: a scenario that
    /// cannot be configured as specified must fail loudly rather than run a
    /// different configuration.
    pub fn resolve(
        &self,
        rowhammer_threshold: u32,
        timing: &DramTimingSummary,
    ) -> Result<ResolvedMitigation> {
        let resolved = match self {
            MitigationSetup::BaselineNoAbo => ResolvedMitigation {
                policy: MitigationPolicy::Disabled,
                counter_reset: true,
                back_off_threshold: rowhammer_threshold,
                tref_every_n_refreshes: None,
            },
            MitigationSetup::AboOnly => ResolvedMitigation {
                policy: MitigationPolicy::AboOnly,
                counter_reset: true,
                back_off_threshold: rowhammer_threshold,
                tref_every_n_refreshes: None,
            },
            MitigationSetup::AboPlusAcbRfm => ResolvedMitigation {
                policy: MitigationPolicy::AboPlusAcbRfm,
                counter_reset: true,
                back_off_threshold: rowhammer_threshold,
                tref_every_n_refreshes: None,
            },
            MitigationSetup::Tprac {
                tref_rate,
                counter_reset,
            } => {
                let reset_policy = if *counter_reset {
                    CounterResetPolicy::ResetEveryTrefw
                } else {
                    CounterResetPolicy::NoReset
                };
                let tprac =
                    TpracConfig::solve_for_threshold(rowhammer_threshold, timing, reset_policy)?
                        .with_tref_rate(*tref_rate);
                let tref_every_n_refreshes = match tref_rate {
                    TrefRate::None => None,
                    TrefRate::EveryTrefi(n) => Some(*n),
                };
                ResolvedMitigation {
                    policy: MitigationPolicy::Tprac(tprac),
                    counter_reset: *counter_reset,
                    back_off_threshold: rowhammer_threshold,
                    tref_every_n_refreshes,
                }
            }
            MitigationSetup::Prfm { every_trefi } => ResolvedMitigation {
                policy: MitigationPolicy::PeriodicRfm {
                    every_trefi: *every_trefi,
                },
                counter_reset: true,
                back_off_threshold: rowhammer_threshold,
                tref_every_n_refreshes: None,
            },
            MitigationSetup::Para { one_in, seed } => ResolvedMitigation {
                policy: MitigationPolicy::Para {
                    one_in: *one_in,
                    seed: *seed,
                },
                counter_reset: true,
                back_off_threshold: rowhammer_threshold,
                tref_every_n_refreshes: None,
            },
        };
        Ok(resolved)
    }

    /// The four-way comparison used by Figure 10 and Figure 11.
    #[must_use]
    pub fn figure10_set() -> Vec<MitigationSetup> {
        vec![
            MitigationSetup::AboOnly,
            MitigationSetup::AboPlusAcbRfm,
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
        ]
    }
}

/// A registered mitigation configuration: the declarative
/// [`MitigationSetup`] plus its stable identifiers and a one-line summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationDescriptor {
    /// The declarative setup this descriptor describes.
    pub setup: MitigationSetup,
    /// Stable kebab-case slug (scenario names, CLI).
    pub slug: String,
    /// Human-readable label (reports, plots).
    pub label: String,
    /// One-line description for listings.
    pub summary: &'static str,
}

impl MitigationDescriptor {
    /// Builds the descriptor of a setup.
    #[must_use]
    pub fn of(setup: MitigationSetup) -> Self {
        let summary = match &setup {
            MitigationSetup::BaselineNoAbo => {
                "no mitigation at all: the normalisation baseline of every figure"
            }
            MitigationSetup::AboOnly => {
                "reactive Alert Back-Off only; leaks activity through RFM timing"
            }
            MitigationSetup::AboPlusAcbRfm => {
                "ABO plus proactive Bank-Activation RFMs; still activity dependent"
            }
            MitigationSetup::Tprac { .. } => {
                "activity-independent Timing-Based RFMs (the paper's defense)"
            }
            MitigationSetup::Prfm { .. } => {
                "periodic RFM every N tREFI; activity independent, no counters"
            }
            MitigationSetup::Para { .. } => {
                "probabilistic per-activation RFMs; seeded, activity dependent"
            }
        };
        Self {
            slug: setup.slug(),
            label: setup.label(),
            summary,
            setup,
        }
    }

    /// Whether the resolved policy's RFM timing depends on memory activity
    /// (and is therefore exploitable as a timing channel).
    #[must_use]
    pub fn is_activity_dependent(&self) -> bool {
        match &self.setup {
            MitigationSetup::BaselineNoAbo => false,
            MitigationSetup::AboOnly | MitigationSetup::AboPlusAcbRfm => true,
            MitigationSetup::Tprac { .. } | MitigationSetup::Prfm { .. } => false,
            MitigationSetup::Para { .. } => true,
        }
    }
}

/// Seed of the registry's default PARA decision stream.  Fixed so that the
/// registered scenario is deterministic; sweeps that want other streams set
/// the `seed` field of [`MitigationSetup::Para`] explicitly.
pub const PARA_DEFAULT_SEED: u64 = 0x9A4A_5EED;

/// Every built-in mitigation setup, in presentation order: the paper's four
/// configurations (with the TPRAC ablations) followed by the beyond-paper
/// defenses.  The engine-equivalence differential suite iterates this
/// registry, so a setup added here is automatically raced tick-vs-event.
#[must_use]
pub fn mitigation_registry() -> Vec<MitigationDescriptor> {
    [
        MitigationSetup::BaselineNoAbo,
        MitigationSetup::AboOnly,
        MitigationSetup::AboPlusAcbRfm,
        MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: true,
        },
        MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(1),
            counter_reset: true,
        },
        MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: false,
        },
        MitigationSetup::Prfm { every_trefi: 2 },
        MitigationSetup::Para {
            one_in: 128,
            seed: PARA_DEFAULT_SEED,
        },
    ]
    .into_iter()
    .map(MitigationDescriptor::of)
    .collect()
}

/// Full experiment configuration: mitigation setup + sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// RowHammer threshold (`NRH`); `NBO` is set equal to it.
    pub rowhammer_threshold: u32,
    /// PRAC level (RFMs per Alert).
    pub prac_level: PracLevel,
    /// The mitigation configuration under test.
    pub setup: MitigationSetup,
    /// Instructions per core.
    pub instructions_per_core: u64,
    /// Number of cores (homogeneous workload copies).
    pub cores: u32,
    /// Number of memory channels (1 reproduces the paper's Table 3 system).
    pub channels: u32,
    /// Rank-count override for the DRAM organisation.  `0` keeps the
    /// organisation's own rank count (the paper's Table 3 system); any other
    /// value must be a power of two, enforced by
    /// [`ExperimentConfig::build_system_config`].
    pub ranks: u32,
    /// Named device timing profile.  [`DeviceProfile::JedecBaseline`] keeps
    /// the DDR5-8000B timing set bit-identical to the seed; the vendor
    /// profiles swap in their own tRFC/RFM cadence, rank-level knobs and
    /// on-die ECC model.
    pub profile: DeviceProfile,
    /// Optional adversarial co-runner: when set, one extra core runs the
    /// attack pattern's access stream (encoded through the configured
    /// address mapping) alongside the benign workload copies, so the run
    /// measures victim performance *and* security metrics
    /// ([`dram_sim::stats::DramStats::max_row_counter`]) under attack.
    /// `None` reproduces the paper's benign runs exactly.
    pub attack: Option<AttackKind>,
    /// Engine visiting the ticks.  Results are engine-independent (asserted
    /// by the differential suite), so this is an execution knob, not part of
    /// the experiment's identity.
    pub engine: EngineKind,
    /// Worker threads stepping due channels of one event round in parallel
    /// (values ≤ 1 step sequentially).  Results are bit-identical for every
    /// value (asserted by the thread-count race in the differential suite),
    /// so like `engine` this is an execution knob excluded from the
    /// experiment's identity and the campaign cache keys.
    #[serde(default = "default_sim_threads")]
    pub sim_threads: usize,
}

/// Serde default for [`ExperimentConfig::sim_threads`]: sequential stepping.
// Referenced by the `#[serde(default = "...")]` attribute above; the offline
// serde-derive shim does not expand it, so the compiler cannot see the use.
#[allow(dead_code)]
fn default_sim_threads() -> usize {
    1
}

impl ExperimentConfig {
    /// The paper's default operating point (NRH = 1024, PRAC-1, 4 cores,
    /// one channel) with a configurable instruction budget.
    #[must_use]
    pub fn new(setup: MitigationSetup, instructions_per_core: u64) -> Self {
        Self {
            rowhammer_threshold: 1024,
            prac_level: PracLevel::One,
            setup,
            instructions_per_core,
            cores: 4,
            channels: 1,
            ranks: 0,
            profile: DeviceProfile::JedecBaseline,
            attack: None,
            engine: EngineKind::default(),
            sim_threads: 1,
        }
    }

    /// Selects the engine that visits the ticks.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the worker-thread count for parallel channel stepping (values
    /// ≤ 1 step sequentially; results are identical either way).
    #[must_use]
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }

    /// Sets the RowHammer threshold.
    #[must_use]
    pub fn with_rowhammer_threshold(mut self, nrh: u32) -> Self {
        self.rowhammer_threshold = nrh;
        self
    }

    /// Sets the PRAC level.
    #[must_use]
    pub fn with_prac_level(mut self, level: PracLevel) -> Self {
        self.prac_level = level;
        self
    }

    /// Sets the core count.
    #[must_use]
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the memory-channel count.  Must be a power of two;
    /// [`ExperimentConfig::build_system_config`] reports a violation as a
    /// [`ConfigError::InvalidParameter`] rather than panicking deep inside
    /// the address mapping.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Overrides the rank count of the DRAM organisation (`0` keeps the
    /// organisation's default).  Non-zero values must be a power of two;
    /// [`ExperimentConfig::build_system_config`] reports a violation as a
    /// [`ConfigError::InvalidParameter`] with the same wording as the
    /// channel-count check.
    #[must_use]
    pub fn with_ranks(mut self, ranks: u32) -> Self {
        self.ranks = ranks;
        self
    }

    /// Selects the named device timing profile.
    #[must_use]
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Adds (or clears) the adversarial co-runner.
    #[must_use]
    pub fn with_attack(mut self, attack: Option<AttackKind>) -> Self {
        self.attack = attack;
        self
    }

    /// Derives the DRAM-device and controller configurations for this
    /// experiment by resolving the setup's descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`MitigationSetup::resolve`] failures (e.g. no safe
    /// TB-Window for the requested threshold) instead of silently running a
    /// different configuration, rejects channel or rank counts that are zero
    /// or not a power of two (the address mappings require power-of-two
    /// dimensions), and rejects a PRAC level the selected device profile
    /// does not implement.
    pub fn build_system_config(&self) -> Result<SystemConfig> {
        require_power_of_two("channels", self.channels)?;
        if self.ranks != 0 {
            require_power_of_two("ranks", self.ranks)?;
        }
        if !self.profile.supports_prac_level(self.prac_level) {
            return Err(ConfigError::InvalidParameter {
                name: "prac_level",
                reason: format!(
                    "device profile `{}` does not implement PRAC-{}",
                    self.profile.slug(),
                    self.prac_level.rfms_per_alert()
                ),
            });
        }
        // The JEDEC baseline keeps the exact seed summary (its ns constants
        // are authored directly, not derived from ticks), so the default
        // path stays bit-identical; vendor profiles derive theirs from the
        // profile's tick-level timing set.
        let timing = if self.profile == DeviceProfile::JedecBaseline {
            DramTimingSummary::ddr5_8000b()
        } else {
            let organization = DramDeviceConfig::paper_default().organization;
            self.profile.timing().summary(organization.rows_per_bank)
        };
        let resolved = self.setup.resolve(self.rowhammer_threshold, &timing)?;
        let prac = PracConfig::builder()
            .rowhammer_threshold(self.rowhammer_threshold)
            .back_off_threshold(resolved.back_off_threshold)
            .prac_level(self.prac_level)
            .counter_reset_every_trefw(resolved.counter_reset)
            .policy(resolved.policy)
            .try_build()?;
        let mut device = DramDeviceConfig {
            prac,
            tref_every_n_refreshes: resolved.tref_every_n_refreshes,
            ..DramDeviceConfig::paper_default()
        };
        device.timing = self.profile.timing();
        device.organization = device.organization.with_channels(self.channels);
        if self.ranks > 0 {
            device.organization = device.organization.with_ranks(self.ranks);
        }
        let mut cpu = CpuConfig::paper_default();
        // The adversarial co-runner occupies one extra core slot, so the
        // benign workload keeps its configured core count.
        cpu.cores = self.cores + u32::from(self.attack.is_some());
        Ok(SystemConfig {
            cpu,
            device,
            controller: ControllerConfig::default(),
            instructions_per_core: self.instructions_per_core,
            // The livelock cap budgets one channel's bandwidth (the worst
            // case).  Extra channels only retire instructions faster, so the
            // cap is deliberately independent of `self.channels`: scaling it
            // down would truncate legitimate runs that momentarily serialise
            // on one hot channel.
            max_ticks: self
                .instructions_per_core
                .saturating_mul(600)
                .max(20_000_000),
            engine: self.engine,
            sim_threads: self.sim_threads,
        })
    }
}

/// Shared validation for the power-of-two topology dimensions (`channels`,
/// `ranks`): the CLI surfaces this `reason` verbatim, so both knobs reject
/// bad values with identical wording that names the accepted range.
fn require_power_of_two(name: &'static str, value: u32) -> Result<()> {
    if value == 0 || !value.is_power_of_two() {
        return Err(ConfigError::InvalidParameter {
            name,
            reason: format!("must be a power of two (1, 2, 4, ...), got {value}"),
        });
    }
    Ok(())
}

/// Runs `workload` (one copy per core) under the given experiment
/// configuration and returns the raw result.
///
/// # Errors
///
/// Propagates configuration-resolution failures from
/// [`ExperimentConfig::build_system_config`].
pub fn run_workload(
    config: &ExperimentConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> Result<SystemResult> {
    let system_config = config.build_system_config()?;
    let traces = workload_traces(config, &system_config, workload, seed);
    Ok(SystemSimulation::new(system_config, traces).run())
}

/// Builds the per-core traces of a run: one seeded copy of `workload` per
/// core, plus the adversarial co-runner's trace when the attack knob is set.
///
/// The traces depend only on the sweep parameters (cores, instruction
/// budget, channels, attack, seed) — never on the mitigation setup — so the
/// campaign runner generates them once per shared-prefix group and reuses
/// them across every mitigation leg.
#[must_use]
pub fn workload_traces(
    config: &ExperimentConfig,
    system_config: &SystemConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> Vec<Trace> {
    let mut traces: Vec<Trace> = (0..config.cores)
        .map(|core| {
            // Give each core its own slice of the address space so four
            // copies do not trivially share cache lines, mirroring the
            // paper's rate-mode methodology.
            let mut per_core = workload.clone();
            per_core.base_address = workload.base_address + u64::from(core) * (1 << 30);
            per_core.generate(config.instructions_per_core, seed ^ u64::from(core))
        })
        .collect();
    if let Some(attack) = &config.attack {
        traces.push(attacker_trace(attack, system_config, seed));
    }
    traces
}

/// Generates the adversarial co-runner's trace: flush+reload pairs
/// following the attack pattern's address stream, encoded through the
/// system's address mapping.  The flush after every load forces the next
/// access to the same line back to DRAM — the `clflush`-armed attacker of
/// the RowHammer literature — so even single-row patterns hammer through
/// the cache hierarchy they share with the benign cores.
///
/// Trace mode flattens the pattern's burst timing
/// ([`workloads::attack::AttackAccess::not_before`] advances the pattern's
/// internal clock but cannot stall the core model) — the determinism
/// contract guarantees the *addresses* are identical either way.  The
/// cycle-exact burst-honouring attacker model lives in
/// `pracleak::adversary` instead.
fn attacker_trace(attack: &AttackKind, system: &SystemConfig, seed: u64) -> Trace {
    let org = system.device.organization;
    let mapping = system.controller.mapping.instantiate_full(
        org,
        system.controller.channel_interleave,
        system.controller.rank_interleave,
    );
    let mut pattern = attack.build(&org, system.device.timing.t_refi, seed);
    let mut now = 0u64;
    let ops = (0..system.instructions_per_core.div_ceil(2))
        .flat_map(|_| {
            let access = pattern.next_access(now);
            now = now.max(access.not_before) + 1;
            let address = mapping.encode(&access.address);
            [TraceOp::Load(address), TraceOp::Flush(address)]
        })
        .collect();
    Trace::new("attacker", ops)
}

/// Runs `workload` under `setup` and under the no-ABO baseline, returning
/// `(normalised performance, protected result, baseline result)`.
///
/// # Errors
///
/// Propagates configuration-resolution failures from either run.
pub fn run_workload_normalized(
    config: &ExperimentConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> Result<(f64, SystemResult, SystemResult)> {
    let protected = run_workload(config, workload, seed)?;
    let baseline_config = ExperimentConfig {
        setup: MitigationSetup::BaselineNoAbo,
        ..config.clone()
    };
    let baseline = run_workload(&baseline_config, workload, seed)?;
    let normalized = if baseline.total_ipc() > 0.0 {
        protected.total_ipc() / baseline.total_ipc()
    } else {
        0.0
    };
    Ok((normalized, protected, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::error::ConfigError;
    use workloads::generator::AccessPattern;

    const INSTR: u64 = 30_000;

    fn high_intensity_workload() -> SyntheticWorkload {
        SyntheticWorkload::new("h-test", 60, AccessPattern::RandomLarge).with_footprint(64 << 20)
    }

    fn low_intensity_workload() -> SyntheticWorkload {
        SyntheticWorkload::new("l-test", 1, AccessPattern::CacheResident)
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(MitigationSetup::AboOnly.label(), "ABO-Only");
        assert!(MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(2),
            counter_reset: true
        }
        .label()
        .contains("per 2 tREFI"));
        assert!(MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: false
        }
        .label()
        .contains("NoReset"));
        assert!(MitigationSetup::Prfm { every_trefi: 4 }
            .label()
            .contains("per 4 tREFI"));
        assert!(MitigationSetup::Para {
            one_in: 128,
            seed: 0
        }
        .label()
        .contains("1/128"));
    }

    #[test]
    fn registry_slugs_and_labels_are_unique() {
        let registry = mitigation_registry();
        assert!(registry.len() >= 8, "{} registered setups", registry.len());
        let mut slugs = std::collections::HashSet::new();
        for descriptor in &registry {
            assert!(
                slugs.insert(descriptor.slug.clone()),
                "duplicate slug {}",
                descriptor.slug
            );
            assert!(!descriptor.summary.is_empty());
        }
        // The registry starts with the normalisation baseline.
        assert_eq!(registry[0].setup, MitigationSetup::BaselineNoAbo);
    }

    #[test]
    fn registry_setups_all_resolve_at_the_paper_threshold() {
        let timing = DramTimingSummary::ddr5_8000b();
        for descriptor in mitigation_registry() {
            let resolved = descriptor
                .setup
                .resolve(1024, &timing)
                .unwrap_or_else(|e| panic!("{} failed to resolve: {e}", descriptor.slug));
            assert_eq!(resolved.back_off_threshold, 1024);
            assert_eq!(
                resolved.policy.is_activity_dependent(),
                descriptor.is_activity_dependent(),
                "{}: descriptor and policy disagree on activity dependence",
                descriptor.slug
            );
        }
    }

    #[test]
    fn unsolvable_tprac_thresholds_propagate_an_error() {
        // A threshold far below anything a TB-Window can protect must fail
        // loudly instead of silently running a fallback window.
        let config = ExperimentConfig::new(
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            INSTR,
        )
        .with_rowhammer_threshold(1);
        let err = config.build_system_config().unwrap_err();
        assert!(
            matches!(err, ConfigError::NoSafeWindow { .. }),
            "unexpected error {err:?}"
        );
        assert!(run_workload(&config, &low_intensity_workload(), 1).is_err());
    }

    #[test]
    fn invalid_channel_counts_are_rejected_as_config_errors() {
        for channels in [0u32, 3, 6] {
            let config =
                ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_channels(channels);
            let err = config.build_system_config().unwrap_err();
            assert!(
                matches!(
                    err,
                    ConfigError::InvalidParameter {
                        name: "channels",
                        ..
                    }
                ),
                "channels = {channels}: unexpected error {err:?}"
            );
        }
        // Powers of two are accepted.
        for channels in [1u32, 2, 8] {
            let config =
                ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_channels(channels);
            assert_eq!(config.build_system_config().unwrap().channels(), channels);
        }
    }

    #[test]
    fn invalid_rank_counts_are_rejected_with_the_channel_wording() {
        for ranks in [3u32, 6, 12] {
            let config = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_ranks(ranks);
            let err = config.build_system_config().unwrap_err();
            match err {
                ConfigError::InvalidParameter { name, reason } => {
                    assert_eq!(name, "ranks");
                    assert_eq!(
                        reason,
                        format!("must be a power of two (1, 2, 4, ...), got {ranks}")
                    );
                }
                other => panic!("ranks = {ranks}: unexpected error {other:?}"),
            }
        }
        // The channel check uses the identical wording (same helper).
        let err = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
            .with_channels(3)
            .build_system_config()
            .unwrap_err();
        match err {
            ConfigError::InvalidParameter { name, reason } => {
                assert_eq!(name, "channels");
                assert_eq!(reason, "must be a power of two (1, 2, 4, ...), got 3");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // `0` means "no override" and powers of two are applied verbatim.
        let default_org = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
            .build_system_config()
            .unwrap()
            .device
            .organization;
        for ranks in [1u32, 2, 8] {
            let config = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_ranks(ranks);
            let org = config.build_system_config().unwrap().device.organization;
            assert_eq!(org.ranks, ranks);
        }
        assert_eq!(
            ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
                .with_ranks(0)
                .build_system_config()
                .unwrap()
                .device
                .organization,
            default_org
        );
    }

    #[test]
    fn jedec_baseline_profile_is_the_identity() {
        // The default profile must not perturb the system configuration at
        // all: the 1-rank/default path stays bit-identical to the seed.
        let plain = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR);
        let pinned = plain.clone().with_profile(DeviceProfile::JedecBaseline);
        assert_eq!(
            plain.build_system_config().unwrap(),
            pinned.build_system_config().unwrap()
        );
    }

    #[test]
    fn vendor_profiles_change_the_device_timing() {
        for profile in [DeviceProfile::VendorA, DeviceProfile::VendorB] {
            let config =
                ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_profile(profile);
            let system = config.build_system_config().unwrap();
            assert_eq!(system.device.timing, profile.timing());
            assert_ne!(
                system.device.timing,
                dram_sim::timing::DramTimingParams::ddr5_8000b()
            );
        }
    }

    #[test]
    fn unsupported_prac_levels_are_rejected_per_profile() {
        // Vendor A tops out at PRAC-2.
        let config = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
            .with_profile(DeviceProfile::VendorA)
            .with_prac_level(PracLevel::Four);
        let err = config.build_system_config().unwrap_err();
        match err {
            ConfigError::InvalidParameter { name, reason } => {
                assert_eq!(name, "prac_level");
                assert!(reason.contains("vendor-a"), "{reason}");
                assert!(reason.contains("PRAC-4"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Every registered profile accepts the paper's PRAC-1 default.
        for profile in DeviceProfile::registry() {
            let config =
                ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_profile(profile);
            assert!(config.build_system_config().is_ok(), "{}", profile.slug());
        }
    }

    #[test]
    fn two_rank_runs_complete_and_stay_deterministic() {
        let config = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
            .with_cores(2)
            .with_ranks(2);
        let a = run_workload(&config, &high_intensity_workload(), 9).unwrap();
        let b = run_workload(&config, &high_intensity_workload(), 9).unwrap();
        assert!(a.completed);
        assert_eq!(a, b, "2-rank runs must replay bit-for-bit");
    }

    #[test]
    fn baseline_config_never_issues_rfms() {
        let config = ExperimentConfig::new(MitigationSetup::BaselineNoAbo, INSTR).with_cores(2);
        let result = run_workload(&config, &high_intensity_workload(), 1).unwrap();
        assert!(result.completed);
        assert_eq!(result.controller_stats.total_rfms(), 0);
        assert_eq!(result.dram_stats.alerts_asserted, 0);
    }

    #[test]
    fn baseline_uses_the_explicit_disabled_policy() {
        let config = ExperimentConfig::new(MitigationSetup::BaselineNoAbo, INSTR);
        let system = config.build_system_config().unwrap();
        assert_eq!(system.device.prac.policy, MitigationPolicy::Disabled);
        // The Back-Off threshold is the real one — "no mitigation" comes
        // from the policy, not from an unreachable threshold.
        assert_eq!(system.device.prac.back_off_threshold, 1024);
    }

    #[test]
    fn tprac_issues_tb_rfms_and_slows_memory_bound_workloads() {
        let tprac = ExperimentConfig::new(
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            INSTR,
        )
        .with_cores(2);
        let (normalized, protected, baseline) =
            run_workload_normalized(&tprac, &high_intensity_workload(), 2).unwrap();
        assert!(protected.completed && baseline.completed);
        assert!(
            protected.controller_stats.tb_rfms > 0,
            "{:?}",
            protected.controller_stats
        );
        assert_eq!(protected.controller_stats.abo_rfms, 0);
        // The traces are identical in both runs, so TPRAC can only add RFM
        // stalls; at this short budget second-order scheduling effects (an
        // RFM stall realigning accesses into row-buffer hits) still move the
        // ratio by a couple of percent, hence the tolerance above 1.0.
        assert!(
            normalized <= 1.02,
            "TPRAC cannot meaningfully outperform the unprotected baseline: {normalized}"
        );
        assert!(
            normalized > 0.80,
            "TPRAC slowdown should be moderate at NRH=1024: {normalized}"
        );
    }

    #[test]
    fn low_intensity_workloads_are_barely_affected_by_tprac() {
        let tprac = ExperimentConfig::new(
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            INSTR,
        )
        .with_cores(2);
        let (normalized, _, _) =
            run_workload_normalized(&tprac, &low_intensity_workload(), 3).unwrap();
        assert!(
            normalized > 0.97,
            "cache-resident workloads should see <3% slowdown, got {normalized}"
        );
    }

    #[test]
    fn abo_only_has_negligible_overhead_for_benign_workloads() {
        let abo = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_cores(2);
        let (normalized, protected, _) =
            run_workload_normalized(&abo, &high_intensity_workload(), 4).unwrap();
        assert_eq!(
            protected.controller_stats.abo_rfms, 0,
            "benign workloads never hit NBO"
        );
        assert!(
            normalized > 0.98,
            "ABO-Only should be near-baseline: {normalized}"
        );
    }

    #[test]
    fn prfm_issues_periodic_rfms_and_costs_bandwidth() {
        let prfm =
            ExperimentConfig::new(MitigationSetup::Prfm { every_trefi: 1 }, INSTR).with_cores(2);
        let (normalized, protected, _) =
            run_workload_normalized(&prfm, &high_intensity_workload(), 5).unwrap();
        assert!(
            protected.controller_stats.periodic_rfms > 0,
            "{:?}",
            protected.controller_stats
        );
        assert_eq!(protected.controller_stats.abo_rfms, 0);
        assert!(
            normalized < 1.02,
            "an RFM every tREFI cannot be free: {normalized}"
        );
    }

    #[test]
    fn para_runs_are_deterministic_per_seed() {
        let config = |seed| {
            ExperimentConfig::new(MitigationSetup::Para { one_in: 32, seed }, INSTR).with_cores(2)
        };
        let a = run_workload(&config(7), &high_intensity_workload(), 6).unwrap();
        let b = run_workload(&config(7), &high_intensity_workload(), 6).unwrap();
        assert_eq!(a, b, "same PARA seed must replay bit-for-bit");
        assert!(a.controller_stats.para_rfms > 0, "{:?}", a.controller_stats);
        let c = run_workload(&config(8), &high_intensity_workload(), 6).unwrap();
        assert_ne!(
            a.rfm_log, c.rfm_log,
            "different PARA seeds must draw different streams"
        );
    }

    #[test]
    fn figure10_set_contains_three_configurations() {
        assert_eq!(MitigationSetup::figure10_set().len(), 3);
    }

    #[test]
    fn attack_knob_adds_one_attacker_core() {
        use workloads::attack::AttackKind;
        let benign = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_cores(2);
        let attacked = benign.clone().with_attack(Some(AttackKind::SingleSided));
        assert_eq!(benign.build_system_config().unwrap().cpu.cores, 2);
        assert_eq!(attacked.build_system_config().unwrap().cpu.cores, 3);
        let result = run_workload(&attacked, &low_intensity_workload(), 1).unwrap();
        assert!(result.completed, "{result:?}");
        assert_eq!(result.core_stats.len(), 3);
        // The attacker hammers one row stream through the caches; whatever
        // reaches DRAM is tracked by the peak-counter stat.
        assert!(result.dram_stats.activations > 0);
    }

    #[test]
    fn attacked_runs_are_deterministic_and_attack_free_runs_unchanged() {
        use workloads::attack::AttackKind;
        let attacked = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR)
            .with_cores(2)
            .with_attack(Some(AttackKind::ManySided { sides: 4 }));
        let a = run_workload(&attacked, &low_intensity_workload(), 2).unwrap();
        let b = run_workload(&attacked, &low_intensity_workload(), 2).unwrap();
        assert_eq!(a, b, "attacked runs must replay bit-for-bit");
        // Clearing the knob restores the benign configuration entirely.
        let cleared = attacked.with_attack(None);
        let benign = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_cores(2);
        assert_eq!(
            run_workload(&cleared, &low_intensity_workload(), 2).unwrap(),
            run_workload(&benign, &low_intensity_workload(), 2).unwrap()
        );
    }
}
