//! Mitigation-configuration descriptors and workload runners for the
//! performance experiments (Figures 10–14).
//!
//! Every performance figure compares one or more *protected* configurations
//! against the same baseline: a PRAC-enabled DDR5 system **without** the
//! Alert Back-Off protocol (no mitigation RFMs of any kind).  The helpers
//! here build the corresponding [`SystemConfig`]s from a RowHammer threshold
//! and run a workload under them, returning normalised performance.

use cpu_sim::config::CpuConfig;
use cpu_sim::trace::Trace;
use dram_sim::device::DramDeviceConfig;
use memctrl::controller::ControllerConfig;
use prac_core::config::{MitigationPolicy, PracConfig, PracLevel};
use prac_core::security::CounterResetPolicy;
use prac_core::timing::DramTimingSummary;
use prac_core::tprac::{TpracConfig, TrefRate};
use serde::{Deserialize, Serialize};
use workloads::generator::SyntheticWorkload;

use crate::event::EngineKind;
use crate::system::{SystemConfig, SystemResult, SystemSimulation};

/// Which mitigation configuration a run uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MitigationSetup {
    /// PRAC-enabled DRAM without the ABO protocol: no mitigation RFMs at all.
    /// This is the normalisation baseline of every performance figure.
    BaselineNoAbo,
    /// Rely solely on the ABO protocol (insecure against timing channels).
    AboOnly,
    /// ABO plus proactive Activation-Based RFMs (insecure against timing
    /// channels).
    AboPlusAcbRfm,
    /// The TPRAC defense.
    Tprac {
        /// Targeted-Refresh rate used to skip TB-RFMs.
        tref_rate: TrefRate,
        /// Whether per-row counters reset every tREFW.
        counter_reset: bool,
    },
}

impl MitigationSetup {
    /// Label used in reports and plots.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MitigationSetup::BaselineNoAbo => "Baseline (no ABO)".to_string(),
            MitigationSetup::AboOnly => "ABO-Only".to_string(),
            MitigationSetup::AboPlusAcbRfm => "ABO+ACB-RFM".to_string(),
            MitigationSetup::Tprac {
                tref_rate,
                counter_reset,
            } => {
                let reset = if *counter_reset { "" } else { "-NoReset" };
                match tref_rate {
                    TrefRate::None => format!("TPRAC{reset} w/o Targeted"),
                    TrefRate::EveryTrefi(n) => format!("TPRAC{reset} w/ 1 Targeted per {n} tREFI"),
                }
            }
        }
    }

    /// The four-way comparison used by Figure 10 and Figure 11.
    #[must_use]
    pub fn figure10_set() -> Vec<MitigationSetup> {
        vec![
            MitigationSetup::AboOnly,
            MitigationSetup::AboPlusAcbRfm,
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
        ]
    }
}

/// Full experiment configuration: mitigation setup + sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// RowHammer threshold (`NRH`); `NBO` is set equal to it.
    pub rowhammer_threshold: u32,
    /// PRAC level (RFMs per Alert).
    pub prac_level: PracLevel,
    /// The mitigation configuration under test.
    pub setup: MitigationSetup,
    /// Instructions per core.
    pub instructions_per_core: u64,
    /// Number of cores (homogeneous workload copies).
    pub cores: u32,
    /// Engine visiting the ticks.  Results are engine-independent (asserted
    /// by the differential suite), so this is an execution knob, not part of
    /// the experiment's identity.
    pub engine: EngineKind,
}

impl ExperimentConfig {
    /// The paper's default operating point (NRH = 1024, PRAC-1, 4 cores) with
    /// a configurable instruction budget.
    #[must_use]
    pub fn new(setup: MitigationSetup, instructions_per_core: u64) -> Self {
        Self {
            rowhammer_threshold: 1024,
            prac_level: PracLevel::One,
            setup,
            instructions_per_core,
            cores: 4,
            engine: EngineKind::default(),
        }
    }

    /// Selects the engine that visits the ticks.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the RowHammer threshold.
    #[must_use]
    pub fn with_rowhammer_threshold(mut self, nrh: u32) -> Self {
        self.rowhammer_threshold = nrh;
        self
    }

    /// Sets the PRAC level.
    #[must_use]
    pub fn with_prac_level(mut self, level: PracLevel) -> Self {
        self.prac_level = level;
        self
    }

    /// Sets the core count.
    #[must_use]
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Derives the DRAM-device and controller configurations for this
    /// experiment.
    #[must_use]
    pub fn build_system_config(&self) -> SystemConfig {
        let timing = DramTimingSummary::ddr5_8000b();
        let (policy, counter_reset, nbo, tref_refreshes) = match &self.setup {
            MitigationSetup::BaselineNoAbo => {
                // A Back-Off threshold nothing benign (or even adversarial,
                // within the run length) can reach: ABO never fires and no
                // RFMs are issued.
                (MitigationPolicy::AboOnly, true, 1 << 30, None)
            }
            MitigationSetup::AboOnly => (
                MitigationPolicy::AboOnly,
                true,
                self.rowhammer_threshold,
                None,
            ),
            MitigationSetup::AboPlusAcbRfm => (
                MitigationPolicy::AboPlusAcbRfm,
                true,
                self.rowhammer_threshold,
                None,
            ),
            MitigationSetup::Tprac {
                tref_rate,
                counter_reset,
            } => {
                let reset_policy = if *counter_reset {
                    CounterResetPolicy::ResetEveryTrefw
                } else {
                    CounterResetPolicy::NoReset
                };
                let tprac = TpracConfig::solve_for_threshold(
                    self.rowhammer_threshold,
                    &timing,
                    reset_policy,
                )
                .unwrap_or_else(|_| TpracConfig::with_window_trefi(0.1, &timing))
                .with_tref_rate(*tref_rate);
                let tref_refreshes = match tref_rate {
                    TrefRate::None => None,
                    TrefRate::EveryTrefi(n) => Some(*n),
                };
                (
                    MitigationPolicy::Tprac(tprac),
                    *counter_reset,
                    self.rowhammer_threshold,
                    tref_refreshes,
                )
            }
        };
        let nrh_for_config = nbo.max(self.rowhammer_threshold);
        let prac = PracConfig::builder()
            .rowhammer_threshold(nrh_for_config)
            .back_off_threshold(nbo)
            .prac_level(self.prac_level)
            .counter_reset_every_trefw(counter_reset)
            .policy(policy)
            .build();
        let device = DramDeviceConfig {
            prac,
            tref_every_n_refreshes: tref_refreshes,
            ..DramDeviceConfig::paper_default()
        };
        let mut cpu = CpuConfig::paper_default();
        cpu.cores = self.cores;
        SystemConfig {
            cpu,
            device,
            controller: ControllerConfig::default(),
            instructions_per_core: self.instructions_per_core,
            max_ticks: self
                .instructions_per_core
                .saturating_mul(600)
                .max(20_000_000),
            engine: self.engine,
        }
    }
}

/// Runs `workload` (one copy per core) under the given experiment
/// configuration and returns the raw result.
#[must_use]
pub fn run_workload(
    config: &ExperimentConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> SystemResult {
    let system_config = config.build_system_config();
    let traces: Vec<Trace> = (0..config.cores)
        .map(|core| {
            // Give each core its own slice of the address space so four
            // copies do not trivially share cache lines, mirroring the
            // paper's rate-mode methodology.
            let mut per_core = workload.clone();
            per_core.base_address = workload.base_address + u64::from(core) * (1 << 30);
            per_core.generate(config.instructions_per_core, seed ^ u64::from(core))
        })
        .collect();
    SystemSimulation::new(system_config, traces).run()
}

/// Runs `workload` under `setup` and under the no-ABO baseline, returning
/// `(normalised performance, protected result, baseline result)`.
#[must_use]
pub fn run_workload_normalized(
    config: &ExperimentConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> (f64, SystemResult, SystemResult) {
    let protected = run_workload(config, workload, seed);
    let baseline_config = ExperimentConfig {
        setup: MitigationSetup::BaselineNoAbo,
        ..config.clone()
    };
    let baseline = run_workload(&baseline_config, workload, seed);
    let normalized = if baseline.total_ipc() > 0.0 {
        protected.total_ipc() / baseline.total_ipc()
    } else {
        0.0
    };
    (normalized, protected, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::generator::AccessPattern;

    const INSTR: u64 = 30_000;

    fn high_intensity_workload() -> SyntheticWorkload {
        SyntheticWorkload::new("h-test", 60, AccessPattern::RandomLarge).with_footprint(64 << 20)
    }

    fn low_intensity_workload() -> SyntheticWorkload {
        SyntheticWorkload::new("l-test", 1, AccessPattern::CacheResident)
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(MitigationSetup::AboOnly.label(), "ABO-Only");
        assert!(MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(2),
            counter_reset: true
        }
        .label()
        .contains("per 2 tREFI"));
        assert!(MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: false
        }
        .label()
        .contains("NoReset"));
    }

    #[test]
    fn baseline_config_never_issues_rfms() {
        let config = ExperimentConfig::new(MitigationSetup::BaselineNoAbo, INSTR).with_cores(2);
        let result = run_workload(&config, &high_intensity_workload(), 1);
        assert!(result.completed);
        assert_eq!(result.controller_stats.total_rfms(), 0);
    }

    #[test]
    fn tprac_issues_tb_rfms_and_slows_memory_bound_workloads() {
        let tprac = ExperimentConfig::new(
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            INSTR,
        )
        .with_cores(2);
        let (normalized, protected, baseline) =
            run_workload_normalized(&tprac, &high_intensity_workload(), 2);
        assert!(protected.completed && baseline.completed);
        assert!(
            protected.controller_stats.tb_rfms > 0,
            "{:?}",
            protected.controller_stats
        );
        assert_eq!(protected.controller_stats.abo_rfms, 0);
        // The traces are identical in both runs, so TPRAC can only add RFM
        // stalls; at this short budget second-order scheduling effects (an
        // RFM stall realigning accesses into row-buffer hits) still move the
        // ratio by a couple of percent, hence the tolerance above 1.0.
        assert!(
            normalized <= 1.02,
            "TPRAC cannot meaningfully outperform the unprotected baseline: {normalized}"
        );
        assert!(
            normalized > 0.80,
            "TPRAC slowdown should be moderate at NRH=1024: {normalized}"
        );
    }

    #[test]
    fn low_intensity_workloads_are_barely_affected_by_tprac() {
        let tprac = ExperimentConfig::new(
            MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            INSTR,
        )
        .with_cores(2);
        let (normalized, _, _) = run_workload_normalized(&tprac, &low_intensity_workload(), 3);
        assert!(
            normalized > 0.97,
            "cache-resident workloads should see <3% slowdown, got {normalized}"
        );
    }

    #[test]
    fn abo_only_has_negligible_overhead_for_benign_workloads() {
        let abo = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_cores(2);
        let (normalized, protected, _) =
            run_workload_normalized(&abo, &high_intensity_workload(), 4);
        assert_eq!(
            protected.controller_stats.abo_rfms, 0,
            "benign workloads never hit NBO"
        );
        assert!(
            normalized > 0.98,
            "ABO-Only should be near-baseline: {normalized}"
        );
    }

    #[test]
    fn figure10_set_contains_three_configurations() {
        assert_eq!(MitigationSetup::figure10_set().len(), 3);
    }
}
