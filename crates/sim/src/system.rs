//! The full-system simulation: CPU cluster ⇄ memory subsystem ⇄ PRAC DRAM.
//!
//! [`SystemSimulation`] owns the wiring and the per-tick step; *how* the
//! ticks are visited is delegated to a [`SimulationEngine`] — the legacy
//! [`crate::event::TickEngine`] that walks every DRAM clock, or the
//! event-driven [`crate::event::EventEngine`] that jumps between component
//! wake-ups.  Both produce bit-identical [`SystemResult`]s.
//!
//! The memory side is a [`MemorySubsystem`]: one controller (and device, and
//! mitigation engine) per channel of the configured
//! [`dram_sim::org::DramOrganization`].  CPU requests fan out to channels by
//! their decoded channel bits and completions merge back into the shared
//! in-flight map; with one channel the wiring is bit-identical to the
//! original single-controller system.

use cpu_sim::cluster::CpuCluster;
use cpu_sim::config::CpuConfig;
use cpu_sim::core_model::CoreMemoryRequest;
use cpu_sim::stats::CoreStats;
use cpu_sim::trace::Trace;
use dram_sim::device::DramDeviceConfig;
use dram_sim::stats::DramStats;
use memctrl::controller::ControllerConfig;
use memctrl::request::{CompletedRequest, MemoryRequest, RequestKind};
use memctrl::rfm::RfmKind;
use memctrl::stats::ControllerStats;
use serde::{Deserialize, Serialize};

use crate::event::{EngineKind, EventWheel, SimulationEngine};
use crate::snapshot::{PausedSimulation, PrefixOutcome};
use crate::subsystem::{ChannelStats, MemorySubsystem};

/// Wheel slot for the CPU cluster's next wake-up.
const SLOT_CLUSTER: usize = 0;
/// Wheel slot for pending backlog forwarding (always `now + 1` when armed).
const SLOT_FORWARDING: usize = 1;
/// First per-channel wheel slot; channel `ch` lives at `CHANNEL_SLOT_BASE + ch`.
const CHANNEL_SLOT_BASE: usize = 2;

/// Configuration of one full-system run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU and cache-hierarchy configuration.
    pub cpu: CpuConfig,
    /// DRAM device configuration (organisation, timing, PRAC).
    pub device: DramDeviceConfig,
    /// Memory-controller configuration.
    pub controller: ControllerConfig,
    /// Instructions each core must retire before the run ends.
    pub instructions_per_core: u64,
    /// Hard cap on simulated ticks (safety net against livelock).
    pub max_ticks: u64,
    /// Which engine visits the ticks (results are engine-independent).
    pub engine: EngineKind,
    /// Worker threads for stepping independent channels of one event round
    /// concurrently (values ≤ 1 step sequentially).  Results are
    /// bit-identical for every value — like `engine`, this is an execution
    /// knob, not part of what is simulated, and is excluded from campaign
    /// cache keys.
    pub sim_threads: usize,
}

impl SystemConfig {
    /// Paper-like defaults with a reduced instruction budget suitable for
    /// laptop-scale runs (the paper simulates 200 M instructions per core on
    /// a cluster; relative results stabilise far earlier for synthetic
    /// workloads).
    #[must_use]
    pub fn paper_default(instructions_per_core: u64) -> Self {
        Self::paper_default_with_channels(instructions_per_core, 1)
    }

    /// [`SystemConfig::paper_default`] with an explicit channel count.
    ///
    /// The `max_ticks` livelock cap budgets **one** channel's bandwidth as
    /// the worst case: extra channels only add bandwidth, so a multi-channel
    /// run can legitimately retire instructions *faster* and never needs a
    /// larger cap — and the cap deliberately does **not** scale down with
    /// the channel count either (a run that momentarily serialises on one
    /// hot channel must not be truncated early just because other channels
    /// are idle).
    #[must_use]
    pub fn paper_default_with_channels(instructions_per_core: u64, channels: u32) -> Self {
        let mut device = DramDeviceConfig::paper_default();
        device.organization = device.organization.with_channels(channels);
        Self {
            cpu: CpuConfig::paper_default(),
            device,
            controller: ControllerConfig::default(),
            instructions_per_core,
            max_ticks: instructions_per_core.saturating_mul(400).max(10_000_000),
            engine: EngineKind::default(),
            sim_threads: 1,
        }
    }

    /// The configured channel count.
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.device.organization.channels.max(1)
    }
}

/// Result of one full-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemResult {
    /// Per-core statistics (IPC, misses, …).
    pub core_stats: Vec<CoreStats>,
    /// Memory-controller statistics summed across every channel (equal to
    /// the single controller's statistics in one-channel systems).
    pub controller_stats: ControllerStats,
    /// DRAM device statistics summed across every channel.
    pub dram_stats: DramStats,
    /// Per-channel statistics blocks, in channel order (one entry for
    /// single-channel systems).
    pub channel_stats: Vec<ChannelStats>,
    /// Chronological `(tick, kind)` log of the RFMs the controllers issued,
    /// merged across channels (ties break by channel index; recording stops
    /// after the first ~1 M per channel, later RFMs are only counted).
    /// Lets the differential test harness assert that the two engines issue
    /// every ABO/ACB/TB RFM at the exact same cycle, and attack analyses
    /// inspect RFM timing.
    pub rfm_log: Vec<(u64, RfmKind)>,
    /// Number of ticks the run took (time for the slowest core to finish).
    pub elapsed_ticks: u64,
    /// Whether every core finished within the tick budget.
    pub completed: bool,
}

impl SystemResult {
    /// Sum of per-core IPCs — for homogeneous workload mixes this ratio
    /// between two configurations equals the weighted-speedup ratio.
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.core_stats.iter().map(CoreStats::ipc).sum()
    }

    /// Execution time in nanoseconds.
    #[must_use]
    pub fn execution_time_ns(&self) -> f64 {
        self.elapsed_ticks as f64 * 0.25
    }

    /// Average misses-per-kilo-instruction across cores.
    #[must_use]
    pub fn average_mpki(&self) -> f64 {
        if self.core_stats.is_empty() {
            return 0.0;
        }
        self.core_stats
            .iter()
            .map(CoreStats::misses_per_kilo_instruction)
            .sum::<f64>()
            / self.core_stats.len() as f64
    }
}

/// A backlog entry: a core's request waiting for queue space on its channel
/// (decoded once, on arrival).
#[derive(Debug, Clone)]
pub(crate) struct BacklogEntry {
    core: u32,
    request: CoreMemoryRequest,
    channel: u32,
}

/// Process-wide count of [`SystemSimulation`] instances ever constructed.
static SIMULATIONS_BUILT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many [`SystemSimulation`] instances this process has constructed so
/// far.  A cache/store *hit* path must answer without simulating, which
/// tests assert by sampling this counter around the lookup: if it moved, a
/// simulation was built.
#[must_use]
pub fn simulations_built() -> u64 {
    SIMULATIONS_BUILT.load(std::sync::atomic::Ordering::Relaxed)
}

/// A full-system simulation instance.
///
/// Cloning deep-copies the complete system state (cores, caches,
/// controllers, devices, mitigation engines) — this is the fork primitive
/// of the checkpoint/fork subsystem ([`crate::snapshot`]).  A clone does
/// **not** count as a newly *built* simulation for
/// [`simulations_built`]: that counter exists to prove cache hits avoid
/// simulating, and forks are exactly the mechanism that avoids re-running
/// prefixes.
#[derive(Debug, Clone)]
pub struct SystemSimulation {
    cluster: CpuCluster,
    memory: MemorySubsystem,
    instructions_per_core: u64,
    max_ticks: u64,
    engine: EngineKind,
    /// Maps an in-flight controller request id to (core, core-local id).
    /// Controller ids are globally unique, so a flat Vec-backed map keyed by
    /// id modulo capacity would risk collisions; a HashMap stays simple and
    /// is far from the critical path.
    inflight: std::collections::HashMap<u64, (u32, u64)>,
    next_controller_id: u64,
    sim_threads: usize,
}

impl SystemSimulation {
    /// Builds a simulation running one trace per core.
    ///
    /// # Panics
    ///
    /// Panics when the number of traces does not match the configured core
    /// count (propagated from [`CpuCluster::new`]).
    #[must_use]
    pub fn new(config: SystemConfig, traces: Vec<Trace>) -> Self {
        SIMULATIONS_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let cluster = CpuCluster::new(config.cpu.clone(), traces, config.instructions_per_core);
        let memory = MemorySubsystem::new(config.device.clone(), config.controller.clone());
        Self {
            cluster,
            memory,
            instructions_per_core: config.instructions_per_core,
            max_ticks: config.max_ticks,
            engine: config.engine,
            inflight: std::collections::HashMap::new(),
            next_controller_id: 0,
            sim_threads: config.sim_threads.max(1),
        }
    }

    /// The instruction budget per core.
    #[must_use]
    pub fn instructions_per_core(&self) -> u64 {
        self.instructions_per_core
    }

    /// The memory subsystem (read-only).
    #[must_use]
    pub fn memory(&self) -> &MemorySubsystem {
        &self.memory
    }

    /// The memory subsystem (mutable) — only the checkpoint/fork layer
    /// needs this, to refit the mitigation configuration at a fork point.
    pub(crate) fn memory_mut(&mut self) -> &mut MemorySubsystem {
        &mut self.memory
    }

    /// The engine the configuration selected.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Runs the simulation to completion (or the tick cap) with the engine
    /// selected in the configuration and returns the collected statistics.
    pub fn run(self) -> SystemResult {
        self.engine.instance().run(self)
    }

    /// Runs the simulation under an explicit engine (used by the
    /// differential test harness to race the two engines head-to-head).
    pub fn run_with(self, engine: &dyn SimulationEngine) -> SystemResult {
        engine.run(self)
    }

    /// Settles one tick: CPU cluster first, then request fan-out to the
    /// per-channel controllers, then the memory subsystem with completion
    /// routing.  Both engines drive this exact function — the tick engine
    /// for every tick, the event engine only for ticks in which something
    /// can happen.
    ///
    /// `due` selects which channels are polled this tick.  Polling a
    /// channel ahead of its wake-up is a pure no-op (the engine purity
    /// contract), so the tick engine passes an all-true mask while the
    /// event engine narrows it to the channels whose wheel slot fired —
    /// the results are bit-identical either way.  Fanning a request out to
    /// a channel marks it due: the enqueue mutates that controller, so its
    /// previously armed wake-up no longer covers it.  `completions` is
    /// caller-owned scratch, drained before the function returns.
    fn step(
        &mut self,
        now: u64,
        backlog: &mut Vec<BacklogEntry>,
        due: &mut [bool],
        completions: &mut Vec<CompletedRequest>,
    ) {
        // 1. CPU side: collect new DRAM-bound requests, routing each to its
        //    channel once on arrival.
        let output = self.cluster.tick(now);
        backlog.extend(output.requests.into_iter().map(|(core, request)| {
            let channel = self.memory.route(request.address);
            BacklogEntry {
                core,
                request,
                channel,
            }
        }));

        // 2. Fan out as many backlog requests as their channels accept.  A
        //    full channel never blocks requests bound for other channels.
        //    The scan order (front to back, with `swap_remove` compaction)
        //    reproduces the single-controller forwarding order exactly when
        //    there is one channel, which keeps request ids — and therefore
        //    whole runs — bit-identical to the pre-subsystem wiring.
        let mut index = 0;
        while index < backlog.len() {
            if !self.memory.can_accept(backlog[index].channel) {
                index += 1;
                continue;
            }
            let entry = backlog.swap_remove(index);
            let id = self.next_controller_id;
            self.next_controller_id += 1;
            let request = if entry.request.is_write {
                MemoryRequest::write(id, entry.request.address, entry.core, now)
            } else {
                MemoryRequest::read(id, entry.request.address, entry.core, now)
            };
            let accepted = self.memory.enqueue(entry.channel, request);
            debug_assert!(accepted);
            due[entry.channel as usize] = true;
            if !entry.request.is_write && entry.core != u32::MAX {
                self.inflight.insert(id, (entry.core, entry.request.id));
            }
        }

        // 3. Memory side: advance the due channels one tick and merge the
        //    per-channel completions back into the in-flight map.
        self.memory
            .tick_due(now, due, self.sim_threads, completions);
        for completion in completions.drain(..) {
            if completion.kind == RequestKind::Read {
                if let Some((core, core_req_id)) = self.inflight.remove(&completion.id) {
                    self.cluster.on_memory_completion(core, core_req_id);
                }
            }
        }
    }

    /// Collects the final statistics after the last settled tick.
    fn finish(self, elapsed_ticks: u64) -> SystemResult {
        SystemResult {
            core_stats: self.cluster.core_stats(),
            controller_stats: self.memory.aggregated_controller_stats(),
            dram_stats: self.memory.aggregated_dram_stats(),
            channel_stats: self.memory.channel_stats(),
            rfm_log: self.memory.merged_rfm_log(),
            elapsed_ticks,
            completed: self.cluster.all_finished(),
        }
    }

    /// The legacy main loop: one tick per iteration.
    pub(crate) fn run_ticked(self) -> SystemResult {
        self.run_ticked_from(0, Vec::new(), None)
            .expect_finished("tick run without a pause bound")
    }

    /// The tick-engine main loop, generalised over a resume point and an
    /// optional pause bound (the checkpoint/fork entry point).
    ///
    /// Processes ticks `[now, min(pause_at, max_ticks))` — pausing at `P`
    /// leaves the system in exactly the state an uninterrupted run has
    /// after settling ticks `[0, P)`, so resuming from the returned
    /// [`PausedSimulation`] replays the cold run bit for bit.
    pub(crate) fn run_ticked_from(
        mut self,
        mut now: u64,
        mut backlog: Vec<BacklogEntry>,
        pause_at: Option<u64>,
    ) -> PrefixOutcome {
        let bound = pause_at.unwrap_or(self.max_ticks).min(self.max_ticks);
        // The tick engine visits every tick, so every channel is due every
        // tick (`step` only ever sets flags, never clears them).
        let mut due = vec![true; self.memory.channels() as usize];
        let mut completions = Vec::new();
        while now < bound && !self.cluster.all_finished() {
            self.step(now, &mut backlog, &mut due, &mut completions);
            now += 1;
        }
        if now < self.max_ticks && !self.cluster.all_finished() {
            // Only the pause bound stopped the loop.
            return PrefixOutcome::Paused(PausedSimulation::new(self, now, backlog));
        }
        PrefixOutcome::Finished(self.finish(now))
    }

    /// The event-driven main loop: settle a tick, ask every component for
    /// its next wake-up, jump to the earliest one.
    ///
    /// Skipped ticks are exactly the ticks the tick engine would process as
    /// no-ops, except that each of them would have aged every unfinished
    /// core by one cycle — which [`CpuCluster::credit_stalled_cycles`]
    /// accounts for in bulk, keeping the per-core cycle counts (and thus
    /// IPC, slowdown and energy inputs) bit-identical.
    pub(crate) fn run_event_driven(self) -> SystemResult {
        self.run_event_from(0, Vec::new(), None)
            .expect_finished("event run without a pause bound")
    }

    /// The event-engine main loop, generalised over a resume point and an
    /// optional pause bound (the checkpoint/fork entry point).
    ///
    /// Pausing at `P` stops *before* settling tick `P`, crediting only the
    /// skipped ticks strictly below it; the resumed run then visits `P`
    /// itself.  When the cold run would have skipped `P` as a no-op, the
    /// resumed visit is a pure no-op too (the engine purity contract) and
    /// ages each unfinished core by the same one cycle the cold run
    /// credited in bulk — so cycle counts stay bit-identical either way.
    ///
    /// The event wheel is always rebuilt from component wake-ups on the
    /// first iteration, so a resumed run starts with a fresh wheel rather
    /// than a captured one (the wheel is derived state).  The same holds
    /// for the per-channel due mask: it starts all-true, which over-polls
    /// harmlessly (polling ahead of a wake-up is a no-op) and converges to
    /// the exact fired set after one jump.
    pub(crate) fn run_event_from(
        mut self,
        mut now: u64,
        mut backlog: Vec<BacklogEntry>,
        pause_at: Option<u64>,
    ) -> PrefixOutcome {
        let channels = self.memory.channels() as usize;
        let mut wheel = EventWheel::with_slots(CHANNEL_SLOT_BASE + channels);
        // All channels due on the first iteration: cold starts and resumed
        // forks alike begin with one full poll, then narrow to the channels
        // whose slot actually fired.
        let mut due = vec![true; channels];
        let mut completions = Vec::new();
        if now >= self.max_ticks || self.cluster.all_finished() {
            return PrefixOutcome::Finished(self.finish(now));
        }
        if let Some(pause) = pause_at {
            if now >= pause.min(self.max_ticks) {
                return PrefixOutcome::Paused(PausedSimulation::new(self, now, backlog));
            }
        }
        loop {
            // Invariant: now < max_ticks and at least one core is unfinished,
            // mirroring the tick engine's loop condition.
            self.step(now, &mut backlog, &mut due, &mut completions);
            if self.cluster.all_finished() {
                now += 1;
                break;
            }
            wheel.reregister_slot(SLOT_CLUSTER, self.cluster.next_event_at(now));
            // Each channel keeps its own wheel slot.  A channel that was
            // not polled this tick did not change state, so its armed
            // wake-up is still exact — only due channels need re-arming.
            for (channel, is_due) in due.iter().enumerate() {
                if *is_due {
                    let wake = self.memory.next_event_at_channel(channel as u32, now);
                    wheel.reregister_slot(CHANNEL_SLOT_BASE + channel, wake);
                }
            }
            // Forwarding is pending when any backlog entry's own channel has
            // queue space (a full channel must not mask another channel's
            // waiting request).
            let forwarding = backlog
                .iter()
                .any(|entry| self.memory.can_accept(entry.channel))
                .then_some(now + 1);
            wheel.reregister_slot(SLOT_FORWARDING, forwarding);
            // No wake-up means the system is dead in the water (e.g. every
            // core waits on a completion that can never come); the tick
            // engine would spin to the cap, so jump there directly.
            let next = wheel
                .next_after(now)
                .unwrap_or(self.max_ticks)
                .min(self.max_ticks);
            // Clamp the jump to the pause bound: skipped ticks up to the
            // bound are credited exactly as the cold run credits them, and
            // the bound tick itself is left for the resumed run to settle.
            let next = match pause_at {
                Some(pause) if pause < self.max_ticks => next.min(pause),
                _ => next,
            };
            self.cluster.credit_stalled_cycles(next - now - 1);
            if pause_at == Some(next) && next < self.max_ticks {
                return PrefixOutcome::Paused(PausedSimulation::new(self, next, backlog));
            }
            if next >= self.max_ticks {
                now = self.max_ticks;
                break;
            }
            // The jump lands on `next`: poll exactly the channels whose
            // slot is armed there.  (Cluster and forwarding wake-ups do not
            // by themselves make a channel due — fan-out marks the target
            // channel due inside `step` when a request actually lands.)
            for (channel, is_due) in due.iter_mut().enumerate() {
                *is_due = wheel.armed_at(CHANNEL_SLOT_BASE + channel) == Some(next);
            }
            now = next;
        }
        PrefixOutcome::Finished(self.finish(now))
    }

    /// Runs the simulation with its configured engine until it either
    /// completes or reaches `pause_at`, whichever comes first.
    ///
    /// A paused simulation has settled exactly the ticks `[0, pause_at)`;
    /// [`PausedSimulation::resume`] continues from there and produces a
    /// result bit-identical to an uninterrupted [`SystemSimulation::run`].
    pub fn run_until(self, pause_at: u64) -> PrefixOutcome {
        match self.engine {
            EngineKind::Tick => self.run_ticked_from(0, Vec::new(), Some(pause_at)),
            EngineKind::Event => self.run_event_from(0, Vec::new(), Some(pause_at)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::trace::TraceOp;
    use prac_core::config::PracConfig;

    fn tiny_system(instr: u64, traces: Vec<Trace>) -> SystemSimulation {
        let cores = traces.len() as u32;
        let mut cpu = CpuConfig::tiny_for_tests();
        cpu.cores = cores;
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device = DramDeviceConfig {
            organization: dram_sim::org::DramOrganization::ddr5_32gb_quad_rank(),
            timing: dram_sim::timing::DramTimingParams::ddr5_8000b(),
            prac,
            queue_kind: prac_core::queue::QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        };
        let config = SystemConfig {
            cpu,
            device,
            controller: ControllerConfig::default(),
            instructions_per_core: instr,
            max_ticks: 50_000_000,
            engine: EngineKind::default(),
            sim_threads: 1,
        };
        SystemSimulation::new(config, traces)
    }

    fn memory_trace(base: u64, lines: u64) -> Trace {
        let ops = (0..lines)
            .flat_map(|i| [TraceOp::Load(base + i * 64), TraceOp::Compute(9)])
            .collect();
        Trace::new("mem", ops)
    }

    #[test]
    fn compute_only_system_finishes_quickly() {
        let traces = vec![
            Trace::new("c0", vec![TraceOp::Compute(16)]),
            Trace::new("c1", vec![TraceOp::Compute(16)]),
        ];
        let result = tiny_system(2_000, traces).run();
        assert!(result.completed);
        assert!(result.total_ipc() > 2.0);
        assert_eq!(result.controller_stats.reads_completed, 0);
    }

    #[test]
    fn memory_bound_system_reaches_dram_and_finishes() {
        let traces = vec![
            memory_trace(0x1_0000_0000, 4096),
            memory_trace(0x2_0000_0000, 4096),
        ];
        let result = tiny_system(5_000, traces).run();
        assert!(result.completed, "run hit the tick cap: {result:?}");
        assert!(result.controller_stats.reads_completed > 100);
        assert!(result.dram_stats.activations > 50);
        assert!(result.average_mpki() > 1.0);
        assert!(result.execution_time_ns() > 0.0);
    }

    #[test]
    fn refreshes_are_issued_during_long_runs() {
        let traces = vec![
            memory_trace(0x1_0000_0000, 8192),
            memory_trace(0x2_0000_0000, 8192),
        ];
        let result = tiny_system(20_000, traces).run();
        assert!(result.completed);
        // Runs longer than tREFI (15.6 K ticks) must contain refreshes.
        if result.elapsed_ticks > 20_000 {
            assert!(result.controller_stats.refreshes_issued > 0);
        }
    }

    #[test]
    fn engines_agree_on_a_memory_bound_system() {
        use crate::event::{EventEngine, TickEngine};
        let traces = || {
            vec![
                memory_trace(0x1_0000_0000, 2048),
                memory_trace(0x2_0000_0000, 2048),
            ]
        };
        let ticked = tiny_system(3_000, traces()).run_with(&TickEngine);
        let evented = tiny_system(3_000, traces()).run_with(&EventEngine);
        assert_eq!(ticked, evented, "engines must be cycle-exact");
        assert!(ticked.completed);
        assert!(!ticked.rfm_log.is_empty() || ticked.controller_stats.total_rfms() == 0);
    }

    #[test]
    fn max_ticks_cap_does_not_scale_down_with_channels() {
        // The livelock cap budgets one channel's bandwidth; a 4-channel
        // system retires instructions at least as fast, so the cap must be
        // exactly the single-channel cap — never smaller.
        for instr in [1_000u64, 1_000_000] {
            let one = SystemConfig::paper_default_with_channels(instr, 1);
            let four = SystemConfig::paper_default_with_channels(instr, 4);
            assert_eq!(one.max_ticks, four.max_ticks);
            assert_eq!(one.channels(), 1);
            assert_eq!(four.channels(), 4);
            assert_eq!(four.device.organization.channels, 4);
        }
        // And the plain constructor is the 1-channel case.
        assert_eq!(
            SystemConfig::paper_default(5_000).max_ticks,
            SystemConfig::paper_default_with_channels(5_000, 4).max_ticks
        );
    }

    fn tiny_multi_channel_system(
        channels: u32,
        instr: u64,
        traces: Vec<Trace>,
    ) -> SystemSimulation {
        let mut sim_config = {
            let cores = traces.len() as u32;
            let mut cpu = CpuConfig::tiny_for_tests();
            cpu.cores = cores;
            let prac = PracConfig::builder().rowhammer_threshold(1024).build();
            let device = DramDeviceConfig {
                organization: dram_sim::org::DramOrganization::ddr5_32gb_quad_rank()
                    .with_channels(channels),
                timing: dram_sim::timing::DramTimingParams::ddr5_8000b(),
                prac,
                queue_kind: prac_core::queue::QueueKind::SingleEntryFrequency,
                tref_every_n_refreshes: None,
            };
            SystemConfig {
                cpu,
                device,
                controller: ControllerConfig::default(),
                instructions_per_core: instr,
                max_ticks: 50_000_000,
                engine: EngineKind::default(),
                sim_threads: 1,
            }
        };
        sim_config.cpu.cores = traces.len() as u32;
        SystemSimulation::new(sim_config, traces)
    }

    #[test]
    fn multi_channel_system_completes_with_per_channel_stats() {
        let traces = vec![
            memory_trace(0x1_0000_0000, 4096),
            memory_trace(0x2_0000_0000, 4096),
        ];
        let result = tiny_multi_channel_system(4, 5_000, traces).run();
        assert!(result.completed, "run hit the tick cap: {result:?}");
        assert_eq!(result.channel_stats.len(), 4);
        // The aggregate equals the sum of the per-channel blocks.
        let reads: u64 = result
            .channel_stats
            .iter()
            .map(|c| c.controller.reads_completed)
            .sum();
        assert_eq!(reads, result.controller_stats.reads_completed);
        let activations: u64 = result
            .channel_stats
            .iter()
            .map(|c| c.dram.activations)
            .sum();
        assert_eq!(activations, result.dram_stats.activations);
        // With cache-line interleave, a streaming workload exercises more
        // than one channel.
        let busy_channels = result
            .channel_stats
            .iter()
            .filter(|c| c.controller.reads_completed > 0)
            .count();
        assert!(busy_channels > 1, "traffic never spread across channels");
    }

    /// Streaming-load system with the paper's CPU (deep MSHRs) so DRAM
    /// bandwidth, not dependent-load latency, is the bottleneck.
    fn streaming_system(
        channels: u32,
        interleave: memctrl::mapping::ChannelInterleave,
    ) -> SystemSimulation {
        let traces: Vec<Trace> = [0x1_0000_0000u64, 0x2_0000_0000]
            .into_iter()
            .map(|base| {
                let ops = (0..4096u64).map(|i| TraceOp::Load(base + i * 64)).collect();
                Trace::new("stream", ops)
            })
            .collect();
        let mut cpu = CpuConfig::paper_default();
        cpu.cores = 2;
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device = DramDeviceConfig {
            organization: dram_sim::org::DramOrganization::ddr5_32gb_quad_rank()
                .with_channels(channels),
            timing: dram_sim::timing::DramTimingParams::ddr5_8000b(),
            prac,
            queue_kind: prac_core::queue::QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        };
        let config = SystemConfig {
            cpu,
            device,
            controller: ControllerConfig {
                channel_interleave: interleave,
                ..ControllerConfig::default()
            },
            instructions_per_core: 4_000,
            max_ticks: 50_000_000,
            engine: EngineKind::default(),
            sim_threads: 1,
        };
        SystemSimulation::new(config, traces)
    }

    #[test]
    fn extra_channels_speed_up_bandwidth_bound_runs() {
        use memctrl::mapping::ChannelInterleave;
        // Row-granularity interleave preserves each stream's row locality
        // per channel, so bandwidth-bound runs speed up monotonically with
        // the channel count.  (Cache-line interleave can interact with the
        // stride prefetcher and is exercised by the scaling campaign
        // instead.)
        let mut previous = u64::MAX;
        for channels in [1u32, 2, 4] {
            let result = streaming_system(channels, ChannelInterleave::Row).run();
            assert!(result.completed, "ch={channels} hit the tick cap");
            assert!(
                result.elapsed_ticks < previous,
                "{channels} channels ({} ticks) should beat the previous \
                 config ({previous} ticks) on streaming traffic",
                result.elapsed_ticks
            );
            previous = result.elapsed_ticks;
        }
        // Cache-line interleave also beats the single channel at 2 channels.
        let one = streaming_system(1, ChannelInterleave::CacheLine).run();
        let two = streaming_system(2, ChannelInterleave::CacheLine).run();
        assert!(two.elapsed_ticks < one.elapsed_ticks);
    }

    #[test]
    fn total_ipc_sums_cores() {
        let traces = vec![
            Trace::new("c0", vec![TraceOp::Compute(4)]),
            Trace::new("c1", vec![TraceOp::Compute(4)]),
        ];
        let result = tiny_system(1_000, traces).run();
        let manual: f64 = result.core_stats.iter().map(|s| s.ipc()).sum();
        assert!((result.total_ipc() - manual).abs() < 1e-12);
    }
}
