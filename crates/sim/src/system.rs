//! The full-system simulation: CPU cluster ⇄ memory controller ⇄ PRAC DRAM.
//!
//! [`SystemSimulation`] owns the wiring and the per-tick step; *how* the
//! ticks are visited is delegated to a [`SimulationEngine`] — the legacy
//! [`crate::event::TickEngine`] that walks every DRAM clock, or the
//! event-driven [`crate::event::EventEngine`] that jumps between component
//! wake-ups.  Both produce bit-identical [`SystemResult`]s.

use cpu_sim::cluster::CpuCluster;
use cpu_sim::config::CpuConfig;
use cpu_sim::core_model::CoreMemoryRequest;
use cpu_sim::stats::CoreStats;
use cpu_sim::trace::Trace;
use dram_sim::device::DramDeviceConfig;
use dram_sim::stats::DramStats;
use memctrl::controller::{ControllerConfig, MemoryController};
use memctrl::request::{MemoryRequest, RequestKind};
use memctrl::rfm::RfmKind;
use memctrl::stats::ControllerStats;
use serde::{Deserialize, Serialize};

use crate::event::{EngineKind, EventSource, EventWheel, SimulationEngine};

/// Configuration of one full-system run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// CPU and cache-hierarchy configuration.
    pub cpu: CpuConfig,
    /// DRAM device configuration (organisation, timing, PRAC).
    pub device: DramDeviceConfig,
    /// Memory-controller configuration.
    pub controller: ControllerConfig,
    /// Instructions each core must retire before the run ends.
    pub instructions_per_core: u64,
    /// Hard cap on simulated ticks (safety net against livelock).
    pub max_ticks: u64,
    /// Which engine visits the ticks (results are engine-independent).
    pub engine: EngineKind,
}

impl SystemConfig {
    /// Paper-like defaults with a reduced instruction budget suitable for
    /// laptop-scale runs (the paper simulates 200 M instructions per core on
    /// a cluster; relative results stabilise far earlier for synthetic
    /// workloads).
    #[must_use]
    pub fn paper_default(instructions_per_core: u64) -> Self {
        Self {
            cpu: CpuConfig::paper_default(),
            device: DramDeviceConfig::paper_default(),
            controller: ControllerConfig::default(),
            instructions_per_core,
            max_ticks: instructions_per_core.saturating_mul(400).max(10_000_000),
            engine: EngineKind::default(),
        }
    }
}

/// Result of one full-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemResult {
    /// Per-core statistics (IPC, misses, …).
    pub core_stats: Vec<CoreStats>,
    /// Memory-controller statistics (RFM counts, latencies, …).
    pub controller_stats: ControllerStats,
    /// DRAM device statistics (activations, refreshes, mitigations, …).
    pub dram_stats: DramStats,
    /// Chronological `(tick, kind)` log of the RFMs the controller issued
    /// (recording stops after the first ~1 M; later RFMs are only counted).
    /// Lets the differential test harness assert that the two engines issue
    /// every ABO/ACB/TB RFM at the exact same cycle, and attack analyses
    /// inspect RFM timing.
    pub rfm_log: Vec<(u64, RfmKind)>,
    /// Number of ticks the run took (time for the slowest core to finish).
    pub elapsed_ticks: u64,
    /// Whether every core finished within the tick budget.
    pub completed: bool,
}

impl SystemResult {
    /// Sum of per-core IPCs — for homogeneous workload mixes this ratio
    /// between two configurations equals the weighted-speedup ratio.
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.core_stats.iter().map(CoreStats::ipc).sum()
    }

    /// Execution time in nanoseconds.
    #[must_use]
    pub fn execution_time_ns(&self) -> f64 {
        self.elapsed_ticks as f64 * 0.25
    }

    /// Average misses-per-kilo-instruction across cores.
    #[must_use]
    pub fn average_mpki(&self) -> f64 {
        if self.core_stats.is_empty() {
            return 0.0;
        }
        self.core_stats
            .iter()
            .map(CoreStats::misses_per_kilo_instruction)
            .sum::<f64>()
            / self.core_stats.len() as f64
    }
}

/// A full-system simulation instance.
#[derive(Debug)]
pub struct SystemSimulation {
    cluster: CpuCluster,
    controller: MemoryController,
    instructions_per_core: u64,
    max_ticks: u64,
    engine: EngineKind,
    /// Maps an in-flight controller request id to (core, core-local id).
    /// Controller ids are globally unique, so a flat Vec-backed map keyed by
    /// id modulo capacity would risk collisions; a HashMap stays simple and
    /// is far from the critical path.
    inflight: std::collections::HashMap<u64, (u32, u64)>,
    next_controller_id: u64,
}

impl SystemSimulation {
    /// Builds a simulation running one trace per core.
    ///
    /// # Panics
    ///
    /// Panics when the number of traces does not match the configured core
    /// count (propagated from [`CpuCluster::new`]).
    #[must_use]
    pub fn new(config: SystemConfig, traces: Vec<Trace>) -> Self {
        let cluster = CpuCluster::new(config.cpu.clone(), traces, config.instructions_per_core);
        let controller = MemoryController::new(config.device.clone(), config.controller.clone());
        Self {
            cluster,
            controller,
            instructions_per_core: config.instructions_per_core,
            max_ticks: config.max_ticks,
            engine: config.engine,
            inflight: std::collections::HashMap::new(),
            next_controller_id: 0,
        }
    }

    /// The instruction budget per core.
    #[must_use]
    pub fn instructions_per_core(&self) -> u64 {
        self.instructions_per_core
    }

    /// The engine the configuration selected.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Runs the simulation to completion (or the tick cap) with the engine
    /// selected in the configuration and returns the collected statistics.
    pub fn run(self) -> SystemResult {
        self.engine.instance().run(self)
    }

    /// Runs the simulation under an explicit engine (used by the
    /// differential test harness to race the two engines head-to-head).
    pub fn run_with(self, engine: &dyn SimulationEngine) -> SystemResult {
        engine.run(self)
    }

    /// Settles one tick: CPU cluster first, then request forwarding, then
    /// the memory controller with completion routing.  Both engines drive
    /// this exact function — the tick engine for every tick, the event
    /// engine only for ticks in which something can happen.
    fn step(&mut self, now: u64, backlog: &mut Vec<(u32, CoreMemoryRequest)>) {
        // 1. CPU side: collect new DRAM-bound requests.
        let output = self.cluster.tick(now);
        backlog.extend(output.requests);

        // 2. Forward as many backlog requests as the controller accepts.
        while !backlog.is_empty() && self.controller.can_accept() {
            let (core, req) = backlog.swap_remove(0);
            let id = self.next_controller_id;
            self.next_controller_id += 1;
            let request = if req.is_write {
                MemoryRequest::write(id, req.address, core, now)
            } else {
                MemoryRequest::read(id, req.address, core, now)
            };
            let accepted = self.controller.enqueue(request);
            debug_assert!(accepted);
            if !req.is_write && core != u32::MAX {
                self.inflight.insert(id, (core, req.id));
            }
        }

        // 3. Memory side: advance one tick and route completions.
        for completion in self.controller.tick(now) {
            if completion.kind == RequestKind::Read {
                if let Some((core, core_req_id)) = self.inflight.remove(&completion.id) {
                    self.cluster.on_memory_completion(core, core_req_id);
                }
            }
        }
    }

    /// Collects the final statistics after the last settled tick.
    fn finish(self, elapsed_ticks: u64) -> SystemResult {
        SystemResult {
            core_stats: self.cluster.core_stats(),
            controller_stats: self.controller.stats().clone(),
            dram_stats: *self.controller.device().stats(),
            rfm_log: self.controller.rfm_log().to_vec(),
            elapsed_ticks,
            completed: self.cluster.all_finished(),
        }
    }

    /// The legacy main loop: one tick per iteration.
    pub(crate) fn run_ticked(mut self) -> SystemResult {
        let mut now = 0u64;
        let mut backlog: Vec<(u32, CoreMemoryRequest)> = Vec::new();
        while now < self.max_ticks && !self.cluster.all_finished() {
            self.step(now, &mut backlog);
            now += 1;
        }
        self.finish(now)
    }

    /// The event-driven main loop: settle a tick, ask every component for
    /// its next wake-up, jump to the earliest one.
    ///
    /// Skipped ticks are exactly the ticks the tick engine would process as
    /// no-ops, except that each of them would have aged every unfinished
    /// core by one cycle — which [`CpuCluster::credit_stalled_cycles`]
    /// accounts for in bulk, keeping the per-core cycle counts (and thus
    /// IPC, slowdown and energy inputs) bit-identical.
    pub(crate) fn run_event_driven(mut self) -> SystemResult {
        let mut backlog: Vec<(u32, CoreMemoryRequest)> = Vec::new();
        let mut wheel = EventWheel::new();
        let mut now = 0u64;
        if now >= self.max_ticks || self.cluster.all_finished() {
            return self.finish(0);
        }
        loop {
            // Invariant: now < max_ticks and at least one core is unfinished,
            // mirroring the tick engine's loop condition.
            self.step(now, &mut backlog);
            if self.cluster.all_finished() {
                now += 1;
                break;
            }
            wheel.reregister(EventSource::Cluster, self.cluster.next_event_at(now));
            wheel.reregister(EventSource::Controller, self.controller.next_event_at(now));
            let forwarding =
                (!backlog.is_empty() && self.controller.can_accept()).then_some(now + 1);
            wheel.reregister(EventSource::Forwarding, forwarding);
            // No wake-up means the system is dead in the water (e.g. every
            // core waits on a completion that can never come); the tick
            // engine would spin to the cap, so jump there directly.
            let next = wheel
                .next_after(now)
                .unwrap_or(self.max_ticks)
                .min(self.max_ticks);
            self.cluster.credit_stalled_cycles(next - now - 1);
            if next >= self.max_ticks {
                now = self.max_ticks;
                break;
            }
            now = next;
        }
        self.finish(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::trace::TraceOp;
    use prac_core::config::PracConfig;

    fn tiny_system(instr: u64, traces: Vec<Trace>) -> SystemSimulation {
        let cores = traces.len() as u32;
        let mut cpu = CpuConfig::tiny_for_tests();
        cpu.cores = cores;
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device = DramDeviceConfig {
            organization: dram_sim::org::DramOrganization::ddr5_32gb_quad_rank(),
            timing: dram_sim::timing::DramTimingParams::ddr5_8000b(),
            prac,
            queue_kind: prac_core::queue::QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        };
        let config = SystemConfig {
            cpu,
            device,
            controller: ControllerConfig::default(),
            instructions_per_core: instr,
            max_ticks: 50_000_000,
            engine: EngineKind::default(),
        };
        SystemSimulation::new(config, traces)
    }

    fn memory_trace(base: u64, lines: u64) -> Trace {
        let ops = (0..lines)
            .flat_map(|i| [TraceOp::Load(base + i * 64), TraceOp::Compute(9)])
            .collect();
        Trace::new("mem", ops)
    }

    #[test]
    fn compute_only_system_finishes_quickly() {
        let traces = vec![
            Trace::new("c0", vec![TraceOp::Compute(16)]),
            Trace::new("c1", vec![TraceOp::Compute(16)]),
        ];
        let result = tiny_system(2_000, traces).run();
        assert!(result.completed);
        assert!(result.total_ipc() > 2.0);
        assert_eq!(result.controller_stats.reads_completed, 0);
    }

    #[test]
    fn memory_bound_system_reaches_dram_and_finishes() {
        let traces = vec![
            memory_trace(0x1_0000_0000, 4096),
            memory_trace(0x2_0000_0000, 4096),
        ];
        let result = tiny_system(5_000, traces).run();
        assert!(result.completed, "run hit the tick cap: {result:?}");
        assert!(result.controller_stats.reads_completed > 100);
        assert!(result.dram_stats.activations > 50);
        assert!(result.average_mpki() > 1.0);
        assert!(result.execution_time_ns() > 0.0);
    }

    #[test]
    fn refreshes_are_issued_during_long_runs() {
        let traces = vec![
            memory_trace(0x1_0000_0000, 8192),
            memory_trace(0x2_0000_0000, 8192),
        ];
        let result = tiny_system(20_000, traces).run();
        assert!(result.completed);
        // Runs longer than tREFI (15.6 K ticks) must contain refreshes.
        if result.elapsed_ticks > 20_000 {
            assert!(result.controller_stats.refreshes_issued > 0);
        }
    }

    #[test]
    fn engines_agree_on_a_memory_bound_system() {
        use crate::event::{EventEngine, TickEngine};
        let traces = || {
            vec![
                memory_trace(0x1_0000_0000, 2048),
                memory_trace(0x2_0000_0000, 2048),
            ]
        };
        let ticked = tiny_system(3_000, traces()).run_with(&TickEngine);
        let evented = tiny_system(3_000, traces()).run_with(&EventEngine);
        assert_eq!(ticked, evented, "engines must be cycle-exact");
        assert!(ticked.completed);
        assert!(!ticked.rfm_log.is_empty() || ticked.controller_stats.total_rfms() == 0);
    }

    #[test]
    fn total_ipc_sums_cores() {
        let traces = vec![
            Trace::new("c0", vec![TraceOp::Compute(4)]),
            Trace::new("c1", vec![TraceOp::Compute(4)]),
        ];
        let result = tiny_system(1_000, traces).run();
        let manual: f64 = result.core_stats.iter().map(|s| s.ipc()).sum();
        assert!((result.total_ipc() - manual).abs() < 1e-12);
    }
}
