//! The multi-channel memory subsystem: one [`MemoryController`] (with its
//! own PRAC-enabled [`dram_sim::device::DramDevice`] and its own
//! [`prac_core::mitigation::MitigationEngine`]) per channel, behind a single
//! address router.
//!
//! # Topology
//!
//! ```text
//!                    ┌── controller[0] ── device[0] (banks of channel 0)
//!   CPU requests ──▶ │   controller[1] ── device[1]
//!    (router)        │   …
//!                    └── controller[N-1] ── device[N-1]
//! ```
//!
//! The router decodes the channel bits of every physical address with the
//! same [`AddressMapping`] (and [`memctrl::mapping::ChannelInterleave`]
//! granularity) the per-channel controllers use, so a request always lands
//! on the controller whose device owns its bank.  Channels are fully
//! independent, exactly as in hardware: each has its own command bus,
//! refresh schedule, Alert Back-Off responder, and mitigation engine, so
//! per-channel ABO alerts, RFM budgets and TB-RFM stalls never interfere
//! across channels.
//!
//! With one channel the subsystem degenerates to the original
//! single-controller wiring and is **bit-identical** to it (pinned by
//! `tests/single_channel_snapshot.rs`).

use dram_sim::device::DramDeviceConfig;
use dram_sim::stats::DramStats;
use memctrl::controller::{ControllerConfig, MemoryController};
use memctrl::mapping::AddressMapping;
use memctrl::request::{CompletedRequest, MemoryRequest};
use memctrl::rfm::RfmKind;
use memctrl::stats::ControllerStats;
use prac_core::config::MitigationPolicy;
use serde::{Deserialize, Serialize};

/// Per-channel statistics block of a finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Channel index.
    pub channel: u32,
    /// The channel controller's statistics.
    pub controller: ControllerStats,
    /// The channel device's statistics.
    pub dram: DramStats,
}

/// N independent per-channel memory controllers behind one address router.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    controllers: Vec<MemoryController>,
    /// Subsystem-level copy of the address mapping, used only to route
    /// requests to channels (each controller re-decodes internally).
    router: Box<dyn AddressMapping>,
    /// One reusable completion buffer per channel for the parallel stepping
    /// path of [`MemorySubsystem::tick_due`].  Always drained back to empty
    /// before the call returns, so this is scratch space, not state — a
    /// forked clone carrying empty buffers is correct by construction.
    scratch: Vec<Vec<CompletedRequest>>,
}

/// Splay constant mixed into per-channel seeds (the golden-ratio mixer);
/// channel 0 contributes nothing, so single-channel seeds are untouched.
const CHANNEL_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl MemorySubsystem {
    /// Builds one controller (and device) per channel of
    /// `device_config.organization.channels`.
    ///
    /// Every channel receives an identical configuration — same timing, same
    /// PRAC parameters, same mitigation policy — mirroring a homogeneous
    /// DIMM population.  Each channel's mitigation engine is an independent
    /// instance, so engine state (TB-RFM schedules, PARA draws, ACB
    /// counters) is strictly per-channel, and **seeded randomness is
    /// per-channel too**: configured seeds (PARA decision streams, the
    /// obfuscation injection schedule) are mixed with the channel index so
    /// channels draw independent streams, as independent hardware would —
    /// channel 0 keeps the configured seed unchanged, so single-channel
    /// runs are unaffected.
    #[must_use]
    pub fn new(device_config: DramDeviceConfig, controller_config: ControllerConfig) -> Self {
        let channels = device_config.organization.channels.max(1);
        let router = controller_config.mapping.instantiate_with(
            device_config.organization,
            controller_config.channel_interleave,
        );
        let controllers = (0..channels)
            .map(|channel| {
                let mix = u64::from(channel).wrapping_mul(CHANNEL_SEED_MIX);
                let mut device = device_config.clone();
                if let MitigationPolicy::Para { one_in, seed } = device.prac.policy {
                    device.prac.policy = MitigationPolicy::Para {
                        one_in,
                        seed: seed ^ mix,
                    };
                }
                let mut controller = controller_config.clone();
                controller.obfuscation_seed ^= mix;
                MemoryController::new(device, controller).for_channel(channel)
            })
            .collect();
        Self {
            controllers,
            router,
            scratch: (0..channels).map(|_| Vec::new()).collect(),
        }
    }

    /// Re-targets a forked subsystem at a different mitigation
    /// configuration (the checkpoint/fork divergence point), mirroring the
    /// per-channel derivations [`MemorySubsystem::new`] performs: PARA
    /// seeds are re-mixed with the channel index so every channel keeps an
    /// independent decision stream, and each controller refits its engine,
    /// ABO responder and device-side PRAC parameters in place.  The
    /// obfuscation seed is policy-independent and stays untouched.
    pub fn refit_mitigation(
        &mut self,
        prac: &prac_core::config::PracConfig,
        tref_every_n_refreshes: Option<u32>,
    ) {
        for (channel, controller) in self.controllers.iter_mut().enumerate() {
            let mix = (channel as u64).wrapping_mul(CHANNEL_SEED_MIX);
            let mut prac = prac.clone();
            if let MitigationPolicy::Para { one_in, seed } = prac.policy {
                prac.policy = MitigationPolicy::Para {
                    one_in,
                    seed: seed ^ mix,
                };
            }
            controller.refit_mitigation(prac, tref_every_n_refreshes);
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.controllers.len() as u32
    }

    /// The per-channel controllers, in channel order.
    #[must_use]
    pub fn controllers(&self) -> &[MemoryController] {
        &self.controllers
    }

    /// The controller of one channel.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    #[must_use]
    pub fn controller(&self, channel: u32) -> &MemoryController {
        &self.controllers[channel as usize]
    }

    /// Decodes the channel a physical address routes to.  This sits on the
    /// per-request hot path, so it uses the mapping's channel-only decode (a
    /// shift-and-mask; a constant 0 with one channel) rather than a full
    /// coordinate decode — the target controller re-decodes at enqueue.
    #[must_use]
    pub fn route(&self, physical_address: u64) -> u32 {
        self.router.decode_channel(physical_address)
    }

    /// Whether the given channel's controller can accept another request.
    #[must_use]
    pub fn can_accept(&self, channel: u32) -> bool {
        self.controllers[channel as usize].can_accept()
    }

    /// Enqueues a request on the given channel.  Returns `false` (dropping
    /// the request) when that channel's queue is full.
    pub fn enqueue(&mut self, channel: u32, request: MemoryRequest) -> bool {
        self.controllers[channel as usize].enqueue(request)
    }

    /// Advances every channel by one tick, in channel order, appending all
    /// completions to the caller-owned buffer.  The fixed order keeps
    /// multi-channel runs deterministic, and the reused buffer keeps the
    /// per-tick hot path allocation-free.
    pub fn tick(&mut self, now: u64, completed: &mut Vec<CompletedRequest>) {
        for controller in &mut self.controllers {
            controller.tick_into(now, completed);
        }
    }

    /// Advances exactly the channels whose `due` flag is set by one tick,
    /// appending their completions to `completed` in channel order.
    ///
    /// This is the per-channel scheduling entry point: the event engine
    /// tracks one wake-up stream per channel and sets `due` only for the
    /// channels whose wake-up equals `now`, so a quiet channel no longer
    /// pays for every busy channel's events.  Skipping a non-due channel is
    /// exact, not approximate: by the engine purity contract a poll of a
    /// channel before its registered wake-up is a pure no-op, and an
    /// unpolled channel's state (hence its armed wake-up) cannot change.
    ///
    /// When `sim_threads > 1` and at least two channels are due, the due
    /// channels step concurrently on scoped threads — channels share no
    /// state between the request-fanout and completion-merge barriers.
    /// Each channel fills its own scratch buffer and the buffers are
    /// drained into `completed` in channel index order, which is exactly
    /// the sequential iteration order, so the output (request completion
    /// order, and therefore every downstream id, statistic and log) is
    /// byte-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `due.len()` differs from the channel
    /// count.
    pub fn tick_due(
        &mut self,
        now: u64,
        due: &[bool],
        sim_threads: usize,
        completed: &mut Vec<CompletedRequest>,
    ) {
        debug_assert_eq!(due.len(), self.controllers.len());
        let due_count = due.iter().filter(|&&is_due| is_due).count();
        if sim_threads > 1 && due_count > 1 {
            let mut shards: Vec<(&mut MemoryController, &mut Vec<CompletedRequest>)> = self
                .controllers
                .iter_mut()
                .zip(self.scratch.iter_mut())
                .enumerate()
                .filter(|&(channel, _)| due[channel])
                .map(|(_, shard)| shard)
                .collect();
            crate::parallel::parallel_for_each_mut(&mut shards, sim_threads, |shard| {
                let (controller, buffer) = shard;
                controller.tick_into(now, buffer);
            });
            // Completion-merge barrier: drain the per-channel buffers in
            // channel index order — the sequential order exactly.
            for (_, buffer) in shards {
                completed.append(buffer);
            }
            return;
        }
        for (channel, controller) in self.controllers.iter_mut().enumerate() {
            if due[channel] {
                controller.tick_into(now, completed);
            }
        }
    }

    /// Earliest tick strictly after `now` at which *any* channel could act:
    /// the min of every channel's wake-up registration.  `None` when all
    /// channels are fully idle.
    #[must_use]
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        self.controllers
            .iter()
            .filter_map(|controller| controller.next_event_at(now))
            .min()
    }

    /// Earliest tick strictly after `now` at which the given channel could
    /// act — that channel's own wake-up stream for the per-channel slots of
    /// the event wheel.  `None` when the channel is fully idle.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    #[must_use]
    pub fn next_event_at_channel(&self, channel: u32, now: u64) -> Option<u64> {
        self.controllers[channel as usize].next_event_at(now)
    }

    /// Controller statistics summed over every channel.
    #[must_use]
    pub fn aggregated_controller_stats(&self) -> ControllerStats {
        let mut total = ControllerStats::default();
        for controller in &self.controllers {
            total.merge(controller.stats());
        }
        total
    }

    /// DRAM statistics summed over every channel.
    #[must_use]
    pub fn aggregated_dram_stats(&self) -> DramStats {
        let mut total = DramStats::default();
        for controller in &self.controllers {
            total.merge(controller.device().stats());
        }
        total
    }

    /// Per-channel statistics blocks, in channel order.
    #[must_use]
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.controllers
            .iter()
            .enumerate()
            .map(|(channel, controller)| ChannelStats {
                channel: channel as u32,
                controller: *controller.stats(),
                dram: *controller.device().stats(),
            })
            .collect()
    }

    /// The RFM logs of every channel merged into one chronological log.
    /// Per-channel logs are already tick-sorted; ties across channels break
    /// by channel index, so the merge is deterministic.
    #[must_use]
    pub fn merged_rfm_log(&self) -> Vec<(u64, RfmKind)> {
        if self.controllers.len() == 1 {
            return self.controllers[0].rfm_log().to_vec();
        }
        let total: usize = self
            .controllers
            .iter()
            .map(|controller| controller.rfm_log().len())
            .sum();
        let mut tagged: Vec<(u64, u32, RfmKind)> = Vec::with_capacity(total);
        for (channel, controller) in self.controllers.iter().enumerate() {
            tagged.extend(
                controller
                    .rfm_log()
                    .iter()
                    .map(|&(tick, kind)| (tick, channel as u32, kind)),
            );
        }
        tagged.sort_by_key(|&(tick, channel, _)| (tick, channel));
        tagged
            .into_iter()
            .map(|(tick, _, kind)| (tick, kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memctrl::mapping::{ChannelInterleave, MappingKind};
    use prac_core::config::PracConfig;

    fn subsystem(channels: u32) -> MemorySubsystem {
        let prac = PracConfig::builder()
            .rowhammer_threshold(1024)
            .policy(MitigationPolicy::AboOnly)
            .build();
        let mut device = DramDeviceConfig::tiny_for_tests(prac);
        device.organization = device.organization.with_channels(channels);
        let config = ControllerConfig {
            mapping: MappingKind::RowInterleaved,
            channel_interleave: ChannelInterleave::CacheLine,
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        MemorySubsystem::new(device, config)
    }

    #[test]
    fn builds_one_controller_per_channel() {
        let sub = subsystem(4);
        assert_eq!(sub.channels(), 4);
        for (i, controller) in sub.controllers().iter().enumerate() {
            assert_eq!(controller.channel_index(), i as u32);
        }
    }

    #[test]
    fn routing_matches_the_controllers_own_decode() {
        let sub = subsystem(4);
        for line in 0..64u64 {
            let pa = line * 64;
            let channel = sub.route(pa);
            assert!(channel < 4);
            let decoded = sub.controller(channel).decode_address(pa);
            assert_eq!(decoded.channel, channel);
        }
    }

    #[test]
    fn requests_complete_on_their_own_channels() {
        let mut sub = subsystem(2);
        // Two consecutive cache lines land on different channels under
        // cache-line interleave.
        for (id, pa) in [(1u64, 0u64), (2, 64)] {
            let channel = sub.route(pa);
            assert!(sub.enqueue(channel, MemoryRequest::read(id, pa, 0, 0)));
        }
        assert_ne!(sub.route(0), sub.route(64));
        let mut completed = Vec::new();
        for now in 0..2_000 {
            sub.tick(now, &mut completed);
        }
        assert_eq!(completed.len(), 2);
        let stats = sub.aggregated_controller_stats();
        assert_eq!(stats.reads_completed, 2);
        // Each channel serviced exactly one request.
        for per_channel in sub.channel_stats() {
            assert_eq!(per_channel.controller.reads_completed, 1);
        }
    }

    #[test]
    fn channels_progress_independently() {
        // Saturate channel 0's queue; channel 1 must still accept.
        let mut sub = subsystem(2);
        let capacity = sub.controller(0).config().queue_capacity;
        let mut id = 0u64;
        let mut pa = 0u64;
        while (sub.controller(0).pending_requests()) < capacity {
            if sub.route(pa) == 0 {
                assert!(sub.enqueue(0, MemoryRequest::read(id, pa, 0, 0)));
                id += 1;
            }
            pa += 64;
        }
        assert!(!sub.can_accept(0));
        assert!(sub.can_accept(1));
    }

    #[test]
    fn single_channel_subsystem_is_transparent() {
        let mut sub = subsystem(1);
        assert_eq!(sub.channels(), 1);
        assert_eq!(sub.route(0x1234_5600), 0);
        assert!(sub.enqueue(0, MemoryRequest::read(9, 0x40, 0, 0)));
        let mut completed = Vec::new();
        for now in 0..2_000 {
            sub.tick(now, &mut completed);
        }
        assert_eq!(completed.len(), 1);
        assert_eq!(sub.merged_rfm_log(), sub.controller(0).rfm_log());
    }

    #[test]
    fn seeded_randomness_is_independent_per_channel() {
        let prac = PracConfig::builder()
            .rowhammer_threshold(1024)
            .policy(MitigationPolicy::Para {
                one_in: 8,
                seed: 0xABCD,
            })
            .build();
        let mut device = DramDeviceConfig::tiny_for_tests(prac);
        device.organization = device.organization.with_channels(4);
        let config = ControllerConfig {
            obfuscation_seed: 0x5eed_5eed,
            ..ControllerConfig::default()
        };
        let sub = MemorySubsystem::new(device, config);
        // Channel 0 keeps the configured seed verbatim (single-channel
        // bit-identity); the other channels draw from distinct streams.
        let seeds: Vec<u64> = sub
            .controllers()
            .iter()
            .map(|c| match c.policy() {
                MitigationPolicy::Para { seed, .. } => *seed,
                other => panic!("unexpected policy {other:?}"),
            })
            .collect();
        assert_eq!(seeds[0], 0xABCD);
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 4, "per-channel PARA seeds must differ");
        let obf_seeds: Vec<u64> = sub
            .controllers()
            .iter()
            .map(|c| c.config().obfuscation_seed)
            .collect();
        assert_eq!(obf_seeds[0], 0x5eed_5eed);
        let unique: std::collections::HashSet<u64> = obf_seeds.iter().copied().collect();
        assert_eq!(unique.len(), 4, "per-channel injection seeds must differ");
    }

    /// The sharded stepping path must be byte-identical to the sequential
    /// walk: same completion order, same per-channel statistics, for every
    /// thread count — the core determinism contract of `--sim-threads`.
    #[test]
    fn tick_due_is_thread_count_independent() {
        let run = |sim_threads: usize| {
            let mut sub = subsystem(4);
            let mut id = 0u64;
            for line in 0..32u64 {
                let pa = line * 64;
                let channel = sub.route(pa);
                if sub.can_accept(channel) {
                    assert!(sub.enqueue(channel, MemoryRequest::read(id, pa, 0, 0)));
                    id += 1;
                }
            }
            let due = vec![true; 4];
            let mut completed = Vec::new();
            for now in 0..4_000 {
                sub.tick_due(now, &due, sim_threads, &mut completed);
            }
            (completed, sub.channel_stats(), sub.merged_rfm_log())
        };
        let sequential = run(1);
        assert!(!sequential.0.is_empty(), "the workload must complete reads");
        for sim_threads in [2usize, 4, 8] {
            assert_eq!(run(sim_threads), sequential, "threads = {sim_threads}");
        }
    }

    /// Only due channels may be polled — and polling a channel before its
    /// registered wake-up must be a no-op (the purity contract per-channel
    /// scheduling rests on).
    #[test]
    fn non_due_channels_are_left_untouched() {
        let mut sub = subsystem(2);
        let pa = (0..64)
            .map(|i| i * 64)
            .find(|&pa| sub.route(pa) == 1)
            .expect("some line routes to channel 1");
        assert!(sub.enqueue(1, MemoryRequest::read(1, pa, 0, 0)));
        let mut completed = Vec::new();
        // Poll only channel 0 (idle): nothing may happen anywhere.
        for now in 0..2_000 {
            sub.tick_due(now, &[true, false], 1, &mut completed);
        }
        assert!(completed.is_empty());
        assert_eq!(sub.aggregated_controller_stats().reads_completed, 0);
        // Now poll channel 1 as well: the read completes.
        for now in 2_000..4_000 {
            sub.tick_due(now, &[true, true], 1, &mut completed);
        }
        assert_eq!(completed.len(), 1);
    }

    #[test]
    fn next_event_is_the_min_across_channels() {
        let mut sub = subsystem(2);
        // Idle subsystem with refresh disabled: no wake-ups at all.
        assert_eq!(sub.next_event_at(0), None);
        // Work on channel 1 only: the subsystem wake-up is channel 1's.
        let pa = (0..64)
            .map(|i| i * 64)
            .find(|&pa| sub.route(pa) == 1)
            .expect("some line routes to channel 1");
        sub.enqueue(1, MemoryRequest::read(1, pa, 0, 0));
        assert_eq!(sub.next_event_at(0), sub.controller(1).next_event_at(0));
    }
}
