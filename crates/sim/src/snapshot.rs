//! Checkpoint/fork execution: pause a simulation mid-run, fork the complete
//! system state, and resume each fork independently.
//!
//! Most cells of a paper-scale campaign differ only in the mitigation knobs
//! while the trace, the cache warm-up and the DRAM settle phase are
//! identical.  This module lets the campaign layer simulate that shared
//! prefix **once** and fork per cell:
//!
//! ```text
//!   SystemSimulation::run_until(P) ──▶ PrefixOutcome::Paused(prefix)
//!        │ fork()        │ fork()
//!        ▼               ▼
//!   refit_mitigation   refit_mitigation
//!        │ resume()      │ resume()
//!        ▼               ▼
//!   SystemResult      SystemResult        (bit-identical to cold runs)
//! ```
//!
//! # Correctness model
//!
//! A [`PausedSimulation`] at tick `P` holds exactly the state an
//! uninterrupted run has after settling ticks `[0, P)` — both engines pause
//! on that boundary ([`SystemSimulation::run_until`]), so `resume()` replays
//! the cold run bit for bit (`tests/fork_equivalence.rs` pins this across
//! the full mitigation × attack registries).
//!
//! Refitting the mitigation configuration at the fork point is additionally
//! conditioned on the prefix being *mitigation-free* so far
//! ([`PausedSimulation::is_mitigation_free`]): every built-in engine derives
//! its schedule from absolute deadlines anchored at tick 0, so a freshly
//! built engine at `P` equals a cold engine that has idled through `[0, P)`
//! — but only while no RFM, Alert or counter reset has fired yet.  The
//! campaign layer computes a static per-policy divergence horizon and backs
//! it with this runtime guard, falling back to a cold run on violation.

use dram_sim::device::DramDeviceConfig;
use prac_core::config::{MitigationPolicy, PracConfig};

use crate::system::{BacklogEntry, SystemResult, SystemSimulation};

/// The earliest tick at which a cold run under `device`'s mitigation
/// configuration could diverge from a cold run of the same system with
/// mitigation disabled — i.e. how far a shared mitigation-free prefix may
/// safely extend before forking into this configuration.
///
/// The bound is conservative (never late): each term is the soonest the
/// policy could take its *first* visible action, assuming every activation
/// lands back-to-back at the tRC floor.
///
/// * Alert Back-Off (every non-disabled policy): a row counter reaches
///   `NBO` no earlier than `(NBO - 1) x tRC`.
/// * ACB-RFM: a bank reaches the Bank-Activation threshold no earlier than
///   `(BAT - 1) x tRC`.
/// * TPRAC: the first TB-RFM deadline is one TB-Window from tick 0, and
///   the first Targeted Refresh lands at the `n`-th REF (`n x tREFI`).
/// * PRFM: the first periodic RFM is due `every_trefi x tREFI` from tick 0.
/// * PARA: every activation may draw an RFM, so the horizon is zero (such
///   cells must run cold).
///
/// Every horizon is additionally capped at `tREFW`, where the per-row
/// counter-reset schedules of different configurations first disagree.
#[must_use]
pub fn fork_horizon(device: &DramDeviceConfig) -> u64 {
    let t = &device.timing;
    let prac = &device.prac;
    let acts = |count: u32| u64::from(count.saturating_sub(1)).saturating_mul(t.t_rc);
    let alert = acts(prac.back_off_threshold);
    let policy_horizon = match &prac.policy {
        MitigationPolicy::Disabled => u64::MAX,
        MitigationPolicy::AboOnly => alert,
        MitigationPolicy::AboPlusAcbRfm => alert.min(acts(prac.bank_activation_threshold)),
        MitigationPolicy::Tprac(tprac) => {
            let tref = match device.tref_every_n_refreshes {
                Some(n) if n > 0 => u64::from(n).saturating_mul(t.t_refi),
                _ => u64::MAX,
            };
            alert.min(tprac.tb_window_ticks).min(tref)
        }
        MitigationPolicy::PeriodicRfm { every_trefi } => {
            alert.min(u64::from((*every_trefi).max(1)).saturating_mul(t.t_refi))
        }
        MitigationPolicy::Para { .. } => 0,
    };
    policy_horizon.min(t.t_refw)
}

/// What [`SystemSimulation::run_until`] produced: either the run ended
/// (completion or tick cap) before the pause bound, or it paused there.
#[derive(Debug)]
pub enum PrefixOutcome {
    /// The run finished before reaching the pause bound.
    Finished(SystemResult),
    /// The run paused at the bound with its full state captured.
    Paused(PausedSimulation),
}

impl PrefixOutcome {
    /// Unwraps the finished result.
    ///
    /// # Panics
    ///
    /// Panics when the run paused instead — used by the unbounded run paths
    /// (`pause_at: None`), which can never pause.
    #[must_use]
    pub fn expect_finished(self, context: &str) -> SystemResult {
        match self {
            PrefixOutcome::Finished(result) => result,
            PrefixOutcome::Paused(paused) => {
                panic!(
                    "{context}: run unexpectedly paused at tick {}",
                    paused.now()
                )
            }
        }
    }

    /// The paused simulation, if the run paused.
    #[must_use]
    pub fn paused(self) -> Option<PausedSimulation> {
        match self {
            PrefixOutcome::Finished(_) => None,
            PrefixOutcome::Paused(paused) => Some(paused),
        }
    }
}

/// A simulation paused at a tick boundary: the complete system state plus
/// the bits of engine-loop state (current tick, un-forwarded request
/// backlog) needed to continue exactly where the run left off.
///
/// The event wheel (including its per-channel slots) and the per-channel
/// due mask are *not* captured: both are derived state that the event
/// engine's main loop rebuilds on its first iteration — the resumed run
/// starts with every channel due, which over-polls harmlessly and
/// converges to the exact fired set after one jump.
///
/// Cloning ([`PausedSimulation::fork`]) deep-copies everything, so one
/// captured prefix can seed arbitrarily many divergent continuations.
#[derive(Debug, Clone)]
pub struct PausedSimulation {
    sim: SystemSimulation,
    now: u64,
    backlog: Vec<BacklogEntry>,
}

impl PausedSimulation {
    pub(crate) fn new(sim: SystemSimulation, now: u64, backlog: Vec<BacklogEntry>) -> Self {
        Self { sim, now, backlog }
    }

    /// The tick the simulation paused at: ticks `[0, now)` are settled.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The paused system state (read-only).
    #[must_use]
    pub fn simulation(&self) -> &SystemSimulation {
        &self.sim
    }

    /// Deep-copies the paused state — the fork primitive.  The original
    /// stays paused and can keep seeding further forks.
    #[must_use]
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// `true` while no mitigation action has fired anywhere in the system:
    /// no RFM of any kind, no Alert assertion, no PRAC counter reset.
    ///
    /// This is the runtime guard behind
    /// [`PausedSimulation::refit_mitigation`]: a mitigation-free prefix is
    /// policy-independent by construction, so re-deriving the
    /// policy-dependent components from a different configuration cannot
    /// diverge from that configuration's cold run.
    #[must_use]
    pub fn is_mitigation_free(&self) -> bool {
        let controller = self.sim.memory().aggregated_controller_stats();
        let dram = self.sim.memory().aggregated_dram_stats();
        controller.total_rfms() == 0
            && dram.alerts_asserted == 0
            && dram.counter_resets == 0
            && dram.rows_mitigated_by_tref == 0
    }

    /// Re-targets the fork at a different mitigation configuration: the
    /// per-channel engines, ABO responders and device-side PRAC parameters
    /// are rebuilt from `prac` exactly as a cold
    /// [`crate::subsystem::MemorySubsystem::new`] derives them, while all
    /// accumulated state (pipelines, caches, queues, bank counters) carries
    /// over.
    ///
    /// # Panics
    ///
    /// Panics when the prefix is not mitigation-free
    /// ([`PausedSimulation::is_mitigation_free`]) — the caller must check
    /// first and fall back to a cold run.
    pub fn refit_mitigation(&mut self, prac: &PracConfig, tref_every_n_refreshes: Option<u32>) {
        assert!(
            self.is_mitigation_free(),
            "refusing to refit a prefix that already mitigated (fork would \
             diverge from a cold run)"
        );
        self.sim
            .memory_mut()
            .refit_mitigation(prac, tref_every_n_refreshes);
    }

    /// Resumes the paused run to completion (or the tick cap) with the
    /// simulation's configured engine, returning a result bit-identical to
    /// the uninterrupted run.
    #[must_use]
    pub fn resume(self) -> SystemResult {
        self.resume_until(None)
            .expect_finished("resume without a pause bound")
    }

    /// Resumes and pauses again at `pause_at` (when given) — supports
    /// multi-level prefix sharing.
    pub fn resume_until(self, pause_at: Option<u64>) -> PrefixOutcome {
        use crate::event::EngineKind;
        match self.sim.engine() {
            EngineKind::Tick => self.sim.run_ticked_from(self.now, self.backlog, pause_at),
            EngineKind::Event => self.sim.run_event_from(self.now, self.backlog, pause_at),
        }
    }
}

#[cfg(test)]
mod tests {
    use cpu_sim::config::CpuConfig;
    use cpu_sim::trace::{Trace, TraceOp};
    use dram_sim::device::DramDeviceConfig;
    use memctrl::controller::ControllerConfig;
    use prac_core::config::{MitigationPolicy, PracConfig};

    use crate::event::EngineKind;
    use crate::system::{SystemConfig, SystemSimulation};

    fn memory_trace(base: u64, lines: u64) -> Trace {
        let ops = (0..lines)
            .flat_map(|i| [TraceOp::Load(base + i * 64), TraceOp::Compute(9)])
            .collect();
        Trace::new("mem", ops)
    }

    fn tiny_system(engine: EngineKind, prac: PracConfig) -> SystemSimulation {
        let traces = vec![
            memory_trace(0x1_0000_0000, 2048),
            memory_trace(0x2_0000_0000, 2048),
        ];
        let mut cpu = CpuConfig::tiny_for_tests();
        cpu.cores = traces.len() as u32;
        let device = DramDeviceConfig {
            organization: dram_sim::org::DramOrganization::ddr5_32gb_quad_rank(),
            timing: dram_sim::timing::DramTimingParams::ddr5_8000b(),
            prac,
            queue_kind: prac_core::queue::QueueKind::SingleEntryFrequency,
            tref_every_n_refreshes: None,
        };
        let config = SystemConfig {
            cpu,
            device,
            controller: ControllerConfig::default(),
            instructions_per_core: 3_000,
            max_ticks: 50_000_000,
            engine,
            sim_threads: 1,
        };
        SystemSimulation::new(config, traces)
    }

    fn benign_prac() -> PracConfig {
        PracConfig::builder().rowhammer_threshold(1024).build()
    }

    #[test]
    fn pause_resume_is_bit_identical_on_both_engines() {
        for engine in [EngineKind::Tick, EngineKind::Event] {
            let cold = tiny_system(engine, benign_prac()).run();
            assert!(cold.completed);
            let late = cold.elapsed_ticks.saturating_sub(2).max(1);
            for pause in [1, 137, 10_000, late] {
                let paused = tiny_system(engine, benign_prac())
                    .run_until(pause)
                    .paused()
                    .unwrap_or_else(|| panic!("{engine:?} finished before tick {pause}"));
                assert!(paused.now() <= pause);
                let warm = paused.resume();
                assert_eq!(cold, warm, "{engine:?} diverged after pausing at {pause}");
            }
        }
    }

    #[test]
    fn forks_of_one_prefix_are_independent_and_identical() {
        let cold = tiny_system(EngineKind::Event, benign_prac()).run();
        let paused = tiny_system(EngineKind::Event, benign_prac())
            .run_until(cold.elapsed_ticks / 2)
            .paused()
            .expect("run outlives its own midpoint");
        let a = paused.fork().resume();
        let b = paused.fork().resume();
        assert_eq!(a, cold);
        assert_eq!(b, cold);
    }

    #[test]
    fn nested_pauses_compose() {
        let cold = tiny_system(EngineKind::Event, benign_prac()).run();
        let first = tiny_system(EngineKind::Event, benign_prac())
            .run_until(cold.elapsed_ticks / 3)
            .paused()
            .expect("outlives its first third");
        let second = first
            .resume_until(Some(2 * cold.elapsed_ticks / 3))
            .paused()
            .expect("outlives its second third");
        assert_eq!(second.resume(), cold);
    }

    #[test]
    fn pause_past_the_end_just_finishes() {
        let outcome = tiny_system(EngineKind::Event, benign_prac()).run_until(u64::MAX - 1);
        let result = outcome.expect_finished("run ends before u64::MAX");
        assert!(result.completed);
    }

    #[test]
    fn refit_from_disabled_prefix_matches_cold_protected_run() {
        // The campaign fork path: simulate the prefix under the
        // mitigation-free baseline, refit each fork to its protected
        // configuration, and require bit-identity with the cold run.
        let disabled = PracConfig::builder()
            .rowhammer_threshold(1024)
            .policy(MitigationPolicy::Disabled)
            .build();
        let protected = benign_prac();
        assert_ne!(disabled.policy, protected.policy);
        for engine in [EngineKind::Tick, EngineKind::Event] {
            let cold = tiny_system(engine, protected.clone()).run();
            let paused = tiny_system(engine, disabled.clone())
                .run_until(5_000)
                .paused()
                .expect("outlives tick 5000");
            assert!(paused.is_mitigation_free());
            let mut fork = paused.fork();
            fork.refit_mitigation(&protected, None);
            assert_eq!(fork.resume(), cold, "{engine:?} refit diverged");
        }
    }
}
