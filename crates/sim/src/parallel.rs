//! A work-stealing parallel-map used to sweep experiments concurrently.
//!
//! The campaign engine and the bench harness run many independent
//! (workload × configuration) simulations; [`parallel_map`] fans them out
//! over a work-stealing thread pool, preserving input order in the output,
//! and [`parallel_map_streaming`] does the same for inputs that arrive
//! lazily from an iterator while the workers are already running.
//!
//! Each worker owns a deque (pre-loaded with a contiguous chunk of the input
//! by `parallel_map`; empty under the streaming variant); when a worker
//! drains its own deque it steals from the shared injector and then from the
//! other workers, so long-running scenarios at one end of the input cannot
//! serialise the sweep.  If a worker panics, the original panic payload is
//! re-raised on the calling thread (not a generic "a scoped thread panicked"
//! message), and the remaining workers stop picking up new tasks.
//!
//! # Shutdown protocol
//!
//! With a live producer ([`parallel_map_streaming`]), a worker may only exit
//! when the producer has finished feeding tasks *and* every produced task
//! has completed (or a panic aborted the run).  An "every queue looked
//! empty" scan is **not** a valid exit condition there: a task pushed into
//! the injector just after the scan would be silently dropped, and the
//! result assembly would report a missing slot.  The completion counter
//! closes that race — idle workers re-scan (with a short nap between scans)
//! until the ledger balances, draining any late-pushed injector work before
//! shutting down.  [`parallel_map`] pre-loads every task before the workers
//! start and never re-enqueues, so there an empty scan *is* proof of
//! completion and drained workers exit immediately.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

/// Shared coordination state of one pool run.
struct PoolState<R> {
    /// Results by input index; slots are reserved by the producer before the
    /// corresponding task becomes visible to workers.
    results: Mutex<Vec<Option<R>>>,
    /// First panic payload observed in a worker.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set on panic: workers stop picking up new tasks.
    aborted: AtomicBool,
    /// Tasks made visible to the pool so far.
    produced: AtomicUsize,
    /// Tasks fully executed so far.
    completed: AtomicUsize,
    /// Whether the producer is done feeding tasks.
    producer_done: AtomicBool,
}

impl<R> PoolState<R> {
    fn new() -> Self {
        Self {
            results: Mutex::new(Vec::new()),
            panic_payload: Mutex::new(None),
            aborted: AtomicBool::new(false),
            produced: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            producer_done: AtomicBool::new(false),
        }
    }
}

/// One worker's main loop: pop from the local deque, then the injector, then
/// steal.
///
/// `live_producer` selects the exit condition.  With a live producer
/// (streaming), a worker may only exit once the producer is done *and* the
/// task ledger balances — an "every queue looked empty" scan could race a
/// late injector push and drop it.  Without one (`parallel_map`: every task
/// is visible before the workers start and none is ever re-enqueued), an
/// empty scan proves the remaining work is already owned by other workers,
/// so drained workers exit immediately instead of idling until the slowest
/// task finishes.
fn worker_loop<T, R, F>(
    local: &Worker<(usize, T)>,
    injector: &Injector<(usize, T)>,
    stealers: &[Stealer<(usize, T)>],
    state: &PoolState<R>,
    live_producer: bool,
    f: &F,
) where
    F: Fn(&T) -> R + Send + Sync,
{
    while !state.aborted.load(Ordering::Relaxed) {
        // Own deque first, then the injector, then steal from the other
        // workers' deques.  `Steal::Retry` signals a race, not emptiness —
        // per the crossbeam contract the scan must repeat until every source
        // reports `Empty`.
        let task = local.pop().or_else(|| loop {
            let mut contended = false;
            let steals =
                std::iter::once(injector.steal()).chain(stealers.iter().map(Stealer::steal));
            for steal in steals {
                match steal {
                    Steal::Success(task) => return Some(task),
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
        });
        match task {
            Some((index, input)) => match catch_unwind(AssertUnwindSafe(|| f(&input))) {
                Ok(output) => {
                    state.results.lock()[index] = Some(output);
                    state.completed.fetch_add(1, Ordering::Release);
                }
                Err(payload) => {
                    state.panic_payload.lock().get_or_insert(payload);
                    state.aborted.store(true, Ordering::Relaxed);
                }
            },
            None => {
                if !live_producer {
                    break;
                }
                // Every queue looked empty, but the producer may still be
                // feeding (or another worker may be about to finish a task
                // it popped).  Only a balanced ledger after the producer
                // finished guarantees nothing is left to drain; until then,
                // nap briefly rather than busy-spinning against the
                // producer and the running tasks.
                if state.producer_done.load(Ordering::Acquire)
                    && state.completed.load(Ordering::Acquire)
                        == state.produced.load(Ordering::Acquire)
                {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
    }
}

/// Unwraps the pool state into ordered results, re-raising a worker panic.
fn collect<R>(state: PoolState<R>) -> Vec<R> {
    if let Some(payload) = state.panic_payload.into_inner() {
        resume_unwind(payload);
    }
    state
        .results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task produced a result"))
        .collect()
}

/// Applies `f` to every item of `inputs` using up to `workers` threads and
/// returns the results in input order.
///
/// # Panics
///
/// Re-raises the first worker panic with its **original payload**, so
/// `panic!("reason")` inside `f` surfaces as `"reason"` at the call site.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    // Pre-distribute contiguous chunks to per-worker deques for locality;
    // the injector stays empty and serves stealing (and any future top-up).
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    let injector: Injector<(usize, T)> = Injector::new();
    let chunk = n.div_ceil(workers);
    for (index, input) in inputs.into_iter().enumerate() {
        locals[(index / chunk).min(workers - 1)].push((index, input));
    }

    let state: PoolState<R> = PoolState::new();
    *state.results.lock() = (0..n).map(|_| None).collect();
    state.produced.store(n, Ordering::Release);
    state.producer_done.store(true, Ordering::Release);

    std::thread::scope(|scope| {
        for local in locals {
            let stealers = &stealers;
            let injector = &injector;
            let state = &state;
            let f = &f;
            scope.spawn(move || worker_loop(&local, injector, stealers, state, false, f));
        }
    });

    collect(state)
}

/// Like [`parallel_map`], but pulls inputs lazily from an iterator on the
/// calling thread while the workers are already running, so a slow producer
/// (scenario generation, trace decoding, I/O) overlaps with execution.
/// Results come back in production order.
///
/// Tasks are fed through the pool's injector as they arrive; the shutdown
/// protocol guarantees workers drain everything that was pushed — however
/// late — before exiting.
///
/// # Panics
///
/// Re-raises the first worker panic with its original payload.  The
/// producer stops feeding as soon as a panic is observed.
pub fn parallel_map_streaming<T, R, F, I>(inputs: I, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
    I: IntoIterator<Item = T>,
{
    let workers = workers.max(1);
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    let injector: Injector<(usize, T)> = Injector::new();
    let state: PoolState<R> = PoolState::new();

    std::thread::scope(|scope| {
        for local in locals {
            let stealers = &stealers;
            let injector = &injector;
            let state = &state;
            let f = &f;
            scope.spawn(move || worker_loop(&local, injector, stealers, state, true, f));
        }
        // Produce on the calling thread: reserve the result slot before the
        // task becomes stealable, then count it, so the ledger can only
        // balance once every visible task has executed.
        for (index, input) in inputs.into_iter().enumerate() {
            if state.aborted.load(Ordering::Relaxed) {
                break;
            }
            state.results.lock().push(None);
            injector.push((index, input));
            state.produced.fetch_add(1, Ordering::Release);
        }
        state.producer_done.store(true, Ordering::Release);
    });

    collect(state)
}

/// Applies `f` to every item of `items` in place, fanning contiguous chunks
/// out over up to `threads` scoped threads.  With one thread (or fewer than
/// two items) this degenerates to a plain sequential loop with no thread
/// machinery at all.
///
/// This is the channel-sharding primitive: the items are per-channel shards
/// that share no state, each is mutated independently, and the caller
/// merges any outputs in item order afterwards — so the observable result
/// is identical for every thread count.  Unlike [`parallel_map`] there is
/// no work stealing: one event round's shards are few and similarly sized,
/// and the per-round latency of chunked scoped spawns is what matters, not
/// imbalance resilience.
///
/// # Panics
///
/// Re-raises the first worker panic with its **original payload**, matching
/// [`parallel_map`].
pub fn parallel_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Send + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for shard in items.chunks_mut(chunk) {
            let f = &f;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                    for item in shard {
                        f(item);
                    }
                })) {
                    panic_payload.lock().get_or_insert(payload);
                }
            });
        }
    });
    if let Some(payload) = panic_payload.into_inner() {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_still_completes() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = parallel_map(vec![5], 32, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_task_durations_preserve_order() {
        // Long tasks land in the first worker's chunk; the rest must be
        // stolen and still come back in input order.
        let durations: Vec<u64> = (0..64).map(|i| if i < 4 { 20 } else { 1 }).collect();
        let out = parallel_map(durations.clone(), 8, |ms| {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            *ms
        });
        assert_eq!(out, durations);
    }

    #[test]
    fn propagates_the_original_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<u32>>(), 4, |x| {
                assert!(*x != 11, "worker payload {x}");
                *x
            })
        })
        .expect_err("a worker panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .expect("payload should be the original formatted message");
        assert_eq!(message, "worker payload 11");
    }

    /// Regression test for the shutdown race: before the completion-counter
    /// protocol, a worker exited as soon as one scan saw every queue empty.
    /// With a producer that stalls between pushes, every worker would pass
    /// that scan during the stall, exit, and the late-pushed tasks would rot
    /// in the injector (result assembly then hit an unfilled slot).  The
    /// pool must instead drain the injector however late tasks arrive.
    #[test]
    fn late_pushed_tasks_are_never_dropped() {
        let inputs = (0..24u64).inspect(|i| {
            // Stall the producer long enough that the workers' queues run
            // dry repeatedly between pushes.
            if i % 6 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        let out = parallel_map_streaming(inputs, 4, |x| x * 3);
        assert_eq!(out, (0..24u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_mutates_every_item_at_any_thread_count() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..37).collect();
            parallel_for_each_mut(&mut items, threads, |x| *x *= 2);
            assert_eq!(
                items,
                (0..37).map(|x| x * 2).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        let mut empty: Vec<u64> = Vec::new();
        parallel_for_each_mut(&mut empty, 4, |_| unreachable!());
    }

    #[test]
    fn for_each_mut_propagates_the_original_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            let mut items: Vec<u32> = (0..16).collect();
            parallel_for_each_mut(&mut items, 4, |x| {
                assert!(*x != 7, "shard payload {x}");
            });
        })
        .expect_err("a shard panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .expect("payload should be the original formatted message");
        assert_eq!(message, "shard payload 7");
    }

    #[test]
    fn streaming_with_empty_producer_returns_empty() {
        let out: Vec<u32> = parallel_map_streaming(std::iter::empty::<u32>(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn streaming_propagates_panics_and_stops_the_producer() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_streaming(0..1000u32, 2, |x| {
                assert!(*x != 3, "streaming payload {x}");
                std::thread::sleep(std::time::Duration::from_micros(50));
                *x
            })
        })
        .expect_err("a worker panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .expect("payload should be the original formatted message");
        assert_eq!(message, "streaming payload 3");
    }
}
