//! A work-stealing parallel-map used to sweep experiments concurrently.
//!
//! The campaign engine and the bench harness run many independent
//! (workload × configuration) simulations; [`parallel_map`] fans them out
//! over a work-stealing thread pool, preserving input order in the output.
//!
//! Each worker owns a deque pre-loaded with a contiguous chunk of the input;
//! when a worker drains its own deque it steals from the shared injector and
//! then from the other workers, so long-running scenarios at one end of the
//! input cannot serialise the sweep.  If a worker panics, the original panic
//! payload is re-raised on the calling thread (not a generic "a scoped thread
//! panicked" message), and the remaining workers stop picking up new tasks.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

/// Applies `f` to every item of `inputs` using up to `workers` threads and
/// returns the results in input order.
///
/// # Panics
///
/// Re-raises the first worker panic with its **original payload**, so
/// `panic!("reason")` inside `f` surfaces as `"reason"` at the call site.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    // Pre-distribute contiguous chunks to per-worker deques; the injector
    // stays empty initially and exists so future callers can top up work.
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    let injector: Injector<(usize, T)> = Injector::new();
    let chunk = n.div_ceil(workers);
    for (index, input) in inputs.into_iter().enumerate() {
        locals[(index / chunk).min(workers - 1)].push((index, input));
    }

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let aborted = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for local in locals {
            let stealers = &stealers;
            let injector = &injector;
            let results = &results;
            let panic_payload = &panic_payload;
            let aborted = &aborted;
            let f = &f;
            scope.spawn(move || {
                while !aborted.load(Ordering::Relaxed) {
                    // Own deque first, then the injector, then steal from
                    // the other workers' deques.  `Steal::Retry` signals a
                    // race, not emptiness — per the crossbeam contract the
                    // scan must repeat until every source reports `Empty`.
                    let task = local.pop().or_else(|| loop {
                        let mut contended = false;
                        let steals = std::iter::once(injector.steal())
                            .chain(stealers.iter().map(Stealer::steal));
                        for steal in steals {
                            match steal {
                                Steal::Success(task) => return Some(task),
                                Steal::Retry => contended = true,
                                Steal::Empty => {}
                            }
                        }
                        if !contended {
                            return None;
                        }
                    });
                    let Some((index, input)) = task else {
                        // All queues were empty at scan time and tasks are
                        // never re-enqueued, so the remaining work is already
                        // executing on other workers.
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(&input))) {
                        Ok(output) => results.lock()[index] = Some(output),
                        Err(payload) => {
                            panic_payload.lock().get_or_insert(payload);
                            aborted.store(true, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner() {
        resume_unwind(payload);
    }
    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_still_completes() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = parallel_map(vec![5], 32, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_task_durations_preserve_order() {
        // Long tasks land in the first worker's chunk; the rest must be
        // stolen and still come back in input order.
        let durations: Vec<u64> = (0..64).map(|i| if i < 4 { 20 } else { 1 }).collect();
        let out = parallel_map(durations.clone(), 8, |ms| {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            *ms
        });
        assert_eq!(out, durations);
    }

    #[test]
    fn propagates_the_original_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<u32>>(), 4, |x| {
                assert!(*x != 11, "worker payload {x}");
                *x
            })
        })
        .expect_err("a worker panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .expect("payload should be the original formatted message");
        assert_eq!(message, "worker payload 11");
    }
}
