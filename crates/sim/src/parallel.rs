//! A small scoped-thread helper for sweeping experiments in parallel.
//!
//! The bench harness runs many independent (workload × configuration)
//! simulations; [`parallel_map`] fans them out over a bounded number of
//! worker threads using crossbeam's scoped threads, preserving input order in
//! the output.

use crossbeam::channel;
use parking_lot::Mutex;

/// Applies `f` to every item of `inputs` using up to `workers` threads and
/// returns the results in input order.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let workers = workers.max(1);
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    for pair in inputs.into_iter().enumerate() {
        task_tx.send(pair).expect("queueing tasks cannot fail");
    }
    drop(task_tx);

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let task_rx = task_rx.clone();
            let results = &results;
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((index, input)) = task_rx.recv() {
                    let output = f(&input);
                    results.lock()[index] = Some(output);
                }
            });
        }
    })
    .expect("a worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_still_completes() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = parallel_map(vec![5], 32, |x| x * x);
        assert_eq!(out, vec![25]);
    }
}
