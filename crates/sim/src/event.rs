//! The event-driven simulation engine and its event wheel.
//!
//! The legacy [`TickEngine`] advances the whole system one DRAM clock per
//! iteration, even when every core is stalled on memory and every bank is
//! waiting out a timing constraint.  The [`EventEngine`] eliminates those
//! dead cycles: after settling a tick it asks each component for the next
//! tick at which it could possibly act — the CPU cluster reports the
//! earliest retire/issue opportunity, each channel's memory controller the
//! earliest completion, refresh, RFM-engine or demand-scheduling
//! opportunity — and registers those wake-ups with a slab-backed
//! [`EventWheel`], then jumps straight to the earliest one.
//!
//! Wake-ups are keyed by **(tick, source slot)**, with one slot per channel
//! controller: a 4-channel wheel holds the cluster, the forwarding glue and
//! four independent channel streams, so the engine polls only the channels
//! whose wake-up equals the tick it jumped to instead of all of them (see
//! `SystemSimulation::run_event_from`).
//!
//! # Cycle-exactness
//!
//! Both engines drive the *same* per-tick step function, so the event engine
//! is not an approximation: it merely skips ticks that the tick engine would
//! process as pure no-ops.  Three properties make that safe, and each is
//! guarded by the differential test suite (`tests/engine_equivalence.rs`):
//!
//! 1. **No hidden per-tick mutation.**  A tick in which no command issues,
//!    no request completes, and no core retires or issues leaves every
//!    component bit-identical (the FR-FCFS scheduler's hit-streak update is
//!    committed only when the device accepts a command for exactly this
//!    reason).
//! 2. **Complete wake-up sets.**  `Core::next_event_at` and
//!    `MemoryController::next_event_at` return a tick at or before the first
//!    tick with an effect.  Waking early is harmless (the extra tick is a
//!    no-op); waking late would diverge.
//! 3. **Explicit stall accounting.**  The only thing a skipped tick would
//!    have changed is each unfinished core's cycle counter; the engine
//!    credits those cycles in bulk, keeping IPC bit-identical.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::system::{SystemResult, SystemSimulation};

/// Who registered a wake-up with a default-shaped ([`EventWheel::new`])
/// wheel.
///
/// The engine's own wheel is built with [`EventWheel::with_slots`] and
/// addresses slots directly (fixed cluster/forwarding slots followed by one
/// slot per channel controller); this enum remains the addressing scheme
/// for three-slot wheels in tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// The CPU cluster (earliest retire or issue opportunity).
    Cluster = 0,
    /// A memory controller (completions, refresh, RFM engines, demand).
    Controller = 1,
    /// The system glue: backlog requests waiting for controller queue space.
    Forwarding = 2,
}

/// Number of distinct [`EventSource`]s.
const SOURCES: usize = 3;

/// Slot counts up to this many are served by a direct linear min-scan over
/// the slab, with no heap index at all.  The engine's three sources fit
/// comfortably; a scan over a handful of slots beats paying heap churn on
/// every re-registration.
const LINEAR_SLOTS_MAX: usize = 8;

/// One wake-up slot in the wheel's slab: the armed tick (if any) and the
/// generation that invalidates older heap-index entries.
#[derive(Debug, Clone, Copy, Default)]
struct WheelSlot {
    armed_at: Option<u64>,
    generation: u64,
}

/// A monotonic slab-backed event wheel holding one pending wake-up per
/// source.
///
/// The slab (`slots`) is the single source of truth: re-registering a source
/// overwrites its slot in place.  Small wheels (up to `LINEAR_SLOTS_MAX` (8)
/// slots — including the engine's three [`EventSource`]s) answer
/// [`EventWheel::next_after`] with a branch-predictable linear min-scan and
/// never touch a heap.  Larger wheels (built with [`EventWheel::with_slots`])
/// keep a lazy binary-heap *index* over the slab: stale entries are
/// invalidated by the per-slot generation and discarded on pop, and a
/// compaction pass rebuilds the heap from the slab whenever the stale
/// backlog exceeds [`EventWheel::occupancy_bound`], so occupancy stays
/// bounded by the live slot count regardless of re-registration pattern.
///
/// Time never moves backwards: the wheel panics in debug builds if a
/// wake-up is registered at or before the last tick it handed out.
///
/// The wheel is `Clone` for the checkpoint/fork contract, but note that it
/// is *derived* state: a forked run rebuilds its wheel from component
/// wake-ups on the first loop iteration, so carrying one across a fork is
/// never required for correctness.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// The slab: current wake-up per slot (the truth).
    slots: Vec<WheelSlot>,
    /// Lazy min-heap index of `(tick, slot, generation)` entries; empty and
    /// unused when the slot count is within [`LINEAR_SLOTS_MAX`].
    heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// The last tick returned by [`EventWheel::next_after`].
    horizon: u64,
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// Creates an empty wheel at tick 0 with one slot per [`EventSource`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_slots(SOURCES)
    }

    /// Creates an empty wheel at tick 0 with `slots` generic slots,
    /// addressed via [`EventWheel::reregister_slot`].
    #[must_use]
    pub fn with_slots(slots: usize) -> Self {
        Self {
            slots: vec![WheelSlot::default(); slots],
            heap: BinaryHeap::new(),
            horizon: 0,
        }
    }

    /// Number of slots (live components) the wheel tracks.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Registers (or replaces) the wake-up of `source`; `None` disarms it.
    pub fn reregister(&mut self, source: EventSource, tick: Option<u64>) {
        self.reregister_slot(source as usize, tick);
    }

    /// Registers (or replaces) the wake-up of slot `slot`; `None` disarms
    /// it.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range, and in debug builds when `tick`
    /// is at or before the wheel's horizon.
    pub fn reregister_slot(&mut self, slot: usize, tick: Option<u64>) {
        let entry = &mut self.slots[slot];
        entry.generation += 1;
        entry.armed_at = tick;
        if let Some(tick) = tick {
            debug_assert!(
                tick > self.horizon,
                "wake-up for slot {slot} at {tick} is not after the horizon {}",
                self.horizon
            );
            if self.slots.len() > LINEAR_SLOTS_MAX {
                let generation = self.slots[slot].generation;
                self.heap.push(Reverse((
                    tick,
                    u32::try_from(slot).expect("slot count fits in u32"),
                    generation,
                )));
                self.maybe_compact();
            }
        }
    }

    /// Returns the earliest armed wake-up strictly after `now`, or `None`
    /// when every source is disarmed.  Advances the wheel's horizon.
    pub fn next_after(&mut self, now: u64) -> Option<u64> {
        if self.slots.len() <= LINEAR_SLOTS_MAX {
            // Slab scan: no heap, no pops, no stale entries to launder.
            let mut min: Option<u64> = None;
            for slot in &self.slots {
                if let Some(tick) = slot.armed_at {
                    if tick > now && min.is_none_or(|m| tick < m) {
                        min = Some(tick);
                    }
                }
            }
            if let Some(tick) = min {
                self.horizon = tick;
            }
            return min;
        }
        while let Some(Reverse((tick, slot, generation))) = self.heap.peek().copied() {
            let entry = self.slots[slot as usize];
            if generation != entry.generation || entry.armed_at.is_none() || tick <= now {
                self.heap.pop();
                continue;
            }
            self.horizon = tick;
            return Some(tick);
        }
        None
    }

    /// The tick slot `slot` is currently armed at, or `None` when the slot
    /// is disarmed.  The engine uses this to decide which channels a jump
    /// lands on: a channel is polled exactly when its slot is armed at the
    /// tick the wheel handed out.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    #[must_use]
    pub fn armed_at(&self, slot: usize) -> Option<u64> {
        self.slots[slot].armed_at
    }

    /// Number of live (non-stale) wake-ups currently armed.
    #[must_use]
    pub fn armed_count(&self) -> usize {
        self.slots.iter().filter(|s| s.armed_at.is_some()).count()
    }

    /// Number of entries resident in the wheel's heap index (live + stale).
    ///
    /// Always 0 for linear-scan wheels; for heap-indexed wheels this is the
    /// quantity the compaction guard keeps below
    /// [`EventWheel::occupancy_bound`].
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.heap.len()
    }

    /// Upper bound the compaction guard enforces on
    /// [`EventWheel::occupancy`]: re-registration patterns that bury stale
    /// entries under live ones (the unbounded-growth failure mode of pure
    /// lazy deletion) trigger a rebuild of the heap from the slab once the
    /// index exceeds twice the slot count (plus slack for tiny wheels).
    #[must_use]
    pub fn occupancy_bound(&self) -> usize {
        2 * self.slots.len() + 8
    }

    /// Rebuilds the heap index from the slab when lazily-deleted entries
    /// have accumulated past [`EventWheel::occupancy_bound`].
    fn maybe_compact(&mut self) {
        if self.heap.len() <= self.occupancy_bound() {
            return;
        }
        self.heap.clear();
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(tick) = entry.armed_at {
                self.heap
                    .push(Reverse((tick, slot as u32, entry.generation)));
            }
        }
    }
}

/// A strategy for driving a [`SystemSimulation`] to completion.
///
/// Both implementations execute the identical per-tick step; they differ
/// only in which ticks they bother to visit.  That is what makes them safe
/// to swap behind a configuration flag and to diff against each other.
pub trait SimulationEngine: std::fmt::Debug {
    /// Short engine name (`"tick"` / `"event"`), used in logs and the CLI.
    fn name(&self) -> &'static str;

    /// Consumes the simulation and runs it to completion (or the tick cap).
    fn run(&self, sim: SystemSimulation) -> SystemResult;
}

/// The legacy engine: one DRAM clock per loop iteration.
#[derive(Debug, Default, Clone, Copy)]
pub struct TickEngine;

impl SimulationEngine for TickEngine {
    fn name(&self) -> &'static str {
        "tick"
    }

    fn run(&self, sim: SystemSimulation) -> SystemResult {
        sim.run_ticked()
    }
}

/// The event-driven engine: jumps straight to the earliest pending event.
#[derive(Debug, Default, Clone, Copy)]
pub struct EventEngine;

impl SimulationEngine for EventEngine {
    fn name(&self) -> &'static str {
        "event"
    }

    fn run(&self, sim: SystemSimulation) -> SystemResult {
        sim.run_event_driven()
    }
}

/// Which engine a [`crate::system::SystemConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// The legacy per-tick main loop.
    Tick,
    /// The event-driven engine (default; bit-identical results, fewer
    /// visited ticks).
    #[default]
    Event,
}

impl EngineKind {
    /// The engine implementation this kind selects.
    #[must_use]
    pub fn instance(self) -> &'static dyn SimulationEngine {
        match self {
            EngineKind::Tick => &TickEngine,
            EngineKind::Event => &EventEngine,
        }
    }

    /// Parses a CLI spelling (`"tick"` / `"event"`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "tick" => Some(EngineKind::Tick),
            "event" => Some(EngineKind::Event),
            _ => None,
        }
    }

    /// The CLI spelling of this kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        self.instance().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_returns_earliest_armed_wakeup() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(50));
        wheel.reregister(EventSource::Controller, Some(20));
        wheel.reregister(EventSource::Forwarding, None);
        assert_eq!(wheel.armed_count(), 2);
        assert_eq!(wheel.next_after(0), Some(20));
    }

    #[test]
    fn reregistration_replaces_previous_wakeup() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Controller, Some(20));
        wheel.reregister(EventSource::Controller, Some(400));
        assert_eq!(wheel.next_after(0), Some(400), "stale entry must be gone");
        wheel.reregister(EventSource::Controller, None);
        assert_eq!(wheel.next_after(400), None);
    }

    #[test]
    fn entries_at_or_before_now_are_consumed() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(10));
        wheel.reregister(EventSource::Controller, Some(30));
        assert_eq!(wheel.next_after(10), Some(30));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not after the horizon")]
    fn wheel_rejects_wakeups_behind_the_horizon() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(100));
        assert_eq!(wheel.next_after(0), Some(100));
        wheel.reregister(EventSource::Controller, Some(99));
    }

    #[test]
    fn engine_wheel_never_builds_a_heap_index() {
        // The three-source wheel the engines use runs in linear-scan mode:
        // re-registration churn must leave no resident heap entries at all.
        let mut wheel = EventWheel::new();
        for t in 0..10_000u64 {
            wheel.reregister(EventSource::Cluster, Some(t + 1));
            wheel.reregister(EventSource::Controller, Some(t + 2));
            wheel.reregister(EventSource::Forwarding, Some(t + 3));
            assert_eq!(wheel.next_after(t), Some(t + 1));
        }
        assert_eq!(wheel.occupancy(), 0);
    }

    #[test]
    fn heap_occupancy_stays_bounded_under_reregistration_churn() {
        // Pure lazy deletion grows without bound when a slot is repeatedly
        // re-registered to an *earlier* tick than a previous registration:
        // the stale later entry stays buried below the live minimum and is
        // never popped.  The compaction guard must keep the index bounded
        // relative to the live slot count on exactly that pattern.
        let slots = 64;
        let mut wheel = EventWheel::with_slots(slots);
        let mut now = 0;
        for round in 0..10_000u64 {
            let base = (round + 1) * 1_000;
            // First a far wake-up, then a near correction: the far entry
            // goes stale and would accumulate forever without compaction.
            for slot in 0..slots {
                wheel.reregister_slot(slot, Some(base + 900 + slot as u64));
                wheel.reregister_slot(slot, Some(base + 1 + slot as u64));
            }
            assert!(
                wheel.occupancy() <= wheel.occupancy_bound(),
                "round {round}: occupancy {} exceeds bound {}",
                wheel.occupancy(),
                wheel.occupancy_bound()
            );
            assert_eq!(wheel.next_after(now), Some(base + 1));
            now = base + 1;
        }
        assert_eq!(wheel.armed_count(), slots);
    }

    #[test]
    fn generic_slot_wheel_tracks_disarm_and_minimum() {
        let mut wheel = EventWheel::with_slots(32);
        for slot in 0..32 {
            wheel.reregister_slot(slot, Some(100 + slot as u64));
        }
        assert_eq!(wheel.next_after(0), Some(100));
        wheel.reregister_slot(0, None);
        assert_eq!(wheel.next_after(100), Some(101));
        wheel.reregister_slot(1, Some(500));
        assert_eq!(wheel.next_after(101), Some(102));
        assert_eq!(wheel.armed_count(), 31);
    }

    #[test]
    fn engine_kind_round_trips_through_labels() {
        for kind in [EngineKind::Tick, EngineKind::Event] {
            assert_eq!(EngineKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EngineKind::parse("warp"), None);
        assert_eq!(EngineKind::default(), EngineKind::Event);
    }
}
