//! The event-driven simulation engine and its event wheel.
//!
//! The legacy [`TickEngine`] advances the whole system one DRAM clock per
//! iteration, even when every core is stalled on memory and every bank is
//! waiting out a timing constraint.  The [`EventEngine`] eliminates those
//! dead cycles: after settling a tick it asks each component for the next
//! tick at which it could possibly act — the CPU cluster reports the
//! earliest retire/issue opportunity, the memory controller the earliest
//! completion, refresh, RFM-engine or demand-scheduling opportunity — and
//! registers those wake-ups with a binary-heap [`EventWheel`], then jumps
//! straight to the earliest one.
//!
//! # Cycle-exactness
//!
//! Both engines drive the *same* per-tick step function, so the event engine
//! is not an approximation: it merely skips ticks that the tick engine would
//! process as pure no-ops.  Three properties make that safe, and each is
//! guarded by the differential test suite (`tests/engine_equivalence.rs`):
//!
//! 1. **No hidden per-tick mutation.**  A tick in which no command issues,
//!    no request completes, and no core retires or issues leaves every
//!    component bit-identical (the FR-FCFS scheduler's hit-streak update is
//!    committed only when the device accepts a command for exactly this
//!    reason).
//! 2. **Complete wake-up sets.**  `Core::next_event_at` and
//!    `MemoryController::next_event_at` return a tick at or before the first
//!    tick with an effect.  Waking early is harmless (the extra tick is a
//!    no-op); waking late would diverge.
//! 3. **Explicit stall accounting.**  The only thing a skipped tick would
//!    have changed is each unfinished core's cycle counter; the engine
//!    credits those cycles in bulk, keeping IPC bit-identical.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::system::{SystemResult, SystemSimulation};

/// Who registered a wake-up with the [`EventWheel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// The CPU cluster (earliest retire or issue opportunity).
    Cluster = 0,
    /// The memory controller (completions, refresh, RFM engines, demand).
    Controller = 1,
    /// The system glue: backlog requests waiting for controller queue space.
    Forwarding = 2,
}

/// Number of distinct [`EventSource`]s.
const SOURCES: usize = 3;

/// A monotonic binary-heap event wheel holding one pending wake-up per
/// source.
///
/// Re-registering a source replaces its previous wake-up (stale heap entries
/// are invalidated by a per-source generation counter and discarded lazily),
/// and time never moves backwards: the wheel panics in debug builds if a
/// wake-up is registered at or before the last tick it handed out.
#[derive(Debug, Default)]
pub struct EventWheel {
    /// Min-heap of `(tick, source, generation)` entries.
    heap: BinaryHeap<Reverse<(u64, u8, u64)>>,
    /// Current generation per source; heap entries with an older generation
    /// are stale.
    generation: [u64; SOURCES],
    /// Whether each source currently has a wake-up armed.
    armed: [bool; SOURCES],
    /// The last tick returned by [`EventWheel::next_after`].
    horizon: u64,
}

impl EventWheel {
    /// Creates an empty wheel at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the wake-up of `source`; `None` disarms it.
    pub fn reregister(&mut self, source: EventSource, tick: Option<u64>) {
        let slot = source as usize;
        self.generation[slot] += 1;
        self.armed[slot] = false;
        if let Some(tick) = tick {
            debug_assert!(
                tick > self.horizon,
                "wake-up for {source:?} at {tick} is not after the horizon {}",
                self.horizon
            );
            self.armed[slot] = true;
            self.heap
                .push(Reverse((tick, source as u8, self.generation[slot])));
        }
    }

    /// Returns the earliest armed wake-up strictly after `now`, or `None`
    /// when every source is disarmed.  Advances the wheel's horizon.
    pub fn next_after(&mut self, now: u64) -> Option<u64> {
        while let Some(Reverse((tick, source, generation))) = self.heap.peek().copied() {
            let slot = source as usize;
            if generation != self.generation[slot] || !self.armed[slot] || tick <= now {
                self.heap.pop();
                continue;
            }
            self.horizon = tick;
            return Some(tick);
        }
        None
    }

    /// Number of live (non-stale) wake-ups currently armed.
    #[must_use]
    pub fn armed_count(&self) -> usize {
        self.armed.iter().filter(|&&a| a).count()
    }
}

/// A strategy for driving a [`SystemSimulation`] to completion.
///
/// Both implementations execute the identical per-tick step; they differ
/// only in which ticks they bother to visit.  That is what makes them safe
/// to swap behind a configuration flag and to diff against each other.
pub trait SimulationEngine: std::fmt::Debug {
    /// Short engine name (`"tick"` / `"event"`), used in logs and the CLI.
    fn name(&self) -> &'static str;

    /// Consumes the simulation and runs it to completion (or the tick cap).
    fn run(&self, sim: SystemSimulation) -> SystemResult;
}

/// The legacy engine: one DRAM clock per loop iteration.
#[derive(Debug, Default, Clone, Copy)]
pub struct TickEngine;

impl SimulationEngine for TickEngine {
    fn name(&self) -> &'static str {
        "tick"
    }

    fn run(&self, sim: SystemSimulation) -> SystemResult {
        sim.run_ticked()
    }
}

/// The event-driven engine: jumps straight to the earliest pending event.
#[derive(Debug, Default, Clone, Copy)]
pub struct EventEngine;

impl SimulationEngine for EventEngine {
    fn name(&self) -> &'static str {
        "event"
    }

    fn run(&self, sim: SystemSimulation) -> SystemResult {
        sim.run_event_driven()
    }
}

/// Which engine a [`crate::system::SystemConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// The legacy per-tick main loop.
    Tick,
    /// The event-driven engine (default; bit-identical results, fewer
    /// visited ticks).
    #[default]
    Event,
}

impl EngineKind {
    /// The engine implementation this kind selects.
    #[must_use]
    pub fn instance(self) -> &'static dyn SimulationEngine {
        match self {
            EngineKind::Tick => &TickEngine,
            EngineKind::Event => &EventEngine,
        }
    }

    /// Parses a CLI spelling (`"tick"` / `"event"`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "tick" => Some(EngineKind::Tick),
            "event" => Some(EngineKind::Event),
            _ => None,
        }
    }

    /// The CLI spelling of this kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        self.instance().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_returns_earliest_armed_wakeup() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(50));
        wheel.reregister(EventSource::Controller, Some(20));
        wheel.reregister(EventSource::Forwarding, None);
        assert_eq!(wheel.armed_count(), 2);
        assert_eq!(wheel.next_after(0), Some(20));
    }

    #[test]
    fn reregistration_replaces_previous_wakeup() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Controller, Some(20));
        wheel.reregister(EventSource::Controller, Some(400));
        assert_eq!(wheel.next_after(0), Some(400), "stale entry must be gone");
        wheel.reregister(EventSource::Controller, None);
        assert_eq!(wheel.next_after(400), None);
    }

    #[test]
    fn entries_at_or_before_now_are_consumed() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(10));
        wheel.reregister(EventSource::Controller, Some(30));
        assert_eq!(wheel.next_after(10), Some(30));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not after the horizon")]
    fn wheel_rejects_wakeups_behind_the_horizon() {
        let mut wheel = EventWheel::new();
        wheel.reregister(EventSource::Cluster, Some(100));
        assert_eq!(wheel.next_after(0), Some(100));
        wheel.reregister(EventSource::Controller, Some(99));
    }

    #[test]
    fn engine_kind_round_trips_through_labels() {
        for kind in [EngineKind::Tick, EngineKind::Event] {
            assert_eq!(EngineKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EngineKind::parse("warp"), None);
        assert_eq!(EngineKind::default(), EngineKind::Event);
    }
}
