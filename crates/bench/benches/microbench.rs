//! Criterion micro-benchmarks for the hot data structures and kernels of the
//! simulation stack: mitigation-queue updates, DRAM command issue, address
//! mapping, scheduler picks, the analytical TB-Window solver and the AES
//! T-table victim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_sim::command::DramCommand;
use dram_sim::device::{DramDevice, DramDeviceConfig};
use dram_sim::org::DramAddress;
use memctrl::mapping::{AddressMapping, BankStripedMapping, MopMapping};
use prac_core::config::PracConfig;
use prac_core::queue::{MitigationQueue, SingleEntryQueue};
use prac_core::security::{CounterResetPolicy, SecurityAnalysis};
use prac_core::timing::DramTimingSummary;
use pracleak::aes::Aes128TTable;

fn bench_mitigation_queue(c: &mut Criterion) {
    c.bench_function("single_entry_queue_observe_1000", |b| {
        b.iter(|| {
            let mut queue = SingleEntryQueue::new();
            for i in 0u32..1000 {
                queue.observe_activation(black_box(i % 97), black_box(i));
            }
            black_box(queue.pop_for_mitigation())
        });
    });
}

fn bench_dram_activate_precharge(c: &mut Criterion) {
    let prac = PracConfig::builder().rowhammer_threshold(1 << 20).build();
    let config = DramDeviceConfig {
        prac,
        ..DramDeviceConfig::paper_default()
    };
    c.bench_function("dram_activate_precharge_cycle_x100", |b| {
        b.iter(|| {
            let mut device = DramDevice::new(config.clone());
            let org = device.config().organization;
            let timing = device.config().timing;
            let mut now = 0u64;
            for i in 0..100u32 {
                let addr = DramAddress::new(&org, 0, 0, 0, i % 1024, 0);
                device.issue(DramCommand::Activate(addr), now).unwrap();
                now += timing.t_ras;
                device.issue(DramCommand::Precharge(addr), now).unwrap();
                now += timing.t_rc - timing.t_ras;
            }
            black_box(device.stats().activations)
        });
    });
}

fn bench_address_mapping(c: &mut Criterion) {
    let org = dram_sim::org::DramOrganization::ddr5_32gb_quad_rank();
    let mop = MopMapping::new(org);
    let striped = BankStripedMapping::new(org);
    c.bench_function("mop_mapping_decode_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc ^= mop.decode(black_box(i * 4096 + 64)).row as u64;
            }
            black_box(acc)
        });
    });
    c.bench_function("bank_striped_decode_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc ^= striped.decode(black_box(i * 4096 + 64)).row as u64;
            }
            black_box(acc)
        });
    });
    // Channel decode adds only shift/mask work on top of the 1-channel path.
    let striped4 = BankStripedMapping::new(org.with_channels(4));
    c.bench_function("bank_striped_4ch_decode_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let d = striped4.decode(black_box(i * 4096 + 64));
                acc ^= u64::from(d.row) ^ (u64::from(d.channel) << 32);
            }
            black_box(acc)
        });
    });
}

/// Old (seed) heap-allocating field extraction, kept here verbatim as the
/// baseline for the allocation-free rewrite in `memctrl::mapping`.
fn extract_fields_vec(mut index: u64, widths: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(widths.len());
    for &w in widths {
        let mask = (1u64 << w) - 1;
        out.push((index & mask) as u32);
        index >>= w;
    }
    out
}

fn pack_fields_vec(fields: &[u32], widths: &[u32]) -> u64 {
    let mut out = 0u64;
    let mut shift = 0u32;
    for (&f, &w) in fields.iter().zip(widths) {
        out |= u64::from(f) << shift;
        shift += w;
    }
    out
}

/// Direct old-vs-new comparison of the per-request field split/pack kernel:
/// the frozen seed implementation above against the shipped allocation-free
/// kernels (`memctrl::mapping::{extract_fields, pack_fields}`, exported
/// `#[doc(hidden)]` precisely so this bench cannot drift from real code).
fn bench_field_packing(c: &mut Criterion) {
    use memctrl::mapping::{extract_fields, pack_fields};
    const WIDTHS: [u32; 6] = [2, 3, 2, 2, 5, 17];
    c.bench_function("field_extract_pack_vec_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let fields = extract_fields_vec(black_box(i * 131 + 7), &WIDTHS);
                acc ^= pack_fields_vec(&fields, &WIDTHS);
            }
            black_box(acc)
        });
    });
    c.bench_function("field_extract_pack_array_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let fields = extract_fields(black_box(i * 131 + 7), &WIDTHS);
                acc ^= pack_fields(&fields, &WIDTHS);
            }
            black_box(acc)
        });
    });
}

fn bench_tb_window_solver(c: &mut Criterion) {
    let timing = DramTimingSummary::ddr5_8000b();
    c.bench_function("tb_window_solver_nrh1024", |b| {
        b.iter(|| {
            let analysis = SecurityAnalysis::with_back_off_threshold(
                black_box(1024),
                &timing,
                CounterResetPolicy::ResetEveryTrefw,
            );
            black_box(analysis.solve_tb_window().unwrap().tb_window_trefi)
        });
    });
}

fn bench_aes_encrypt(c: &mut Criterion) {
    let aes = Aes128TTable::new(&[7u8; 16]);
    c.bench_function("aes_ttable_encrypt_block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(&[42u8; 16]))));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_mitigation_queue,
              bench_dram_activate_precharge,
              bench_address_mapping,
              bench_field_packing,
              bench_tb_window_solver,
              bench_aes_encrypt
}
criterion_main!(benches);
