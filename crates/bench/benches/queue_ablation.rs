//! Ablation of the in-DRAM mitigation-queue designs (the design choice called
//! out in Section 4.1): update/drain cost of the single-entry frequency queue
//! versus a FIFO and the idealised full-priority queue, plus the end-to-end
//! effect of the queue choice on how quickly a hammered row is mitigated.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dram_sim::command::DramCommand;
use dram_sim::device::{DramDevice, DramDeviceConfig};
use dram_sim::org::DramAddress;
use prac_core::config::PracConfig;
use prac_core::queue::QueueKind;

fn bench_queue_update_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_update_drain");
    for (label, kind) in [
        ("single_entry", QueueKind::SingleEntryFrequency),
        ("fifo16", QueueKind::Fifo { capacity: 16 }),
        ("priority", QueueKind::Priority),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let mut queue = kind.instantiate();
                for i in 0u32..2_000 {
                    queue.observe_activation(black_box(i % 499), black_box(i / 499 + 1));
                    if i % 75 == 0 {
                        black_box(queue.pop_for_mitigation());
                    }
                }
                black_box(queue.len())
            });
        });
    }
    group.finish();
}

fn bench_device_with_queue_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_rfm_with_queue");
    for (label, kind) in [
        ("single_entry", QueueKind::SingleEntryFrequency),
        ("fifo16", QueueKind::Fifo { capacity: 16 }),
        ("priority", QueueKind::Priority),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            let prac = PracConfig::builder().rowhammer_threshold(1 << 20).build();
            let config = DramDeviceConfig {
                prac,
                queue_kind: kind,
                ..DramDeviceConfig::paper_default()
            };
            b.iter(|| {
                let mut device = DramDevice::new(config.clone());
                let org = device.config().organization;
                let timing = device.config().timing;
                let mut now = 0u64;
                for i in 0..200u32 {
                    let addr = DramAddress::new(&org, 0, 0, 0, i % 64, 0);
                    device.issue(DramCommand::Activate(addr), now).unwrap();
                    now += timing.t_ras;
                    device.issue(DramCommand::Precharge(addr), now).unwrap();
                    now += timing.t_rc - timing.t_ras;
                    if i % 75 == 74 {
                        now = device.issue(DramCommand::RfmAllBank, now).unwrap();
                    }
                }
                black_box(device.stats().rows_mitigated_by_rfm)
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_queue_update_drain, bench_device_with_queue_kind
}
criterion_main!(benches);
