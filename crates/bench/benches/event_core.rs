//! Criterion micro-benchmarks for the event-core hot paths reshaped by the
//! data-layout pass: slab-backed event-wheel churn, the branchless
//! per-device bank min-reduce and the allocation-free FR-FCFS candidate
//! scan.  These are the CI smoke set behind the `BENCH_sim.json`
//! trajectory — `prac-bench bench sim` measures the same three kernels
//! (plus the fig10-quick wall clock) with plain wall-clock loops so the
//! appended numbers stay comparable across machines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dram_sim::command::DramCommand;
use dram_sim::device::{DramDevice, DramDeviceConfig};
use dram_sim::org::DramAddress;
use memctrl::scheduler::{FrFcfsScheduler, SchedulerCandidate};
use system_sim::event::{EventSource, EventWheel};

/// The engine's steady state: re-register the three sources, pop the next
/// wake-up.  The engine-sized wheel stays on the linear slab path and must
/// never build a heap index.
fn bench_wheel_push_pop(c: &mut Criterion) {
    c.bench_function("event_wheel_push_pop_x1000", |b| {
        let mut wheel = EventWheel::new();
        let mut now = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                wheel.reregister(EventSource::Cluster, Some(now + 3));
                wheel.reregister(EventSource::Controller, Some(now + 1));
                wheel.reregister(EventSource::Forwarding, Some(now + 2));
                now = wheel.next_after(black_box(now)).unwrap();
            }
            black_box(now)
        });
    });
    // A wheel wide enough for per-bank slots exercises the lazy-deletion
    // heap path and its compaction bound.
    c.bench_function("event_wheel_64slot_churn_x1000", |b| {
        let mut wheel = EventWheel::with_slots(64);
        let mut now = 0u64;
        b.iter(|| {
            for round in 0..1000u64 {
                let slot = (round % 64) as usize;
                wheel.reregister_slot(slot, Some(now + 1_000));
                wheel.reregister_slot(slot, Some(now + 1));
                now = wheel.next_after(black_box(now)).unwrap();
            }
            black_box(now)
        });
    });
}

/// The device-wide `next_transition_at` min-reduce over the full paper
/// geometry (128 banks), with half the banks open so both sides of the
/// branchless open/precharged select stay live.
fn bench_bank_min_reduce(c: &mut Criterion) {
    let mut device = DramDevice::new(DramDeviceConfig::paper_default());
    let org = device.config().organization;
    for bank in (0..org.total_banks()).step_by(2) {
        let addr = DramAddress {
            channel: 0,
            rank: bank / org.banks_per_rank(),
            bank_group: (bank / org.banks_per_group) % org.bank_groups,
            bank: bank % org.banks_per_group,
            row: bank,
            column: 0,
        };
        device
            .issue(DramCommand::Activate(addr), u64::from(bank) * 1_000)
            .unwrap();
    }
    c.bench_function("bank_min_reduce_128banks_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(black_box(device.next_bank_transition_at()));
            }
            black_box(acc)
        });
    });
}

/// One FR-FCFS `choose_from` pass over a queue-sized candidate iterator —
/// the per-poll cost the controller pays, with no per-call allocation.
fn bench_scheduler_scan(c: &mut Criterion) {
    let org = dram_sim::org::DramOrganization::ddr5_32gb_quad_rank();
    let template: Vec<SchedulerCandidate> = (0..64usize)
        .map(|index| SchedulerCandidate {
            queue_index: index,
            address: DramAddress {
                channel: 0,
                rank: (index as u32) % org.ranks,
                bank_group: (index as u32) % org.bank_groups,
                bank: (index as u32) % org.banks_per_group,
                row: index as u32,
                column: 0,
            },
            row_hit: index % 3 == 0,
            arrival_tick: (97 * index as u64) % 1_024,
        })
        .collect();
    let scheduler = FrFcfsScheduler::paper_default();
    c.bench_function("scheduler_scan_64cand_x100", |b| {
        b.iter(|| {
            let mut picked = 0usize;
            for _ in 0..100 {
                let chosen = scheduler
                    .choose_from(black_box(template.iter().copied()))
                    .unwrap();
                picked = picked.wrapping_add(chosen.queue_index);
            }
            black_box(picked)
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_wheel_push_pop,
              bench_bank_min_reduce,
              bench_scheduler_scan
}
criterion_main!(benches);
