//! Figure 13: normalised performance as the RowHammer threshold (NRH) varies
//! from 128 to 4096, for the insecure baselines and TPRAC with different
//! Targeted-Refresh rates.

use bench_harness::{mean_normalized, run_performance_matrix, BenchOptions};
use prac_core::tprac::TrefRate;
use system_sim::{ExperimentConfig, MitigationSetup};

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();
    let nrh_values: &[u32] = if options.full {
        &[128, 256, 512, 1024, 2048, 4096]
    } else {
        &[256, 1024, 4096]
    };

    let setups = vec![
        MitigationSetup::AboOnly,
        MitigationSetup::AboPlusAcbRfm,
        MitigationSetup::Tprac { tref_rate: TrefRate::None, counter_reset: true },
        MitigationSetup::Tprac { tref_rate: TrefRate::EveryTrefi(4), counter_reset: true },
        MitigationSetup::Tprac { tref_rate: TrefRate::EveryTrefi(1), counter_reset: true },
    ];
    let labels: Vec<String> = setups.iter().map(MitigationSetup::label).collect();

    println!(
        "Figure 13 — normalised performance vs RowHammer threshold ({} workloads)",
        suite.len()
    );
    println!();
    print!("{:<8}", "NRH");
    for label in &labels {
        print!(" {:>34}", label);
    }
    println!();

    for &nrh in nrh_values {
        let configs: Vec<(String, ExperimentConfig)> = setups
            .iter()
            .map(|setup| {
                (
                    setup.label(),
                    ExperimentConfig::new(setup.clone(), options.instructions_per_core)
                        .with_rowhammer_threshold(nrh),
                )
            })
            .collect();
        let points = run_performance_matrix(&suite, &configs, &options, 0xF16_13 ^ u64::from(nrh));
        print!("{nrh:<8}");
        for label in &labels {
            print!(" {:>34.3}", mean_normalized(&points, label));
        }
        println!();
    }

    println!();
    println!("Paper reference (Figure 13): TPRAC slowdowns of 0.6%/1.6%/3.4% at NRH = 4096/2048/");
    println!("1024, growing to 6.5%/14.1%/22.6% at 512/256/128; ABO+ACB-RFM stays cheaper but");
    println!("leaks; TREF co-design recovers part of the low-threshold loss.");
}
