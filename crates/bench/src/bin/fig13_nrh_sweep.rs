//! Figure 13: normalised performance as the RowHammer threshold varies from 128 to 4096.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig13` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig13"));
}
