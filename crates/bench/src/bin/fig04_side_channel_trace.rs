//! Figure 4: one instance of the PRACLeak side-channel attack on AES T-tables
//! (plaintext byte 0 fixed, key byte 0 = 0): attacker latency timeline, RFM
//! count, and per-row activation counts for the victim and attacker phases.

use bench_harness::BenchOptions;
use pracleak::latency::SpikeDetector;
use pracleak::side_channel::SideChannelExperiment;

fn main() {
    let options = BenchOptions::from_args();
    let mut experiment = SideChannelExperiment::paper_attack();
    if !options.full {
        experiment.nbo = 128;
        experiment.encryptions = 100;
    }

    println!(
        "Figure 4 — side-channel attack instance (p0 = 0, k0 = 0, NBO = {}, {} encryptions)",
        experiment.nbo, experiment.encryptions
    );
    let outcome = experiment.run_for_key_byte(0x00, 0x00);

    println!();
    println!("Victim-phase activation counts per T0 DRAM row:");
    for (row, count) in outcome.victim_activations.iter().enumerate() {
        println!("  row {row:>2}: {count:>5} {}", "#".repeat((*count as usize / 4).min(80)));
    }

    println!();
    println!("RFM count over time: {} RFM(s)", outcome.rfm_times_ns.len());
    for (i, t) in outcome.rfm_times_ns.iter().enumerate() {
        println!("  RFM {i}: t = {:.1} us", t / 1000.0);
    }

    println!();
    let detector = SpikeDetector::default();
    let spikes = detector.count_spikes(&outcome.attacker_latencies_ns);
    println!(
        "Attacker probe phase: {} accesses, {} latency spike(s), first spike at index {:?}",
        outcome.attacker_latencies_ns.len(),
        spikes,
        detector.first_spike(&outcome.attacker_latencies_ns)
    );
    println!(
        "Leaked row: {:?} (true top nibble of k0: {:#x}) — attacker activations to that row: {}",
        outcome.leaked_row, outcome.true_nibble, outcome.attacker_activations_to_leaked_row
    );
    println!();
    println!("Paper reference (Figure 4): the victim drives ~207 activations to Row-0; the");
    println!("attacker observes the ABO after ~49 of its own activations to Row-0, because");
    println!("victim + attacker activations to the hottest row sum to exactly NBO.");
}
