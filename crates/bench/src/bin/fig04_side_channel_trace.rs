//! Figure 4: one instance of the PRACLeak side-channel attack on AES T-tables.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig04` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig04"));
}
