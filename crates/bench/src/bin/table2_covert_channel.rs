//! Table 2: covert-channel transmission period and bitrate.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run table2` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("table2"));
}
