//! Table 2: covert-channel transmission period and bitrate for the
//! activity-based and activation-count-based channels at NBO ∈ {256, 512,
//! 1024}.

use bench_harness::BenchOptions;
use pracleak::covert::{run_covert_channel, CovertChannelKind};

fn main() {
    let options = BenchOptions::from_args();
    let symbols = if options.full { 32 } else { 8 };
    let nbos: &[u32] = if options.full { &[256, 512, 1024] } else { &[256, 512] };

    println!("Table 2 — covert-channel transmission period and bitrate ({symbols} symbols per point)");
    println!();
    println!(
        "{:<26} {:>6} {:>22} {:>18} {:>12}",
        "Type", "NBO", "Transmission (us)", "bitrate (Kbps)", "error rate"
    );
    for kind in [CovertChannelKind::ActivityBased, CovertChannelKind::ActivationCountBased] {
        for &nbo in nbos {
            let result = run_covert_channel(kind, nbo, symbols, 0xBEEF ^ u64::from(nbo));
            println!(
                "{:<26} {:>6} {:>22.1} {:>18.1} {:>11.2}%",
                format!("{kind:?}"),
                nbo,
                result.transmission_period_us,
                result.bitrate_kbps,
                result.error_rate() * 100.0
            );
        }
    }
    println!();
    println!("Paper reference (Table 2): Activity-Based 24.1/46.7/91.8 us and 41.4/21.4/10.9 Kbps;");
    println!("Activation-Count-Based 64.7/128.0/257.6 us and 123.6/70.3/38.8 Kbps, for NBO = 256/512/1024;");
    println!("error rates below 0.1%. Expected shape: periods grow ~linearly with NBO, the");
    println!("count-based channel has a longer period but a higher bitrate.");
}
