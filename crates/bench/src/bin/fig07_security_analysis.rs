//! Figure 7: worst-case activations (TMAX) vs TB-Window, and the solved TB-Window per RowHammer threshold.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig07` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig07"));
}
