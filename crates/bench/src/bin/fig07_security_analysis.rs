//! Figure 7: theoretical maximum activations to a target row (TMAX) as the
//! TB-Window varies, with and without per-row activation-counter reset at
//! every tREFW, plus the solved TB-Window per RowHammer threshold used by the
//! rest of the evaluation.

use prac_core::security::{figure7_windows, CounterResetPolicy, SecurityAnalysis};
use prac_core::timing::DramTimingSummary;

fn main() {
    let timing = DramTimingSummary::ddr5_8000b();
    println!("Figure 7 — worst-case activations to a target row (TMAX) vs TB-Window");
    println!("DDR5 32Gb chip, {} rows per bank, tRC = {} ns, tREFI = {} ns", timing.rows_per_bank, timing.t_rc_ns, timing.t_refi_ns);
    println!();
    println!(
        "{:>14} {:>26} {:>30}",
        "TB-Window", "TMAX (with counter reset)", "TMAX (without counter reset)"
    );
    let with_reset =
        SecurityAnalysis::with_back_off_threshold(4096, &timing, CounterResetPolicy::ResetEveryTrefw);
    let without_reset =
        SecurityAnalysis::with_back_off_threshold(4096, &timing, CounterResetPolicy::NoReset);
    for window in figure7_windows() {
        println!(
            "{:>9.2} tREFI {:>26} {:>30}",
            window,
            with_reset.tmax(window),
            without_reset.tmax(window)
        );
    }

    println!();
    println!("Solved TB-Window per RowHammer threshold (Equation 1: TMAX < NBO)");
    println!(
        "{:>8} {:>22} {:>22} {:>12} {:>12}",
        "NRH", "window, reset (tREFI)", "window, no-reset", "TMAX reset", "bw loss"
    );
    for nrh in [128u32, 256, 512, 1024, 2048, 4096] {
        let reset_solution = SecurityAnalysis::with_back_off_threshold(
            nrh,
            &timing,
            CounterResetPolicy::ResetEveryTrefw,
        )
        .solve_tb_window();
        let noreset_solution =
            SecurityAnalysis::with_back_off_threshold(nrh, &timing, CounterResetPolicy::NoReset)
                .solve_tb_window();
        match (reset_solution, noreset_solution) {
            (Ok(reset), Ok(noreset)) => println!(
                "{:>8} {:>22.3} {:>22.3} {:>12} {:>11.1}%",
                nrh,
                reset.tb_window_trefi,
                noreset.tb_window_trefi,
                reset.tmax,
                reset.bandwidth_loss * 100.0
            ),
            (reset, noreset) => println!("{nrh:>8} unsolvable: {reset:?} / {noreset:?}"),
        }
    }
    println!();
    println!("Paper reference points: TMAX(1 tREFI) = 572 (reset) / 736 (no reset);");
    println!("TMAX(4 tREFI) = 2138 / 3220; NRH = 1024 needs roughly one TB-RFM per 1.6 tREFI.");
}
