//! Figure 3: attacker-observed memory-access latency with and without a concurrent Alert Back-Off.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig03` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig03"));
}
