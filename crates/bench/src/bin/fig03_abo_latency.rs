//! Figure 3: attacker-observed memory-access latency in the presence and
//! absence of a concurrent Alert Back-Off, for 1, 2 and 4 RFMs per ABO.

use bench_harness::BenchOptions;
use pracleak::characterize::figure3_panels;

fn main() {
    let options = BenchOptions::from_args();
    // The paper plots a 2 ms window at NBO = 256. The quick run uses a shorter
    // window and lower threshold so several ABOs still fall inside it.
    let (nbo, window_ns) = if options.full { (256, 2_000_000.0) } else { (128, 400_000.0) };

    println!("Figure 3 — timing variation due to Alert Back-Off (NBO = {nbo}, window = {window_ns} ns)");
    println!();
    for panel in figure3_panels(nbo, window_ns) {
        let label = panel
            .prac_level
            .map_or("No ABO".to_string(), |l| format!("{} RFM(s) per ABO", l.rfms_per_alert()));
        println!("--- {label} ---");
        println!("  attacker accesses        : {}", panel.samples.len());
        println!("  ABO events               : {}", panel.abo_events);
        println!("  ABO-RFMs issued          : {}", panel.abo_rfms);
        println!("  latency spikes observed  : {}", panel.spike_count());
        println!("  mean baseline latency    : {:.0} ns", panel.mean_baseline_latency_ns);
        println!("  mean spike latency       : {:.0} ns", panel.mean_spike_latency_ns);
        // Print a compact, decimated latency timeline (the raw series is what
        // the paper plots; the decimation keeps the output readable).
        let step = (panel.samples.len() / 16).max(1);
        let timeline: Vec<String> = panel
            .samples
            .iter()
            .step_by(step)
            .map(|s| format!("{:.0}@{:.0}us", s.latency_ns, s.time_ns / 1000.0))
            .collect();
        println!("  latency timeline (ns@t)  : {}", timeline.join(" "));
        println!();
    }
    println!("Paper reference: mean spiked latencies of ~545 ns, ~976 ns and ~1669 ns for");
    println!("1, 2 and 4 RFMs per ABO, against a flat baseline when no ABO occurs.");
}
