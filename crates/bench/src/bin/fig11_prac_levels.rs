//! Figure 11: sensitivity to the PRAC level (1, 2 or 4 RFMs per Alert).
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig11` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig11"));
}
