//! Figure 11: sensitivity to the PRAC level (1, 2 or 4 RFMs per Alert
//! Back-Off) at a RowHammer threshold of 1024.  Because both ABO+ACB-RFM and
//! TPRAC eliminate ABO-RFMs, their performance is insensitive to the level.

use bench_harness::{mean_normalized, run_performance_matrix, BenchOptions};
use prac_core::config::PracLevel;
use system_sim::{ExperimentConfig, MitigationSetup};

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();

    println!(
        "Figure 11 — normalised performance vs PRAC level at NRH = 1024 ({} workloads)",
        suite.len()
    );
    println!();
    println!(
        "{:<12} {:>14} {:>18} {:>14}",
        "PRAC level", "ABO-Only", "ABO+ACB-RFM", "TPRAC"
    );

    for level in PracLevel::all() {
        let configs: Vec<(String, ExperimentConfig)> = MitigationSetup::figure10_set()
            .into_iter()
            .map(|setup| {
                (
                    setup.label(),
                    ExperimentConfig::new(setup, options.instructions_per_core).with_prac_level(level),
                )
            })
            .collect();
        let points = run_performance_matrix(&suite, &configs, &options, 0xF16_11 ^ level.rfms_per_alert() as u64);
        println!(
            "{:<12} {:>14.3} {:>18.3} {:>14.3}",
            level.to_string(),
            mean_normalized(&points, "ABO-Only"),
            mean_normalized(&points, "ABO+ACB-RFM"),
            mean_normalized(&points, "TPRAC w/o Targeted"),
        );
    }

    println!();
    println!("Paper reference (Figure 11): performance is flat across PRAC-1/2/4 — ~1.00 for");
    println!("ABO-Only, ~0.993 for ABO+ACB-RFM and ~0.966 for TPRAC — because benign workloads");
    println!("rarely trigger ABOs and the proactive schemes remove them entirely.");
}
