//! Table 5: energy overhead of TPRAC, split into mitigation (RFM) energy and
//! non-mitigation (execution-time) energy, as the RowHammer threshold varies.

use bench_harness::{run_performance_matrix, BenchOptions};
use prac_core::tprac::TrefRate;
use system_sim::{energy_overhead_for, ExperimentConfig, MitigationSetup};

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();
    let nrh_values: &[u32] = if options.full {
        &[128, 256, 512, 1024, 2048, 4096]
    } else {
        &[256, 1024, 4096]
    };
    let banks_per_rfm = 128;

    println!(
        "Table 5 — energy overhead of TPRAC ({} workloads, averaged)",
        suite.len()
    );
    println!();
    println!(
        "{:>8} {:>20} {:>28} {:>12}",
        "NRH", "Mitigation (RFM)", "Non-Mitigation (exec time)", "Total"
    );

    for &nrh in nrh_values {
        let setup = MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: true,
        };
        let configs = vec![(
            setup.label(),
            ExperimentConfig::new(setup.clone(), options.instructions_per_core)
                .with_rowhammer_threshold(nrh),
        )];
        let points = run_performance_matrix(&suite, &configs, &options, 0x7AB1E5 ^ u64::from(nrh));
        let mut mitigation = 0.0;
        let mut non_mitigation = 0.0;
        for point in &points {
            let overhead = energy_overhead_for(&point.baseline, &point.protected, banks_per_rfm);
            mitigation += overhead.mitigation;
            non_mitigation += overhead.non_mitigation;
        }
        let n = points.len().max(1) as f64;
        mitigation /= n;
        non_mitigation /= n;
        println!(
            "{:>8} {:>19.1}% {:>27.1}% {:>11.1}%",
            nrh,
            mitigation * 100.0,
            non_mitigation * 100.0,
            (mitigation + non_mitigation) * 100.0
        );
    }

    println!();
    println!("Paper reference (Table 5): total overheads of 44.3%, 26.1%, 10.4%, 7.4%, 2.6% and");
    println!("1.0% for NRH = 128, 256, 512, 1024, 2048 and 4096 — dominated by execution-time");
    println!("energy at high thresholds and by mitigation energy as TB-RFMs become frequent.");
}
