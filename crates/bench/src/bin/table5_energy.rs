//! Table 5: energy overhead of TPRAC as the RowHammer threshold varies.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run table5` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("table5"));
}
