//! Figure 9: empirical security validation of TPRAC against the side-channel attack.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig09` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig09"));
}
