//! Figure 9: empirical security validation of TPRAC — the DRAM row that
//! triggers the first RFM during the attacker's probe phase, with and without
//! the defense.  Without TPRAC the row tracks the secret key byte; with TPRAC
//! it does not (and no ABO-RFM is ever issued).

use bench_harness::BenchOptions;
use prac_core::config::MitigationPolicy;
use prac_core::security::CounterResetPolicy;
use prac_core::timing::DramTimingSummary;
use prac_core::tprac::TpracConfig;
use pracleak::side_channel::SideChannelExperiment;

fn correlation_with_truth(pairs: &[(u8, Option<usize>)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let matches = pairs
        .iter()
        .filter(|(k0, leaked)| *leaked == Some(usize::from(k0 >> 4)))
        .count();
    matches as f64 / pairs.len() as f64
}

fn main() {
    let options = BenchOptions::from_args();
    let (nbo, encryptions, step) = if options.full { (256, 200, 8) } else { (128, 100, 32) };

    let attack = SideChannelExperiment {
        nbo,
        encryptions,
        policy: MitigationPolicy::AboOnly,
        seed: 0x916,
    };
    let timing = DramTimingSummary::ddr5_8000b();
    let tprac = TpracConfig::solve_for_threshold(nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
        .expect("TB-Window solvable");
    let defended = attack.clone().with_policy(MitigationPolicy::Tprac(tprac));

    println!("Figure 9 — row triggering the first RFM for the attacker (NBO = {nbo}, {encryptions} encryptions)");
    println!();
    println!("{:>6} {:>26} {:>26}", "k0", "without defense", "with TPRAC");

    let mut undefended_pairs = Vec::new();
    let mut defended_pairs = Vec::new();
    let mut defended_abo_rfms = 0u64;
    for k0 in (0..256usize).step_by(step) {
        let k0 = k0 as u8;
        let plain = attack.run_for_key_byte(k0, 0);
        let protected = defended.run_for_key_byte(k0, 0);
        defended_abo_rfms += protected.abo_rfms;
        println!(
            "{:>6} {:>26} {:>26}",
            format!("{k0:#04x}"),
            plain.leaked_row.map_or("-".into(), |r| format!("row {r}")),
            protected.leaked_row.map_or("no spike".into(), |r| format!("row {r}"))
        );
        undefended_pairs.push((k0, plain.leaked_row));
        defended_pairs.push((k0, protected.leaked_row));
    }

    println!();
    println!(
        "Key-nibble agreement without defense: {:.0}%  (paper: strong correlation, key leaks)",
        correlation_with_truth(&undefended_pairs) * 100.0
    );
    println!(
        "Key-nibble agreement with TPRAC     : {:.0}%  (paper: no correlation, ~chance level)",
        correlation_with_truth(&defended_pairs) * 100.0
    );
    println!("ABO-RFMs issued under TPRAC          : {defended_abo_rfms} (must be 0)");
}
