//! Section 6.8: storage overhead of TPRAC compared against the alternative queue designs.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run storage` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("storage"));
}
