//! Section 6.8: storage overhead of TPRAC (the RFM-interval register and the
//! per-bank single-entry mitigation queue), compared against the alternative
//! queue designs.

use prac_core::overhead::{rfm_interval_register_bits, StorageModel};
use prac_core::queue::QueueKind;
use prac_core::timing::DramTimingSummary;

fn main() {
    let timing = DramTimingSummary::ddr5_8000b();
    let banks = 128;
    let model = StorageModel::ddr5_32gb(&timing, banks);

    println!("Section 6.8 — storage overhead");
    println!();
    let register_bits = rfm_interval_register_bits(timing.t_refw_ns / 2.0, timing.t_refi_ns / 1024.0);
    println!("RFM-interval register (controller side): {register_bits} bits (paper: 24 bits / 3 bytes)");
    println!();
    println!(
        "{:<34} {:>18} {:>20} {:>14}",
        "mitigation queue design", "bits per bank", "bits whole channel", "total bytes"
    );
    for (label, kind) in [
        ("single-entry frequency (TPRAC)", QueueKind::SingleEntryFrequency),
        ("FIFO, 4 entries", QueueKind::Fifo { capacity: 4 }),
        ("FIFO, 16 entries", QueueKind::Fifo { capacity: 16 }),
        ("idealised priority (UPRAC)", QueueKind::Priority),
    ] {
        let overhead = model.tprac_overhead(&timing, kind);
        println!(
            "{:<34} {:>18} {:>20} {:>14}",
            label,
            overhead.dram_bits_per_bank,
            overhead.dram_bits_total(),
            overhead.total_bytes()
        );
    }
    println!();
    println!("TPRAC's whole-channel cost is a few hundred bytes; the idealised full-priority");
    println!("queue it matches in security would need megabytes, which is why the single-entry");
    println!("frequency-based queue is the practical design point.");
}
