//! Figure 10: normalised performance of TPRAC versus the insecure baselines at NRH = 1024.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig10` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig10"));
}
