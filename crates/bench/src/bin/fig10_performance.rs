//! Figure 10: normalised performance of TPRAC versus the insecure baselines
//! (ABO-Only and ABO+ACB-RFM) at a RowHammer threshold of 1024, per workload
//! and averaged over the memory-intensity buckets.

use bench_harness::{print_performance_table, run_performance_matrix, BenchOptions};
use system_sim::{ExperimentConfig, MitigationSetup};

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();
    let configs: Vec<(String, ExperimentConfig)> = MitigationSetup::figure10_set()
        .into_iter()
        .map(|setup| {
            (
                setup.label(),
                ExperimentConfig::new(setup, options.instructions_per_core),
            )
        })
        .collect();
    let labels: Vec<String> = configs.iter().map(|(l, _)| l.clone()).collect();

    println!(
        "Figure 10 — normalised performance at NRH = 1024 ({} workloads, {} instructions/core, {} workers)",
        suite.len(),
        options.instructions_per_core,
        options.workers
    );
    println!("Normalisation baseline: PRAC-enabled DDR5 without the ABO protocol (no RFMs).");
    println!();

    let points = run_performance_matrix(&suite, &configs, &options, 0xF16_10);
    print_performance_table(&points, &labels);

    println!();
    println!("Paper reference (Figure 10): ABO-Only ~1.00, ABO+ACB-RFM ~0.993, TPRAC ~0.966 on");
    println!("average; memory-intensive workloads slow down by up to ~6-8% under TPRAC because");
    println!("each TB-RFM blocks all banks for 350 ns out of every ~6.2 us.");
}
