//! Figure 5: sweep of secret key byte 0 — (a) the DRAM row the victim
//! activates most after 200 encryptions, and (b) the attacker activation
//! count to the row that causes the first ABO, whose index leaks the key
//! nibble.

use bench_harness::BenchOptions;
use pracleak::side_channel::SideChannelExperiment;

fn main() {
    let options = BenchOptions::from_args();
    let (mut experiment, step) = if options.full {
        (SideChannelExperiment::paper_attack(), 4)
    } else {
        let mut quick = SideChannelExperiment::paper_attack();
        quick.nbo = 128;
        quick.encryptions = 100;
        (quick, 16)
    };
    experiment.seed = 0xF165;

    println!(
        "Figure 5 — key-byte sweep (NBO = {}, {} encryptions, k0 step = {step})",
        experiment.nbo, experiment.encryptions
    );
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>24}",
        "k0", "hot row", "leaked row", "true nibble", "correct?", "attacker ACTs to hot row"
    );

    let outcomes = experiment.sweep_key_byte(step);
    let mut correct = 0usize;
    for outcome in &outcomes {
        if outcome.nibble_recovered() {
            correct += 1;
        }
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>10} {:>24}",
            format!("{:#04x}", outcome.k0),
            outcome.hottest_victim_row().map_or("-".into(), |r| r.to_string()),
            outcome.leaked_row.map_or("-".into(), |r| r.to_string()),
            format!("{:#x}", outcome.true_nibble),
            if outcome.nibble_recovered() { "yes" } else { "no" },
            outcome.attacker_activations_to_leaked_row
        );
    }
    println!();
    println!(
        "Recovered {} / {} key nibbles ({:.1}%).",
        correct,
        outcomes.len(),
        100.0 * correct as f64 / outcomes.len() as f64
    );
    println!();
    println!("Paper reference (Figure 5): as k0 grows from 0 to 255 the hottest row walks from");
    println!("Row-0 to Row-15, and victim + attacker activations to that row always sum to NBO,");
    println!("so the attacker recovers the top 4 bits of every key byte (64 of 128 key bits).");
}
