//! Figure 5: sweep of secret key byte 0 — the leaked row index recovers the key nibble.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig05` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig05"));
}
