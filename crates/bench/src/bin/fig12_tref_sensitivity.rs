//! Figure 12: sensitivity of TPRAC to the Targeted-Refresh (TREF) rate at a
//! RowHammer threshold of 1024, grouped by benchmark suite.  More frequent
//! TREFs let TPRAC skip TB-RFMs and shrink the slowdown.

use bench_harness::{mean_normalized, mean_normalized_by_group, run_performance_matrix, BenchOptions};
use prac_core::tprac::TrefRate;
use system_sim::{ExperimentConfig, MitigationSetup};
use workloads::WorkloadGroup;

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();

    let configs: Vec<(String, ExperimentConfig)> = TrefRate::figure12_sweep()
        .into_iter()
        .map(|tref_rate| {
            let setup = MitigationSetup::Tprac {
                tref_rate,
                counter_reset: true,
            };
            (
                setup.label(),
                ExperimentConfig::new(setup, options.instructions_per_core),
            )
        })
        .collect();
    let labels: Vec<String> = configs.iter().map(|(l, _)| l.clone()).collect();

    println!(
        "Figure 12 — TPRAC performance vs Targeted-Refresh rate at NRH = 1024 ({} workloads)",
        suite.len()
    );
    println!();
    let points = run_performance_matrix(&suite, &configs, &options, 0xF16_12);

    println!(
        "{:<42} {:>16} {:>16} {:>18} {:>12}",
        "configuration", "SPEC2K6-like", "SPEC2K17-like", "CloudSuite-like", "All"
    );
    let fmt_group = |value: f64| {
        if value == 0.0 {
            // The quick suite does not cover every benchmark group; avoid
            // printing a misleading zero for groups with no workloads.
            "    n/a".to_string()
        } else {
            format!("{value:>7.3}")
        }
    };
    for label in &labels {
        println!(
            "{:<42} {:>16} {:>16} {:>18} {:>12.3}",
            label,
            fmt_group(mean_normalized_by_group(&points, label, WorkloadGroup::Spec2006Like)),
            fmt_group(mean_normalized_by_group(&points, label, WorkloadGroup::Spec2017Like)),
            fmt_group(mean_normalized_by_group(&points, label, WorkloadGroup::CloudSuiteLike)),
            mean_normalized(&points, label)
        );
    }

    println!();
    println!("Paper reference (Figure 12): slowdowns of 3.4%, 2.4%, 2.0%, 1.4% and ~0% with no");
    println!("TREF and one TREF per 4, 3, 2 and 1 tREFI respectively — each TREF mitigates the");
    println!("queue head and lets the matching TB-RFM be skipped.");
}
