//! Figure 12: sensitivity of TPRAC to the Targeted-Refresh (TREF) rate.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig12` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig12"));
}
