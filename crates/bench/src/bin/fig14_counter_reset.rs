//! Figure 14: TPRAC performance with and without per-row activation-counter
//! reset at every tREFW, as the RowHammer threshold varies.  Resetting the
//! counters shrinks the attacker's feasible pool, allows a longer TB-Window,
//! and therefore helps most at ultra-low thresholds.

use bench_harness::{mean_normalized, run_performance_matrix, BenchOptions};
use prac_core::tprac::TrefRate;
use system_sim::{ExperimentConfig, MitigationSetup};

fn main() {
    let options = BenchOptions::from_args();
    let suite = options.suite();
    let nrh_values: &[u32] = if options.full {
        &[128, 256, 512, 1024, 2048, 4096]
    } else {
        &[256, 1024, 4096]
    };

    let setups = vec![
        ("TPRAC (reset)".to_string(), true, TrefRate::None),
        ("TPRAC-NoReset".to_string(), false, TrefRate::None),
        ("TPRAC (reset) + TREF/1".to_string(), true, TrefRate::EveryTrefi(1)),
        ("TPRAC-NoReset + TREF/1".to_string(), false, TrefRate::EveryTrefi(1)),
    ];

    println!(
        "Figure 14 — TPRAC with vs without counter reset ({} workloads)",
        suite.len()
    );
    println!();
    print!("{:<8}", "NRH");
    for (label, _, _) in &setups {
        print!(" {:>26}", label);
    }
    println!();

    for &nrh in nrh_values {
        let configs: Vec<(String, ExperimentConfig)> = setups
            .iter()
            .map(|(label, counter_reset, tref_rate)| {
                let setup = MitigationSetup::Tprac {
                    tref_rate: *tref_rate,
                    counter_reset: *counter_reset,
                };
                (
                    label.clone(),
                    ExperimentConfig::new(setup, options.instructions_per_core)
                        .with_rowhammer_threshold(nrh),
                )
            })
            .collect();
        let points = run_performance_matrix(&suite, &configs, &options, 0xF16_14 ^ u64::from(nrh));
        print!("{nrh:<8}");
        for (label, _, _) in &setups {
            print!(" {:>26.3}", mean_normalized(&points, label));
        }
        println!();
    }

    println!();
    println!("Paper reference (Figure 14): at NRH >= 1024 the reset policy changes performance");
    println!("by < 1%; at NRH = 128 resetting counters every tREFW improves performance by ~3.4%");
    println!("because the no-reset worst case forces a shorter (more expensive) TB-Window.");
}
