//! Figure 14: TPRAC performance with and without per-row activation-counter reset.
//!
//! Thin wrapper over the campaign registry — equivalent to
//! `prac-bench run fig14` (plus any `--full` / `--instr` / `--workers`
//! flags, which are forwarded).

fn main() {
    std::process::exit(campaign::cli::delegate("fig14"));
}
