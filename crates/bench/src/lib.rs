//! Shared harness code for the benchmark binaries that regenerate every table
//! and figure of the paper's evaluation.
//!
//! Each `src/bin/*.rs` binary is a thin wrapper: it parses the common command
//! line (`--full` for the complete sweep, `--instr N` to override the
//! per-core instruction budget), calls into the experiment drivers of the
//! component crates, and prints the same rows/series the paper reports.
//! The heavier shared logic — running a (workload × mitigation) performance
//! matrix in parallel and aggregating it by memory-intensity bucket or
//! benchmark group — lives here so the binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use system_sim::{parallel_map, run_workload, ExperimentConfig, MitigationSetup, SystemResult};
use workloads::{full_suite, quick_suite, MemoryIntensity, WorkloadGroup, WorkloadSpec};

/// Common command-line options shared by every benchmark binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Run the full workload suite / full sweep instead of the quick subset.
    pub full: bool,
    /// Instructions per core for full-system runs.
    pub instructions_per_core: u64,
    /// Worker threads for parallel sweeps.
    pub workers: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            full: false,
            instructions_per_core: 60_000,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl BenchOptions {
    /// Parses the common flags from `std::env::args`.
    #[must_use]
    pub fn from_args() -> Self {
        let mut options = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    options.full = true;
                    options.instructions_per_core = options.instructions_per_core.max(150_000);
                }
                "--instr" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.instructions_per_core = value;
                        i += 1;
                    }
                }
                "--workers" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.workers = value;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// The workload suite selected by the options.
    #[must_use]
    pub fn suite(&self) -> Vec<WorkloadSpec> {
        if self.full {
            full_suite()
        } else {
            quick_suite()
        }
    }
}

/// One cell of a performance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Workload name.
    pub workload: String,
    /// Memory-intensity bucket of the workload.
    pub intensity: MemoryIntensity,
    /// Benchmark-suite grouping of the workload.
    pub group: WorkloadGroup,
    /// Label of the mitigation configuration.
    pub setup_label: String,
    /// Performance normalised to the no-ABO baseline.
    pub normalized_performance: f64,
    /// Protected-run result (for RFM counts, energy, …).
    pub protected: SystemResult,
    /// Baseline-run result.
    pub baseline: SystemResult,
}

/// Runs every workload of `specs` under every configuration of `configs`
/// (sharing one baseline run per workload) in parallel and returns the flat
/// list of matrix cells.
#[must_use]
pub fn run_performance_matrix(
    specs: &[WorkloadSpec],
    configs: &[(String, ExperimentConfig)],
    options: &BenchOptions,
    seed: u64,
) -> Vec<PerfPoint> {
    let tasks: Vec<WorkloadSpec> = specs.to_vec();
    let per_workload = parallel_map(tasks, options.workers, |spec| {
        let baseline_config = configs
            .first()
            .map(|(_, c)| ExperimentConfig {
                setup: MitigationSetup::BaselineNoAbo,
                ..c.clone()
            })
            .unwrap_or_else(|| {
                ExperimentConfig::new(MitigationSetup::BaselineNoAbo, options.instructions_per_core)
            });
        let baseline = run_workload(&baseline_config, &spec.workload, seed);
        let mut points = Vec::with_capacity(configs.len());
        for (label, config) in configs {
            let protected = run_workload(config, &spec.workload, seed);
            let normalized = if baseline.total_ipc() > 0.0 {
                protected.total_ipc() / baseline.total_ipc()
            } else {
                0.0
            };
            points.push(PerfPoint {
                workload: spec.workload.name.clone(),
                intensity: spec.intensity,
                group: spec.group,
                setup_label: label.clone(),
                normalized_performance: normalized,
                protected,
                baseline: baseline.clone(),
            });
        }
        points
    });
    per_workload.into_iter().flatten().collect()
}

/// Mean normalised performance of the points matching `label`.
#[must_use]
pub fn mean_normalized(points: &[PerfPoint], label: &str) -> f64 {
    let selected: Vec<f64> = points
        .iter()
        .filter(|p| p.setup_label == label)
        .map(|p| p.normalized_performance)
        .collect();
    if selected.is_empty() {
        0.0
    } else {
        selected.iter().sum::<f64>() / selected.len() as f64
    }
}

/// Mean normalised performance of the points matching `label` within one
/// memory-intensity bucket.
#[must_use]
pub fn mean_normalized_by_intensity(
    points: &[PerfPoint],
    label: &str,
    intensity: MemoryIntensity,
) -> f64 {
    let selected: Vec<f64> = points
        .iter()
        .filter(|p| p.setup_label == label && p.intensity == intensity)
        .map(|p| p.normalized_performance)
        .collect();
    if selected.is_empty() {
        0.0
    } else {
        selected.iter().sum::<f64>() / selected.len() as f64
    }
}

/// Mean normalised performance of the points matching `label` within one
/// benchmark group.
#[must_use]
pub fn mean_normalized_by_group(points: &[PerfPoint], label: &str, group: WorkloadGroup) -> f64 {
    let selected: Vec<f64> = points
        .iter()
        .filter(|p| p.setup_label == label && p.group == group)
        .map(|p| p.normalized_performance)
        .collect();
    if selected.is_empty() {
        0.0
    } else {
        selected.iter().sum::<f64>() / selected.len() as f64
    }
}

/// Prints a per-workload performance table followed by per-bucket and overall
/// means, in the layout used by the Figure 10 style plots.
pub fn print_performance_table(points: &[PerfPoint], labels: &[String]) {
    print!("{:<16} {:>9}", "workload", "intensity");
    for label in labels {
        print!(" {:>28}", label);
    }
    println!();
    let mut workloads: Vec<(String, MemoryIntensity)> = points
        .iter()
        .map(|p| (p.workload.clone(), p.intensity))
        .collect();
    workloads.dedup();
    for (workload, intensity) in &workloads {
        print!("{:<16} {:>9}", workload, format!("{intensity:?}"));
        for label in labels {
            let value = points
                .iter()
                .find(|p| &p.workload == workload && &p.setup_label == label)
                .map_or(f64::NAN, |p| p.normalized_performance);
            print!(" {:>28.3}", value);
        }
        println!();
    }
    println!();
    for intensity in [MemoryIntensity::High, MemoryIntensity::Medium, MemoryIntensity::Low] {
        print!("{:<26}", format!("mean ({intensity:?})"));
        for label in labels {
            print!(" {:>28.3}", mean_normalized_by_intensity(points, label, intensity));
        }
        println!();
    }
    print!("{:<26}", "mean (all workloads)");
    for label in labels {
        print!(" {:>28.3}", mean_normalized(points, label));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::quick_suite;

    #[test]
    fn options_default_to_quick_suite() {
        let options = BenchOptions::default();
        assert!(!options.full);
        assert_eq!(options.suite().len(), quick_suite().len());
    }

    #[test]
    fn matrix_runs_and_aggregates() {
        let options = BenchOptions {
            full: false,
            instructions_per_core: 4_000,
            workers: 4,
        };
        let suite: Vec<WorkloadSpec> = options.suite().into_iter().take(2).collect();
        let configs = vec![(
            "ABO-Only".to_string(),
            ExperimentConfig::new(MitigationSetup::AboOnly, options.instructions_per_core)
                .with_cores(2),
        )];
        let points = run_performance_matrix(&suite, &configs, &options, 5);
        assert_eq!(points.len(), 2);
        let mean = mean_normalized(&points, "ABO-Only");
        assert!(mean > 0.5 && mean <= 1.05, "mean normalised perf = {mean}");
    }

    #[test]
    fn mean_of_missing_label_is_zero() {
        assert_eq!(mean_normalized(&[], "nope"), 0.0);
    }
}
