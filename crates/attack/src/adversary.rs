//! Adversarial experiment driver: runs a registered attack pattern against
//! a mitigated PRAC memory system and reports security metrics.
//!
//! This is the execution layer behind the `attacks` campaign: one
//! [`run_adversary`] call drives a [`workloads::attack::AttackPattern`]
//! through a [`crate::agents::PatternAgent`] on the lock-step
//! [`crate::agents::MultiAgentRunner`] (serialized dependent accesses, the
//! flush+access attacker model every experiment in this crate uses) and
//! distils the run into an [`AdversaryOutcome`].
//!
//! The headline question each run answers is the paper's: *did any row's
//! PRAC activation counter reach the RowHammer threshold before a
//! mitigation reset it?*  [`AdversaryOutcome::max_row_activations`] holds
//! the observed peak; comparing it against `NRH` (and against a
//! no-mitigation baseline run of the same pattern, for the slowdown the
//! defense imposes on the attacker) is the per-cell security metric set.

use workloads::attack::AttackKind;

use crate::agents::{MultiAgentRunner, PatternAgent};
use crate::setup::AttackSetup;

/// Security metrics of one adversarial run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryOutcome {
    /// Accesses the attacker completed within the tick budget.
    pub accesses_completed: u64,
    /// Tick at which the run stopped.
    pub elapsed_ticks: u64,
    /// Peak per-row PRAC counter observed at activate time — the value to
    /// compare against the RowHammer threshold.
    pub max_row_activations: u32,
    /// Aggressor rows the pattern declares.
    pub aggressor_rows: usize,
    /// Fraction of declared aggressor rows the attacker issued at least one
    /// access to.
    pub aggressor_coverage: f64,
    /// RFMs of any kind the controller issued during the run.
    pub rfms_triggered: u64,
    /// Alert Back-Off events the device asserted.
    pub abo_events: u64,
    /// Total row activations the attack caused.
    pub activations: u64,
    /// Whether every access of the attacker's budget *completed* (reached
    /// DRAM and returned) within `max_ticks` — an access still in flight
    /// when the deadline hits counts as truncation.
    pub completed: bool,
}

impl AdversaryOutcome {
    /// `true` when some row's activation counter reached `nrh` before any
    /// mitigation reset it — i.e. the defense failed to protect the
    /// threshold against this pattern.
    #[must_use]
    pub fn breached(&self, nrh: u32) -> bool {
        self.max_row_activations >= nrh
    }

    /// Attacker throughput in completed accesses per kilo-tick (for
    /// slowdown comparisons between mitigated and baseline runs).
    #[must_use]
    pub fn accesses_per_kilotick(&self) -> f64 {
        if self.elapsed_ticks == 0 {
            return 0.0;
        }
        self.accesses_completed as f64 * 1000.0 / self.elapsed_ticks as f64
    }
}

/// Runs `attack` for `accesses` serialized accesses (or until `max_ticks`)
/// against the memory system described by `setup`.  `seed` is mixed into
/// the pattern's own seeded streams (see [`AttackKind::build`]), so sweeps
/// can draw independent filler streams per cell.
#[must_use]
pub fn run_adversary(
    attack: &AttackKind,
    setup: &AttackSetup,
    accesses: u64,
    max_ticks: u64,
    seed: u64,
) -> AdversaryOutcome {
    let controller = setup.build_controller();
    let org = controller.device().config().organization;
    let t_refi = controller.device().config().timing.t_refi;
    let pattern = attack.build(&org, t_refi, seed);
    let mapping = setup.mapping.instantiate(org);
    let mut agent = PatternAgent::new(pattern, mapping, accesses);
    let mut runner = MultiAgentRunner::new(controller);
    let elapsed_ticks = runner.run(&mut [&mut agent], max_ticks);
    let controller_stats = *runner.controller().stats();
    let dram_stats = *runner.controller().device().stats();
    AdversaryOutcome {
        accesses_completed: agent.completed(),
        elapsed_ticks,
        max_row_activations: dram_stats.max_row_counter,
        aggressor_rows: agent.aggressor_rows(),
        aggressor_coverage: agent.aggressor_coverage(),
        rfms_triggered: controller_stats.total_rfms(),
        abo_events: dram_stats.alerts_asserted,
        activations: dram_stats.activations,
        // is_done() is true once everything is *issued*; only a matching
        // completion count proves the run was not cut off mid-flight.
        completed: agent.completed() == accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::config::MitigationPolicy;
    use prac_core::security::CounterResetPolicy;
    use prac_core::timing::DramTimingSummary;
    use prac_core::tprac::TpracConfig;
    use workloads::attack::attack_registry;

    const MAX_TICKS: u64 = 30_000_000;

    fn undefended(nbo: u32) -> AttackSetup {
        AttackSetup::new(nbo).with_policy(MitigationPolicy::Disabled)
    }

    #[test]
    fn single_sided_breaches_an_undefended_device() {
        let outcome = run_adversary(
            &AttackKind::SingleSided,
            &undefended(256),
            600,
            MAX_TICKS,
            0,
        );
        assert!(outcome.completed);
        assert_eq!(outcome.aggressor_rows, 1);
        assert!((outcome.aggressor_coverage - 1.0).abs() < 1e-12);
        // Closed-page policy: every serialized access is an activation, and
        // nothing ever resets the counter.
        assert!(outcome.breached(256), "{outcome:?}");
        assert_eq!(outcome.rfms_triggered, 0);
        assert_eq!(outcome.abo_events, 0);
    }

    #[test]
    fn abo_caps_the_counter_near_the_threshold() {
        let outcome = run_adversary(
            &AttackKind::SingleSided,
            &AttackSetup::new(256),
            2_000,
            MAX_TICKS,
            0,
        );
        assert!(outcome.completed);
        assert!(outcome.abo_events > 0, "{outcome:?}");
        assert!(outcome.rfms_triggered > 0);
        // The reactive ABO fires *at* the threshold, so the peak observed
        // counter reaches NBO but cannot meaningfully exceed it.
        assert!(outcome.max_row_activations >= 256, "{outcome:?}");
        assert!(outcome.max_row_activations < 300, "{outcome:?}");
    }

    #[test]
    fn tprac_defends_and_slows_the_attacker() {
        let nbo = 512;
        let timing = DramTimingSummary::ddr5_8000b();
        let tprac =
            TpracConfig::solve_for_threshold(nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
                .expect("solvable");
        let defended = AttackSetup::new(nbo).with_policy(MitigationPolicy::Tprac(tprac));
        let mitigated = run_adversary(&AttackKind::DoubleSided, &defended, 2_000, MAX_TICKS, 0);
        let baseline = run_adversary(
            &AttackKind::DoubleSided,
            &undefended(nbo),
            2_000,
            MAX_TICKS,
            0,
        );
        assert!(mitigated.completed && baseline.completed);
        assert!(
            !mitigated.breached(nbo),
            "TPRAC must keep every counter below NBO: {mitigated:?}"
        );
        assert!(baseline.breached(nbo));
        assert!(mitigated.rfms_triggered > 0);
        // TB-RFMs block the channel, so the mitigated attacker is slower.
        assert!(mitigated.elapsed_ticks > baseline.elapsed_ticks);
    }

    #[test]
    fn every_registered_attack_runs_against_the_default_setup() {
        for descriptor in attack_registry() {
            let outcome =
                run_adversary(&descriptor.kind, &AttackSetup::new(1024), 300, MAX_TICKS, 7);
            assert!(outcome.completed, "{}: {outcome:?}", descriptor.slug);
            assert_eq!(outcome.accesses_completed, 300, "{}", descriptor.slug);
            assert!(outcome.activations > 0, "{}", descriptor.slug);
            assert!(
                outcome.aggressor_coverage > 0.0,
                "{}: no aggressor touched",
                descriptor.slug
            );
        }
    }

    #[test]
    fn breach_budgets_are_sufficient_for_every_pattern() {
        // `AttackKind::accesses_to_breach` promises that its budget drives
        // some row past NRH on an undefended device — the property the
        // `attacks` campaign relies on to make `nrh_breached` meaningful.
        let nrh = 256;
        for descriptor in attack_registry() {
            let budget = descriptor.kind.accesses_to_breach(nrh);
            let outcome = run_adversary(&descriptor.kind, &undefended(nrh), budget, MAX_TICKS, 0);
            assert!(outcome.completed, "{}: {outcome:?}", descriptor.slug);
            assert!(
                outcome.breached(nrh),
                "{}: budget {budget} failed to breach NRH {nrh}: {outcome:?}",
                descriptor.slug
            );
        }
    }

    #[test]
    fn adversary_runs_are_deterministic() {
        let run = || {
            run_adversary(
                &AttackKind::DecoyBlast { decoys: 4, seed: 9 },
                &AttackSetup::new(512),
                500,
                MAX_TICKS,
                3,
            )
        };
        assert_eq!(run(), run());
    }
}
