//! Latency-spike detection.
//!
//! Every PRACLeak receiver works the same way: it times its own memory
//! accesses and classifies each sample as "normal" or "spiked by an RFM".
//! An RFM All-Bank blocks the channel for 350 ns, so an access that overlaps
//! one observes a latency hundreds of nanoseconds above the baseline; the
//! detector simply thresholds against the calibrated baseline.

use serde::{Deserialize, Serialize};

/// Classifies access latencies into baseline accesses and RFM-induced spikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeDetector {
    /// Latencies above this value (in nanoseconds) are classified as spikes.
    pub threshold_ns: f64,
}

impl SpikeDetector {
    /// Creates a detector with an explicit threshold.
    #[must_use]
    pub fn new(threshold_ns: f64) -> Self {
        Self { threshold_ns }
    }

    /// Calibrates a detector from baseline (no-attack) samples: the threshold
    /// is placed halfway between the maximum observed baseline latency and
    /// that maximum plus one tRFMab (350 ns).
    #[must_use]
    pub fn calibrate(baseline_ns: &[f64]) -> Self {
        let max_baseline = baseline_ns.iter().copied().fold(0.0f64, f64::max);
        Self {
            threshold_ns: max_baseline + 175.0,
        }
    }

    /// Whether a single latency sample is a spike.
    #[must_use]
    pub fn is_spike(&self, latency_ns: f64) -> bool {
        latency_ns > self.threshold_ns
    }

    /// Number of spikes in a latency series.
    #[must_use]
    pub fn count_spikes(&self, latencies_ns: &[f64]) -> usize {
        latencies_ns.iter().filter(|&&l| self.is_spike(l)).count()
    }

    /// Index of the first spike in a latency series, if any.
    #[must_use]
    pub fn first_spike(&self, latencies_ns: &[f64]) -> Option<usize> {
        latencies_ns.iter().position(|&l| self.is_spike(l))
    }
}

impl Default for SpikeDetector {
    fn default() -> Self {
        // A conservative default: normal accesses finish well under 250 ns
        // while an access stalled behind an RFMab exceeds 350 ns.
        Self {
            threshold_ns: 300.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_separates_rfm_spikes() {
        let d = SpikeDetector::default();
        assert!(!d.is_spike(80.0));
        assert!(!d.is_spike(250.0));
        assert!(d.is_spike(545.0)); // 1 RFM per ABO (paper's observed mean)
        assert!(d.is_spike(976.0)); // 2 RFMs per ABO
        assert!(d.is_spike(1669.0)); // 4 RFMs per ABO
    }

    #[test]
    fn calibration_tracks_baseline() {
        let baseline = vec![60.0, 75.0, 120.0, 118.0];
        let d = SpikeDetector::calibrate(&baseline);
        assert!(d.threshold_ns > 120.0 && d.threshold_ns < 470.0);
        assert!(!d.is_spike(118.0));
        assert!(d.is_spike(500.0));
    }

    #[test]
    fn counting_and_first_spike() {
        let d = SpikeDetector::new(300.0);
        let series = vec![100.0, 90.0, 600.0, 95.0, 700.0];
        assert_eq!(d.count_spikes(&series), 2);
        assert_eq!(d.first_spike(&series), Some(2));
        assert_eq!(d.first_spike(&[10.0, 20.0]), None);
    }

    #[test]
    fn empty_series_is_handled() {
        let d = SpikeDetector::calibrate(&[]);
        assert_eq!(d.count_spikes(&[]), 0);
        assert_eq!(d.first_spike(&[]), None);
    }
}
