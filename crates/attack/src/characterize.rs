//! Characterisation of the Alert Back-Off timing variation (Figure 3).
//!
//! An attacker thread times its own memory accesses (to a bank of its own)
//! while a victim thread on another core hammers a row in a *different* bank.
//! When the victim's activations reach the Back-Off threshold, the DRAM
//! asserts Alert and the controller issues 1, 2 or 4 RFM All-Bank commands —
//! each stalling the entire channel for 350 ns — so the attacker's concurrent
//! access observes a latency spike even though it targets an unrelated bank.

use prac_core::config::PracLevel;
use serde::{Deserialize, Serialize};

use crate::agents::{MultiAgentRunner, SerializedAccessAgent};
use crate::latency::SpikeDetector;
use crate::setup::AttackSetup;

/// One attacker latency observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Completion time of the access, in nanoseconds from the start of the
    /// experiment.
    pub time_ns: f64,
    /// Observed access latency in nanoseconds.
    pub latency_ns: f64,
}

/// Result of one characterisation run (one panel of Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AboCharacterization {
    /// PRAC level used (RFMs per ABO); `None` for the no-ABO baseline panel.
    pub prac_level: Option<PracLevel>,
    /// Attacker latency timeline.
    pub samples: Vec<LatencySample>,
    /// Number of ABO events (Alert assertions) observed by the DRAM.
    pub abo_events: u64,
    /// Number of RFMs the controller issued in response.
    pub abo_rfms: u64,
    /// Mean latency of the attacker's spiked accesses, in nanoseconds
    /// (0 when no spike was observed).
    pub mean_spike_latency_ns: f64,
    /// Mean latency of the attacker's un-spiked accesses, in nanoseconds.
    pub mean_baseline_latency_ns: f64,
}

impl AboCharacterization {
    /// Number of attacker accesses classified as spikes.
    #[must_use]
    pub fn spike_count(&self) -> usize {
        let detector = SpikeDetector::default();
        self.samples
            .iter()
            .filter(|s| detector.is_spike(s.latency_ns))
            .count()
    }
}

/// Runs the Figure 3 characterisation.
///
/// * `nbo` — Back-Off threshold (the paper uses 256 for this figure),
/// * `prac_level` — `Some(level)` runs the victim hammer alongside the
///   attacker; `None` runs the attacker alone (the "No ABO" panel),
/// * `duration_ns` — length of the observation window (the paper plots 2 ms).
#[must_use]
pub fn run_characterization(
    nbo: u32,
    prac_level: Option<PracLevel>,
    duration_ns: f64,
) -> AboCharacterization {
    let setup = AttackSetup::new(nbo).with_prac_level(prac_level.unwrap_or(PracLevel::One));
    let controller = setup.build_controller();

    // Attacker: repeatedly accesses rows in bank-group 1; with the closed-page
    // policy the accesses rotate over a handful of rows so the attacker's own
    // counters stay far below NBO (no self-induced ABOs).
    let attacker_rows: Vec<u64> = (0..64u32)
        .map(|r| setup.row_address(&controller, 1, 1000 + r, 0))
        .collect();
    // Victim: hammers a single row in bank-group 0 (every serialized access is
    // an activation under the closed-page policy).
    let victim_row = setup.row_address(&controller, 0, 7, 0);

    let duration_ticks = (duration_ns * 4.0) as u64;
    let mut attacker = SerializedAccessAgent::new(attacker_rows, u64::MAX);
    let mut victim = SerializedAccessAgent::new(vec![victim_row], u64::MAX);

    let mut runner = MultiAgentRunner::new(controller);
    if prac_level.is_some() {
        runner.run(&mut [&mut attacker, &mut victim], duration_ticks);
    } else {
        runner.run(&mut [&mut attacker], duration_ticks);
    }

    let samples: Vec<LatencySample> = attacker
        .history
        .iter()
        .map(|a| LatencySample {
            time_ns: a.completion_tick as f64 * 0.25,
            latency_ns: a.latency_ns(),
        })
        .collect();

    let detector = SpikeDetector::default();
    let (mut spike_sum, mut spike_n, mut base_sum, mut base_n) = (0.0, 0usize, 0.0, 0usize);
    for s in &samples {
        if detector.is_spike(s.latency_ns) {
            spike_sum += s.latency_ns;
            spike_n += 1;
        } else {
            base_sum += s.latency_ns;
            base_n += 1;
        }
    }
    AboCharacterization {
        prac_level,
        abo_events: runner.controller().device().stats().alerts_asserted,
        abo_rfms: runner.controller().stats().abo_rfms,
        mean_spike_latency_ns: if spike_n > 0 {
            spike_sum / spike_n as f64
        } else {
            0.0
        },
        mean_baseline_latency_ns: if base_n > 0 {
            base_sum / base_n as f64
        } else {
            0.0
        },
        samples,
    }
}

/// Runs all four Figure 3 panels (no ABO, then 1, 2 and 4 RFMs per ABO).
#[must_use]
pub fn figure3_panels(nbo: u32, duration_ns: f64) -> Vec<AboCharacterization> {
    let mut panels = vec![run_characterization(nbo, None, duration_ns)];
    for level in PracLevel::all() {
        panels.push(run_characterization(nbo, Some(level), duration_ns));
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW_NS: f64 = 150_000.0;

    #[test]
    fn no_victim_means_no_spikes() {
        let result = run_characterization(64, None, WINDOW_NS);
        assert_eq!(result.abo_events, 0);
        assert_eq!(result.abo_rfms, 0);
        assert_eq!(result.spike_count(), 0);
        assert!(!result.samples.is_empty());
        assert!(result.mean_baseline_latency_ns > 0.0);
        assert!(result.mean_baseline_latency_ns < 300.0);
    }

    #[test]
    fn victim_hammering_produces_observable_spikes() {
        // Small NBO so several ABOs fit in a short window.
        let result = run_characterization(64, Some(PracLevel::One), WINDOW_NS);
        assert!(result.abo_events >= 1, "expected at least one ABO");
        assert!(result.abo_rfms >= 1);
        assert!(
            result.spike_count() >= 1,
            "attacker must observe the RFM stall"
        );
        assert!(result.mean_spike_latency_ns > 350.0);
    }

    #[test]
    fn spike_latency_grows_with_prac_level() {
        let one = run_characterization(64, Some(PracLevel::One), WINDOW_NS);
        let four = run_characterization(64, Some(PracLevel::Four), WINDOW_NS);
        assert!(one.spike_count() >= 1 && four.spike_count() >= 1);
        assert!(
            four.mean_spike_latency_ns > one.mean_spike_latency_ns + 300.0,
            "4 RFMs per ABO ({:.0} ns) should stall far longer than 1 ({:.0} ns)",
            four.mean_spike_latency_ns,
            one.mean_spike_latency_ns
        );
    }

    #[test]
    fn figure3_produces_four_panels() {
        let panels = figure3_panels(64, 60_000.0);
        assert_eq!(panels.len(), 4);
        assert_eq!(panels[0].prac_level, None);
        assert_eq!(panels[3].prac_level, Some(PracLevel::Four));
    }
}
