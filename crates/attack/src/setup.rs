//! Shared experiment setup: building a PRAC-enabled memory system in the
//! configuration the attacks assume, and computing victim/attacker addresses
//! that share (or deliberately do not share) DRAM rows.

use dram_sim::device::DramDeviceConfig;
use dram_sim::org::DramAddress;
use memctrl::controller::{ControllerConfig, MemoryController, PagePolicy};
use memctrl::mapping::MappingKind;
use prac_core::config::{MitigationPolicy, PracConfig, PracLevel};
use serde::{Deserialize, Serialize};

/// Configuration of an attack experiment's memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSetup {
    /// Back-Off threshold (`NBO`) of the PRAC device (and the RowHammer
    /// threshold, kept equal for the attack studies).
    pub nbo: u32,
    /// PRAC level: RFMs issued per Alert.
    pub prac_level: PracLevel,
    /// Mitigation policy run by the controller.
    pub policy: MitigationPolicy,
    /// Whether periodic refresh is modelled.  The attacks disable it by
    /// default: refresh stalls (410 ns every 3.9 µs) are strictly periodic,
    /// so a real attacker filters them out trivially; removing them keeps the
    /// decoders in this reproduction simple without changing the channel.
    pub refresh_enabled: bool,
    /// Address-mapping policy (bank-striped by default so that victim and
    /// attacker pages can share a DRAM row).
    pub mapping: MappingKind,
    /// Whether per-row PRAC counters reset every tREFW.
    pub counter_reset: bool,
    /// Targeted-Refresh cadence of the device (`None` disables TREF).  Only
    /// observable when refresh is enabled.
    pub tref_every_n_refreshes: Option<u32>,
}

impl AttackSetup {
    /// Default attack setup: `NBO = 256`, PRAC-1, ABO-only mitigation,
    /// bank-striped mapping, refresh disabled.
    #[must_use]
    pub fn new(nbo: u32) -> Self {
        Self {
            nbo,
            prac_level: PracLevel::One,
            policy: MitigationPolicy::AboOnly,
            refresh_enabled: false,
            mapping: MappingKind::BankStriped,
            counter_reset: true,
            tref_every_n_refreshes: None,
        }
    }

    /// Selects the PRAC level (RFMs per Alert).
    #[must_use]
    pub fn with_prac_level(mut self, level: PracLevel) -> Self {
        self.prac_level = level;
        self
    }

    /// Selects the mitigation policy (e.g. the TPRAC defense).
    #[must_use]
    pub fn with_policy(mut self, policy: MitigationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables periodic refresh.
    #[must_use]
    pub fn with_refresh(mut self, enabled: bool) -> Self {
        self.refresh_enabled = enabled;
        self
    }

    /// Selects whether per-row PRAC counters reset every tREFW.
    #[must_use]
    pub fn with_counter_reset(mut self, reset: bool) -> Self {
        self.counter_reset = reset;
        self
    }

    /// Selects the Targeted-Refresh cadence (`None` disables TREF).
    #[must_use]
    pub fn with_tref_every(mut self, every_n_refreshes: Option<u32>) -> Self {
        self.tref_every_n_refreshes = every_n_refreshes;
        self
    }

    /// Builds the memory controller (full DDR5 organisation, closed-page
    /// policy so every serialized access is an activation).
    #[must_use]
    pub fn build_controller(&self) -> MemoryController {
        let prac = PracConfig::builder()
            .rowhammer_threshold(self.nbo)
            .back_off_threshold(self.nbo)
            .prac_level(self.prac_level)
            .counter_reset_every_trefw(self.counter_reset)
            .policy(self.policy.clone())
            .build();
        let device = DramDeviceConfig {
            prac,
            tref_every_n_refreshes: self.tref_every_n_refreshes,
            ..DramDeviceConfig::paper_default()
        };
        let controller_config = ControllerConfig {
            mapping: self.mapping,
            page_policy: PagePolicy::Closed,
            refresh_enabled: self.refresh_enabled,
            ..ControllerConfig::default()
        };
        MemoryController::new(device, controller_config)
    }

    /// Physical address of column `column` in `row` of bank 0 / bank-group
    /// `bank_group` / rank 0.  Victim and attacker use the same `(bank, row)`
    /// with different columns to model two pages sharing one DRAM row.
    #[must_use]
    pub fn row_address(
        &self,
        controller: &MemoryController,
        bank_group: u32,
        row: u32,
        column: u32,
    ) -> u64 {
        let org = controller.device().config().organization;
        controller.encode_address(&DramAddress::new(&org, 0, bank_group, 0, row, column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_setup_builds_a_closed_page_controller() {
        let setup = AttackSetup::new(256);
        let ctrl = setup.build_controller();
        assert_eq!(ctrl.config().page_policy, PagePolicy::Closed);
        assert!(!ctrl.config().refresh_enabled);
        assert_eq!(ctrl.device().config().prac.back_off_threshold, 256);
    }

    #[test]
    fn victim_and_attacker_columns_share_a_row() {
        let setup = AttackSetup::new(256);
        let ctrl = setup.build_controller();
        let victim = setup.row_address(&ctrl, 0, 42, 0);
        let attacker = setup.row_address(&ctrl, 0, 42, 7);
        assert_ne!(victim, attacker);
        assert!(ctrl
            .decode_address(victim)
            .same_row(&ctrl.decode_address(attacker)));
        // And they belong to different 4 KB pages, as the threat model needs.
        assert_ne!(victim >> 12, attacker >> 12);
    }

    #[test]
    fn different_rows_map_to_the_same_bank() {
        let setup = AttackSetup::new(256);
        let ctrl = setup.build_controller();
        let a = ctrl.decode_address(setup.row_address(&ctrl, 0, 1, 0));
        let b = ctrl.decode_address(setup.row_address(&ctrl, 0, 2, 0));
        assert!(a.same_bank(&b));
        assert_ne!(a.row, b.row);
    }

    #[test]
    fn prac_level_is_propagated() {
        let setup = AttackSetup::new(512).with_prac_level(PracLevel::Four);
        let ctrl = setup.build_controller();
        assert_eq!(ctrl.device().config().prac.rfms_per_alert(), 4);
    }
}
