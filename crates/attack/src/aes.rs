//! AES-128 with T-table lookups — the victim application of the PRACLeak
//! side-channel attack.
//!
//! Crypto libraries such as OpenSSL and GnuPG ship AES implementations whose
//! round function is computed through four 1 KB lookup tables ("T-tables").
//! Each table spans 16 cache lines, and the line touched in the first round
//! for byte `i` is `(p_i XOR k_i) >> 4`, i.e. it leaks the top nibble of the
//! key byte once the plaintext is known.  This module provides:
//!
//! * a complete, self-contained AES-128 encryption (key schedule + 10 rounds)
//!   built from the algorithm's mathematical definition (the S-box is derived
//!   from the GF(2^8) inverse and affine map at construction time, and the
//!   T-tables from the S-box), verified against the FIPS-197 known-answer
//!   test,
//! * [`Aes128TTable::first_round_accesses`] exposing the exact T-table
//!   indices the first round touches — the signal the attacker amplifies into
//!   DRAM row activations,
//! * [`first_round_t0_lines`], the per-encryption list of T0 cache-line
//!   indices (DRAM rows, after the attacker's flushes) used by the
//!   side-channel experiment.

use serde::{Deserialize, Serialize};

/// Number of cache lines spanned by one 1 KB T-table (64-byte lines).
pub const T_TABLE_CACHE_LINES: usize = 16;

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut product = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            product ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    product
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Builds the AES S-box from its algebraic definition: multiplicative inverse
/// followed by the fixed affine transformation.
fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let x = gf_inv(i as u8);
        let mut y = x;
        let mut value = x;
        for _ in 0..4 {
            y = y.rotate_left(1);
            value ^= y;
        }
        *slot = value ^ 0x63;
    }
    sbox
}

/// AES-128 encryption context using T-table round computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aes128TTable {
    round_keys: [[u8; 16]; 11],
    #[serde(skip, default = "build_sbox_boxed")]
    sbox: Box<[u8; 256]>,
    #[serde(skip, default = "empty_t_tables")]
    t_tables: Box<[[u32; 256]; 4]>,
}

// Referenced by the `#[serde(default = "...")]` attributes above; the
// offline serde-derive shim does not expand those, so the compiler cannot
// see the use.
#[allow(dead_code)]
fn build_sbox_boxed() -> Box<[u8; 256]> {
    Box::new(build_sbox())
}

#[allow(dead_code)]
fn empty_t_tables() -> Box<[[u32; 256]; 4]> {
    Box::new([[0u32; 256]; 4])
}

impl Aes128TTable {
    /// Creates an encryption context for the given 128-bit key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let sbox = build_sbox();
        let round_keys = Self::expand_key(key, &sbox);
        let t_tables = Self::build_t_tables(&sbox);
        Self {
            round_keys,
            sbox: Box::new(sbox),
            t_tables: Box::new(t_tables),
        }
    }

    /// The expanded round keys (11 × 16 bytes).
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    fn expand_key(key: &[u8; 16], sbox: &[u8; 256]) -> [[u8; 16]; 11] {
        let mut words = [[0u8; 4]; 44];
        for i in 0..4 {
            words[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[usize::from(*b)];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, chunk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                chunk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
        }
        round_keys
    }

    fn build_t_tables(sbox: &[u8; 256]) -> [[u32; 256]; 4] {
        let mut tables = [[0u32; 256]; 4];
        for x in 0..256 {
            let s = sbox[x];
            let s2 = gf_mul(s, 2);
            let s3 = gf_mul(s, 3);
            // T0 entry: [2·S(x), S(x), S(x), 3·S(x)] packed big-endian; the
            // other tables are byte rotations of T0.
            let t0 = u32::from_be_bytes([s2, s, s, s3]);
            tables[0][x] = t0;
            tables[1][x] = t0.rotate_right(8);
            tables[2][x] = t0.rotate_right(16);
            tables[3][x] = t0.rotate_right(24);
        }
        tables
    }

    /// The T-table indices (table, index) accessed during the first round for
    /// the given plaintext: byte `i` of the state indexes table `i mod 4`
    /// with `p_i XOR k_i`.
    #[must_use]
    pub fn first_round_accesses(&self, plaintext: &[u8; 16]) -> [(usize, u8); 16] {
        let mut out = [(0usize, 0u8); 16];
        for i in 0..16 {
            let x = plaintext[i] ^ self.round_keys[0][i];
            out[i] = (i % 4, x);
        }
        out
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        // State as four column words (big-endian packing of each column).
        let mut state = [0u32; 4];
        for c in 0..4 {
            state[c] = u32::from_be_bytes([
                plaintext[4 * c] ^ self.round_keys[0][4 * c],
                plaintext[4 * c + 1] ^ self.round_keys[0][4 * c + 1],
                plaintext[4 * c + 2] ^ self.round_keys[0][4 * c + 2],
                plaintext[4 * c + 3] ^ self.round_keys[0][4 * c + 3],
            ]);
        }
        // Rounds 1..=9 use the T-tables.
        for round in 1..=9 {
            let rk = &self.round_keys[round];
            let mut next = [0u32; 4];
            for (c, slot) in next.iter_mut().enumerate() {
                let b0 = (state[c] >> 24) as u8;
                let b1 = (state[(c + 1) % 4] >> 16) as u8;
                let b2 = (state[(c + 2) % 4] >> 8) as u8;
                let b3 = state[(c + 3) % 4] as u8;
                let key_word =
                    u32::from_be_bytes([rk[4 * c], rk[4 * c + 1], rk[4 * c + 2], rk[4 * c + 3]]);
                *slot = self.t_tables[0][usize::from(b0)]
                    ^ self.t_tables[1][usize::from(b1)]
                    ^ self.t_tables[2][usize::from(b2)]
                    ^ self.t_tables[3][usize::from(b3)]
                    ^ key_word;
            }
            state = next;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let rk = &self.round_keys[10];
        let mut output = [0u8; 16];
        for c in 0..4 {
            let bytes = [
                self.sbox[usize::from((state[c] >> 24) as u8)],
                self.sbox[usize::from((state[(c + 1) % 4] >> 16) as u8)],
                self.sbox[usize::from((state[(c + 2) % 4] >> 8) as u8)],
                self.sbox[usize::from(state[(c + 3) % 4] as u8)],
            ];
            for r in 0..4 {
                output[4 * c + r] = bytes[r] ^ rk[4 * c + r];
            }
        }
        output
    }
}

/// Returns the T0 cache-line indices (0..16) touched during the first round of
/// one encryption: the lines indexed by state bytes 0, 4, 8 and 12 (the bytes
/// that use table T0).  After the attacker flushes the T-table from the cache
/// hierarchy, each of these becomes a DRAM access to the corresponding row.
#[must_use]
pub fn first_round_t0_lines(aes: &Aes128TTable, plaintext: &[u8; 16]) -> Vec<usize> {
    aes.first_round_accesses(plaintext)
        .iter()
        .filter(|(table, _)| *table == 0)
        .map(|(_, index)| usize::from(*index) / (64 / 4))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fips197_key() -> [u8; 16] {
        [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]
    }

    #[test]
    fn sbox_has_known_fixed_values() {
        let sbox = build_sbox();
        // Spot-check well-known S-box entries.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        // The S-box is a permutation.
        let mut seen = [false; 256];
        for v in sbox {
            assert!(!seen[usize::from(v)]);
            seen[usize::from(v)] = true;
        }
    }

    #[test]
    fn gf_arithmetic_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 worked example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
    }

    #[test]
    fn fips197_known_answer() {
        let key = fips197_key();
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128TTable::new(&key);
        assert_eq!(aes.encrypt_block(&plaintext), expected);
    }

    #[test]
    fn key_expansion_first_and_last_round_keys() {
        let aes = Aes128TTable::new(&fips197_key());
        assert_eq!(aes.round_keys()[0], fips197_key());
        // Last round key for this key schedule (from the FIPS-197 appendix).
        assert_eq!(
            aes.round_keys()[10],
            [
                0x13, 0x11, 0x1d, 0x7f, 0xe3, 0x94, 0x4a, 0x17, 0xf3, 0x07, 0xa7, 0x8b, 0x4d, 0x2b,
                0x30, 0xc5
            ]
        );
    }

    #[test]
    fn first_round_accesses_reflect_plaintext_xor_key() {
        let key = [0u8; 16];
        let aes = Aes128TTable::new(&key);
        let mut plaintext = [0u8; 16];
        plaintext[0] = 0xA7;
        let accesses = aes.first_round_accesses(&plaintext);
        assert_eq!(accesses[0], (0, 0xA7));
        assert_eq!(accesses[1], (1, 0x00));
        assert_eq!(accesses[4], (0, 0x00));
    }

    #[test]
    fn t0_lines_expose_top_nibble_of_key_byte0() {
        for k0 in [0x00u8, 0x30, 0x5A, 0xF1] {
            let mut key = [0u8; 16];
            key[0] = k0;
            let aes = Aes128TTable::new(&key);
            let plaintext = [0u8; 16]; // p0 = 0 ⇒ x0 = k0
            let lines = first_round_t0_lines(&aes, &plaintext);
            assert_eq!(lines.len(), 4, "four T0 lookups per round");
            assert_eq!(lines[0], usize::from(k0 >> 4));
            assert!(lines.iter().all(|&l| l < T_TABLE_CACHE_LINES));
        }
    }

    #[test]
    fn encryption_differs_for_different_keys_and_plaintexts() {
        let aes_a = Aes128TTable::new(&[0u8; 16]);
        let aes_b = Aes128TTable::new(&[1u8; 16]);
        let p = [7u8; 16];
        assert_ne!(aes_a.encrypt_block(&p), aes_b.encrypt_block(&p));
        assert_ne!(aes_a.encrypt_block(&p), aes_a.encrypt_block(&[8u8; 16]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// T-table AES must agree with itself under re-keying (determinism)
        /// and the first-round access indices must always equal p XOR k.
        #[test]
        fn first_round_indices_are_p_xor_k(key in proptest::array::uniform16(0u8..), plaintext in proptest::array::uniform16(0u8..)) {
            let aes = Aes128TTable::new(&key);
            let accesses = aes.first_round_accesses(&plaintext);
            for i in 0..16 {
                prop_assert_eq!(accesses[i], (i % 4, plaintext[i] ^ key[i]));
            }
            prop_assert_eq!(aes.encrypt_block(&plaintext), aes.encrypt_block(&plaintext));
        }

        /// Flipping any single plaintext byte changes the ciphertext.
        #[test]
        fn ciphertext_depends_on_every_byte(key in proptest::array::uniform16(0u8..), plaintext in proptest::array::uniform16(0u8..), byte in 0usize..16) {
            let aes = Aes128TTable::new(&key);
            let mut flipped = plaintext;
            flipped[byte] ^= 0xFF;
            prop_assert_ne!(aes.encrypt_block(&plaintext), aes.encrypt_block(&flipped));
        }
    }
}
