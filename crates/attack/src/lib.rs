//! # pracleak
//!
//! The **PRACLeak** attacks: covert and side channels that exploit the timing
//! variations introduced by PRAC's Alert Back-Off (ABO) protocol and Refresh
//! Management (RFM) commands, plus the experiment drivers that reproduce the
//! paper's attack figures.
//!
//! * [`aes`] — a software AES-128 T-table implementation (the victim of the
//!   side-channel attack), with helpers exposing the first-round T-table
//!   access indices that the attack observes.
//! * [`agents`] — memory "agents" (attacker, victim, trojan, spy) that issue
//!   serialized dependent requests to the [`memctrl::MemoryController`] and
//!   record per-access latencies, plus the lock-step multi-agent runner and
//!   the [`agents::PatternAgent`] bridge driving any pluggable
//!   [`workloads::attack::AttackPattern`].
//! * [`adversary`] — the attack-vs-mitigation experiment driver behind the
//!   `attacks` campaign: runs a registered pattern against a mitigated
//!   system and reports the per-cell security metrics (peak per-row
//!   activations vs `NRH`, aggressor coverage, RFM pressure).
//! * [`latency`] — latency-spike detection used by every receiver.
//! * [`characterize`] — the Figure 3 experiment: attacker-observed latency
//!   timelines with and without a concurrent ABO, across PRAC levels.
//! * [`covert`] — the activity-based and activation-count-based covert
//!   channels (Table 2): transmission period, bitrate and error rate.
//! * [`side_channel`] — the AES T-table side channel (Figures 4, 5 and 9):
//!   chosen-plaintext key-nibble recovery through ABO-triggering rows, with
//!   and without the TPRAC defense.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod aes;
pub mod agents;
pub mod characterize;
pub mod covert;
pub mod latency;
pub mod setup;
pub mod side_channel;

pub use adversary::{run_adversary, AdversaryOutcome};
pub use aes::{first_round_t0_lines, Aes128TTable};
pub use agents::{AgentId, MultiAgentRunner, PatternAgent, SerializedAccessAgent};
pub use characterize::{AboCharacterization, LatencySample};
pub use covert::{run_covert_channel, CovertChannelKind, CovertChannelResult};
pub use latency::SpikeDetector;
pub use setup::AttackSetup;
pub use side_channel::{SideChannelExperiment, SideChannelOutcome};
