//! The PRACLeak side-channel attack on AES T-tables (Section 3.3,
//! Figures 4, 5 and 9).
//!
//! Threat model: attacker and victim are different processes on different
//! cores sharing the DRAM module; the 16 cache lines of T-table T0 map to 16
//! distinct DRAM rows, and the attacker owns pages that co-reside in those
//! rows (bank-striped mapping).  The attacker repeatedly flushes the T-table
//! lines from the cache hierarchy, so every first-round T0 lookup becomes a
//! DRAM row activation the PRAC counters see.
//!
//! The attack proceeds in two phases per key byte:
//!
//! 1. **Victim phase** — the victim encrypts `n` chosen plaintexts (byte
//!    `p0` fixed, other bytes random).  The T0 line indexed by
//!    `x0 = p0 XOR k0` is touched every encryption, so its DRAM row
//!    accumulates far more activations than the other 15 rows.
//! 2. **Probe phase** — the attacker activates each of the 16 rows in a
//!    round-robin loop, timing every access.  The hottest row reaches the
//!    Back-Off threshold first; the resulting ABO-RFM stalls the channel and
//!    the attacker attributes the spike to the row it activated immediately
//!    before, recovering the top nibble of `k0`.
//!
//! With the TPRAC defense the periodic Timing-Based RFMs mitigate the hottest
//! row long before it reaches the threshold, no ABO ever fires, and the first
//! RFM the attacker observes is uncorrelated with the key.

use prac_core::config::{MitigationPolicy, PracLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::aes::{first_round_t0_lines, Aes128TTable, T_TABLE_CACHE_LINES};
use crate::agents::{MultiAgentRunner, SerializedAccessAgent};
use crate::latency::SpikeDetector;
use crate::setup::AttackSetup;

/// Configuration of one side-channel experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SideChannelExperiment {
    /// Back-Off threshold (256 in the paper's Figure 4).
    pub nbo: u32,
    /// Number of victim encryptions per key byte (200 in the paper).
    pub encryptions: u32,
    /// Mitigation policy: `AboOnly` reproduces the attack, `Tprac` the defense.
    pub policy: MitigationPolicy,
    /// RNG seed for the victim's random plaintext bytes.
    pub seed: u64,
}

impl SideChannelExperiment {
    /// The paper's attack configuration: NBO = 256, 200 encryptions, ABO-only.
    #[must_use]
    pub fn paper_attack() -> Self {
        Self {
            nbo: 256,
            encryptions: 200,
            policy: MitigationPolicy::AboOnly,
            seed: 0x5ec2e7,
        }
    }

    /// Same experiment with an arbitrary mitigation policy (e.g. TPRAC).
    #[must_use]
    pub fn with_policy(mut self, policy: MitigationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs the experiment for one value of secret key byte 0 and plaintext
    /// byte 0 fixed to `p0`.
    #[must_use]
    pub fn run_for_key_byte(&self, k0: u8, p0: u8) -> SideChannelOutcome {
        let setup = AttackSetup::new(self.nbo)
            .with_prac_level(PracLevel::One)
            .with_policy(self.policy.clone());
        let controller = setup.build_controller();

        // The 16 cache lines of T0 map to rows 0..16 of bank-group 0; the
        // victim and the attacker use different columns of those rows
        // (different physical pages sharing the row).
        let victim_row_addr: Vec<u64> = (0..T_TABLE_CACHE_LINES as u32)
            .map(|row| setup.row_address(&controller, 0, row, 0))
            .collect();
        let attacker_row_addr: Vec<u64> = (0..T_TABLE_CACHE_LINES as u32)
            .map(|row| setup.row_address(&controller, 0, row, 8))
            .collect();

        // --- Victim phase -------------------------------------------------
        // Build the victim's DRAM access stream: for every encryption, the
        // four first-round T0 lookups with the attacker-chosen p0 and random
        // p4/p8/p12 (the attacker flushes the lines, so each lookup reaches
        // DRAM).
        let mut key = [0u8; 16];
        key[0] = k0;
        let aes = Aes128TTable::new(&key);
        let mut rng = StdRng::seed_from_u64(self.seed ^ u64::from(k0));
        let mut victim_accesses = Vec::with_capacity(self.encryptions as usize * 4);
        for _ in 0..self.encryptions {
            let mut plaintext = [0u8; 16];
            rng.fill(&mut plaintext);
            plaintext[0] = p0;
            for line in first_round_t0_lines(&aes, &plaintext) {
                victim_accesses.push(victim_row_addr[line]);
            }
        }
        let victim_access_count = victim_accesses.len() as u64;
        let mut victim = VictimAgent::new(victim_accesses);

        let mut runner = MultiAgentRunner::new(controller);
        runner.run(&mut [&mut victim], victim_access_count * 4_000 + 100_000);

        // Record the per-row activation counts accumulated by the victim.
        let victim_activations = self.row_counters(&runner, &victim_row_addr);

        // --- Probe phase ---------------------------------------------------
        // The attacker activates rows round-robin with a think time larger
        // than tABOACT so the spike is observed on the access immediately
        // after the one that triggered the Alert.
        let mut attacker = SerializedAccessAgent::new(
            attacker_row_addr.clone(),
            u64::from(self.nbo) * T_TABLE_CACHE_LINES as u64,
        )
        .with_think_time(800);
        runner.run(
            &mut [&mut attacker],
            u64::from(self.nbo) * T_TABLE_CACHE_LINES as u64 * 2_000 + 200_000,
        );

        let detector = SpikeDetector::default();
        let latencies = attacker.latencies_ns();
        let first_spike = detector.first_spike(&latencies);
        let leaked_row = first_spike.map(|idx| {
            // Attribute the spike to the access issued immediately before the
            // stalled one (the one whose activation crossed the threshold).
            let trigger = idx.saturating_sub(1);
            trigger % T_TABLE_CACHE_LINES
        });
        let attacker_activations_to_leaked_row = match (first_spike, leaked_row) {
            (Some(idx), Some(row)) => attacker
                .history
                .iter()
                .take(idx)
                .filter(|a| a.address == attacker_row_addr[row])
                .count() as u32,
            _ => 0,
        };

        let rfm_log = runner.controller().rfm_log().to_vec();
        SideChannelOutcome {
            k0,
            p0,
            true_nibble: k0 >> 4,
            leaked_row,
            attacker_activations_to_leaked_row,
            victim_activations,
            attacker_latencies_ns: latencies,
            abo_rfms: runner.controller().stats().abo_rfms,
            tb_rfms: runner.controller().stats().tb_rfms,
            rfm_times_ns: rfm_log.iter().map(|(t, _)| *t as f64 * 0.25).collect(),
        }
    }

    /// Sweeps every value of key byte 0 (stepping by `step`) with `p0 = 0`,
    /// reproducing Figures 5 and 9.
    #[must_use]
    pub fn sweep_key_byte(&self, step: usize) -> Vec<SideChannelOutcome> {
        (0..256usize)
            .step_by(step.max(1))
            .map(|k0| self.run_for_key_byte(k0 as u8, 0))
            .collect()
    }

    fn row_counters(&self, runner: &MultiAgentRunner, row_addresses: &[u64]) -> Vec<u64> {
        row_addresses
            .iter()
            .map(|&addr| {
                let decoded = runner.controller().decode_address(addr);
                let org = runner.controller().device().config().organization;
                u64::from(
                    runner
                        .controller()
                        .device()
                        .bank(decoded.flat_bank(&org))
                        .counter(decoded.row),
                )
            })
            .collect()
    }
}

/// A victim agent that walks a precomputed access list.
#[derive(Debug)]
struct VictimAgent {
    inner: SerializedAccessAgent,
}

impl VictimAgent {
    fn new(accesses: Vec<u64>) -> Self {
        let count = accesses.len() as u64;
        Self {
            inner: SerializedAccessAgent::new(accesses, count),
        }
    }
}

impl crate::agents::MemoryAgent for VictimAgent {
    fn next_action(&mut self, now: u64) -> crate::agents::AgentAction {
        self.inner.next_action(now)
    }

    fn on_completion(&mut self, access: crate::agents::RecordedAccess) {
        self.inner.on_completion(access);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
}

/// Result of one side-channel run for a single key byte value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SideChannelOutcome {
    /// The true secret key byte.
    pub k0: u8,
    /// The chosen plaintext byte.
    pub p0: u8,
    /// The key nibble the attack is trying to recover (`k0 >> 4` when
    /// `p0 = 0`).
    pub true_nibble: u8,
    /// The DRAM row (T0 cache-line index) the attacker attributes the first
    /// RFM to; `None` when no spike was observed.
    pub leaked_row: Option<usize>,
    /// Attacker activations to the leaked row before the spike
    /// (Figure 5(b)): victim + attacker activations sum to `NBO`.
    pub attacker_activations_to_leaked_row: u32,
    /// Victim-phase activation counts for the 16 T0 rows (Figure 5(a)).
    pub victim_activations: Vec<u64>,
    /// Attacker probe-phase latencies in nanoseconds (Figure 4, top panel).
    pub attacker_latencies_ns: Vec<f64>,
    /// ABO-triggered RFMs observed during the run.
    pub abo_rfms: u64,
    /// TPRAC Timing-Based RFMs observed during the run.
    pub tb_rfms: u64,
    /// Times (ns) of all RFMs issued during the run (Figure 4, middle panel).
    pub rfm_times_ns: Vec<f64>,
}

impl SideChannelOutcome {
    /// Whether the attack recovered the correct key nibble
    /// (leaked row index == top nibble of `p0 XOR k0`).
    #[must_use]
    pub fn nibble_recovered(&self) -> bool {
        self.leaked_row == Some(usize::from((self.p0 ^ self.k0) >> 4))
    }

    /// The row the victim activated most during its phase.
    #[must_use]
    pub fn hottest_victim_row(&self) -> Option<usize> {
        self.victim_activations
            .iter()
            .enumerate()
            .max_by_key(|(_, &count)| count)
            .map(|(row, _)| row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::security::CounterResetPolicy;
    use prac_core::timing::DramTimingSummary;
    use prac_core::tprac::TpracConfig;

    fn quick_attack() -> SideChannelExperiment {
        SideChannelExperiment {
            nbo: 128,
            encryptions: 100,
            policy: MitigationPolicy::AboOnly,
            seed: 42,
        }
    }

    #[test]
    fn victim_phase_makes_the_key_row_hottest() {
        let outcome = quick_attack().run_for_key_byte(0x70, 0);
        assert_eq!(outcome.hottest_victim_row(), Some(7));
        // The hot row sees roughly one access per encryption plus background.
        assert!(outcome.victim_activations[7] >= 100);
        let cold_max = outcome
            .victim_activations
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != 7)
            .map(|(_, &c)| c)
            .max()
            .unwrap();
        assert!(outcome.victim_activations[7] > cold_max * 2);
    }

    #[test]
    fn attack_recovers_key_nibble_without_defense() {
        for k0 in [0x00u8, 0x30, 0xA0, 0xF0] {
            let outcome = quick_attack().run_for_key_byte(k0, 0);
            assert!(
                outcome.abo_rfms >= 1,
                "attack needs an ABO-RFM (k0={k0:#x})"
            );
            assert!(
                outcome.nibble_recovered(),
                "expected nibble {:#x}, leaked row {:?}",
                k0 >> 4,
                outcome.leaked_row
            );
        }
    }

    #[test]
    fn victim_and_attacker_activations_sum_to_nbo() {
        let exp = quick_attack();
        let outcome = exp.run_for_key_byte(0x50, 0);
        assert!(outcome.nibble_recovered());
        let row = outcome.leaked_row.unwrap();
        let total =
            outcome.victim_activations[row] + u64::from(outcome.attacker_activations_to_leaked_row);
        // The triggering activation itself may or may not be included in the
        // attacker count depending on attribution, so allow ±2.
        assert!(
            (u64::from(exp.nbo) - 2..=u64::from(exp.nbo) + 2).contains(&total),
            "victim ({}) + attacker ({}) should equal NBO ({})",
            outcome.victim_activations[row],
            outcome.attacker_activations_to_leaked_row,
            exp.nbo
        );
    }

    #[test]
    fn chosen_plaintext_byte_shifts_the_leaked_row() {
        // With p0 != 0 the hot line is (p0 XOR k0) >> 4.
        let outcome = quick_attack().run_for_key_byte(0x20, 0x70);
        assert_eq!(outcome.hottest_victim_row(), Some(0x5));
        assert!(outcome.nibble_recovered());
    }

    #[test]
    fn tprac_defense_eliminates_abo_rfms_and_hides_the_key() {
        let timing = DramTimingSummary::ddr5_8000b();
        let tprac =
            TpracConfig::solve_for_threshold(128, &timing, CounterResetPolicy::ResetEveryTrefw)
                .expect("a safe TB-Window exists for NBO=128");
        let exp = quick_attack().with_policy(MitigationPolicy::Tprac(tprac));
        let mut correct = 0;
        for k0 in [0x10u8, 0x60, 0xC0] {
            let outcome = exp.run_for_key_byte(k0, 0);
            assert_eq!(outcome.abo_rfms, 0, "TPRAC must prevent every ABO-RFM");
            assert!(outcome.tb_rfms > 0, "TB-RFMs must still be issued");
            if outcome.nibble_recovered() {
                correct += 1;
            }
        }
        assert!(
            correct < 3,
            "with TPRAC the attack must not reliably recover key nibbles"
        );
    }
}
