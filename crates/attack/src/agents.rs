//! Memory agents and the lock-step multi-agent runner.
//!
//! The PRACLeak experiments follow Ramulator2's trace mode: each actor
//! (victim, attacker, trojan, spy) is a stream of *dependent* memory accesses
//! — the next access is only issued once the previous one has completed, so
//! every access's latency is directly observable by the actor, exactly the
//! measurement a real attacker makes with a timed pointer chase.
//!
//! [`MultiAgentRunner`] multiplexes several agents onto one
//! [`MemoryController`]: each tick it lets every idle agent enqueue its next
//! access, advances the controller, and routes completions (with their
//! latencies) back to the owning agent.

use memctrl::controller::MemoryController;
use memctrl::mapping::AddressMapping;
use memctrl::request::MemoryRequest;
use serde::{Deserialize, Serialize};
use workloads::attack::{AttackAccess, AttackPattern};

/// Identifier of an agent within a [`MultiAgentRunner`].
pub type AgentId = u32;

/// One recorded access of an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedAccess {
    /// Tick at which the access was enqueued.
    pub issue_tick: u64,
    /// Tick at which the data returned.
    pub completion_tick: u64,
    /// Physical address accessed.
    pub address: u64,
}

impl RecordedAccess {
    /// Observed latency in ticks.
    #[must_use]
    pub fn latency_ticks(&self) -> u64 {
        self.completion_tick.saturating_sub(self.issue_tick)
    }

    /// Observed latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.latency_ticks() as f64 * 0.25
    }
}

/// What an agent wants to do when asked for its next access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentAction {
    /// Issue a read to the given physical address.
    Access(u64),
    /// Do nothing this tick (the agent is waiting for a point in time).
    Idle,
    /// The agent has finished its script.
    Done,
}

/// An actor issuing serialized (dependent) memory accesses.
pub trait MemoryAgent: std::fmt::Debug {
    /// Called whenever the agent has no outstanding access.
    fn next_action(&mut self, now: u64) -> AgentAction;

    /// Called when the agent's outstanding access completes.
    fn on_completion(&mut self, access: RecordedAccess);

    /// `true` once the agent has nothing further to do.
    fn is_done(&self) -> bool;
}

/// A scripted agent that walks a fixed address list (optionally in a loop),
/// recording the latency of every access.
#[derive(Debug, Clone)]
pub struct SerializedAccessAgent {
    addresses: Vec<u64>,
    position: usize,
    remaining_accesses: u64,
    /// Delay (in ticks) inserted between a completion and the next issue.
    think_time: u64,
    earliest_next_issue: u64,
    /// Recorded accesses, in completion order.
    pub history: Vec<RecordedAccess>,
}

impl SerializedAccessAgent {
    /// Creates an agent that performs `total_accesses` accesses round-robin
    /// over `addresses`.
    #[must_use]
    pub fn new(addresses: Vec<u64>, total_accesses: u64) -> Self {
        Self {
            addresses,
            position: 0,
            remaining_accesses: total_accesses,
            think_time: 0,
            earliest_next_issue: 0,
            history: Vec::new(),
        }
    }

    /// Adds a fixed think time between consecutive accesses.
    #[must_use]
    pub fn with_think_time(mut self, ticks: u64) -> Self {
        self.think_time = ticks;
        self
    }

    /// Delays the agent's first access until `tick`.
    #[must_use]
    pub fn starting_at(mut self, tick: u64) -> Self {
        self.earliest_next_issue = tick;
        self
    }

    /// Latencies (in nanoseconds) of all completed accesses, in order.
    #[must_use]
    pub fn latencies_ns(&self) -> Vec<f64> {
        self.history
            .iter()
            .map(RecordedAccess::latency_ns)
            .collect()
    }
}

impl MemoryAgent for SerializedAccessAgent {
    fn next_action(&mut self, now: u64) -> AgentAction {
        if self.remaining_accesses == 0 || self.addresses.is_empty() {
            return AgentAction::Done;
        }
        if now < self.earliest_next_issue {
            return AgentAction::Idle;
        }
        let addr = self.addresses[self.position % self.addresses.len()];
        self.position += 1;
        self.remaining_accesses -= 1;
        AgentAction::Access(addr)
    }

    fn on_completion(&mut self, access: RecordedAccess) {
        self.earliest_next_issue = access.completion_tick + self.think_time;
        self.history.push(access);
    }

    fn is_done(&self) -> bool {
        self.remaining_accesses == 0
    }
}

/// A memory agent driving a pluggable [`AttackPattern`]: the bridge between
/// the declarative adversary API in `workloads::attack` and the serialized
/// access model of the [`MultiAgentRunner`].  The pattern emits DRAM
/// coordinates; the agent encodes them through the experiment's address
/// mapping, honours the pattern's burst gating
/// ([`AttackAccess::not_before`]), and tracks which aggressor rows were
/// actually reached so harnesses can report aggressor coverage.
#[derive(Debug)]
pub struct PatternAgent {
    pattern: Box<dyn AttackPattern>,
    mapping: Box<dyn AddressMapping>,
    remaining_accesses: u64,
    /// An access pulled from the pattern but gated into the future.
    pending: Option<AttackAccess>,
    completed: u64,
    hot_rows: std::collections::HashSet<(u32, u32, u32, u32, u32)>,
    touched_rows: std::collections::HashSet<(u32, u32, u32, u32, u32)>,
}

fn row_key(address: &dram_sim::org::DramAddress) -> (u32, u32, u32, u32, u32) {
    (
        address.channel,
        address.rank,
        address.bank_group,
        address.bank,
        address.row,
    )
}

impl PatternAgent {
    /// Creates an agent performing `total_accesses` accesses of `pattern`,
    /// encoded through `mapping`.
    #[must_use]
    pub fn new(
        pattern: Box<dyn AttackPattern>,
        mapping: Box<dyn AddressMapping>,
        total_accesses: u64,
    ) -> Self {
        let hot_rows = pattern.hot_rows().iter().map(row_key).collect();
        Self {
            pattern,
            mapping,
            remaining_accesses: total_accesses,
            pending: None,
            completed: 0,
            hot_rows,
            touched_rows: std::collections::HashSet::new(),
        }
    }

    /// Accesses completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of aggressor rows the pattern declares.
    #[must_use]
    pub fn aggressor_rows(&self) -> usize {
        self.hot_rows.len()
    }

    /// Fraction of the pattern's aggressor rows the agent has issued at
    /// least one access to (`0.0` for a pattern with no hot rows).
    #[must_use]
    pub fn aggressor_coverage(&self) -> f64 {
        if self.hot_rows.is_empty() {
            return 0.0;
        }
        let touched = self.touched_rows.intersection(&self.hot_rows).count();
        touched as f64 / self.hot_rows.len() as f64
    }
}

impl MemoryAgent for PatternAgent {
    fn next_action(&mut self, now: u64) -> AgentAction {
        if self.remaining_accesses == 0 {
            return AgentAction::Done;
        }
        let access = match self.pending.take() {
            Some(access) => access,
            None => self.pattern.next_access(now),
        };
        if access.not_before > now {
            self.pending = Some(access);
            return AgentAction::Idle;
        }
        self.remaining_accesses -= 1;
        if access.aggressor {
            self.touched_rows.insert(row_key(&access.address));
        }
        AgentAction::Access(self.mapping.encode(&access.address))
    }

    fn on_completion(&mut self, _access: RecordedAccess) {
        self.completed += 1;
    }

    fn is_done(&self) -> bool {
        self.remaining_accesses == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    agent: AgentId,
    issue_tick: u64,
    address: u64,
}

/// Runs several agents against one memory controller in lock step.
#[derive(Debug)]
pub struct MultiAgentRunner {
    controller: MemoryController,
    now: u64,
    next_request_id: u64,
}

impl MultiAgentRunner {
    /// Wraps a controller, starting the shared clock at tick 0.
    #[must_use]
    pub fn new(controller: MemoryController) -> Self {
        Self {
            controller,
            now: 0,
            next_request_id: 0,
        }
    }

    /// The wrapped controller (read-only).
    #[must_use]
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// The current simulation tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until every agent reports done (or `max_ticks` elapse).  Returns
    /// the tick at which the run stopped.
    pub fn run(&mut self, agents: &mut [&mut dyn MemoryAgent], max_ticks: u64) -> u64 {
        let deadline = self.now + max_ticks;
        let mut outstanding: Vec<Option<Outstanding>> = vec![None; agents.len()];
        while self.now < deadline {
            if agents.iter().all(|a| a.is_done()) && outstanding.iter().all(Option::is_none) {
                break;
            }
            // Let every idle agent enqueue its next access.
            for (idx, agent) in agents.iter_mut().enumerate() {
                if outstanding[idx].is_some() || agent.is_done() {
                    continue;
                }
                if !self.controller.can_accept() {
                    break;
                }
                match agent.next_action(self.now) {
                    AgentAction::Access(address) => {
                        let id = self.next_request_id;
                        self.next_request_id += 1;
                        let accepted = self
                            .controller
                            .enqueue(MemoryRequest::read(id, address, idx as u32, self.now));
                        debug_assert!(accepted, "queue admission was checked above");
                        outstanding[idx] = Some(Outstanding {
                            agent: idx as AgentId,
                            issue_tick: self.now,
                            address,
                        });
                    }
                    AgentAction::Idle | AgentAction::Done => {}
                }
            }
            // Advance the controller one tick and deliver completions.
            for completion in self.controller.tick(self.now) {
                let agent_idx = completion.core as usize;
                if let Some(Some(out)) = outstanding.get(agent_idx) {
                    let record = RecordedAccess {
                        issue_tick: out.issue_tick,
                        completion_tick: completion.completion_tick,
                        address: out.address,
                    };
                    debug_assert_eq!(out.agent as usize, agent_idx);
                    agents[agent_idx].on_completion(record);
                    outstanding[agent_idx] = None;
                }
            }
            self.now += 1;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::device::DramDeviceConfig;
    use memctrl::controller::{ControllerConfig, PagePolicy};
    use memctrl::mapping::MappingKind;
    use prac_core::config::PracConfig;

    fn controller(nbo: u32) -> MemoryController {
        let prac = PracConfig::builder()
            .rowhammer_threshold(nbo)
            .back_off_threshold(nbo)
            .build();
        let device = DramDeviceConfig::tiny_for_tests(prac);
        let config = ControllerConfig {
            mapping: MappingKind::RowInterleaved,
            page_policy: PagePolicy::Closed,
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        MemoryController::new(device, config)
    }

    fn address_of(ctrl: &MemoryController, bank_group: u32, row: u32, col: u32) -> u64 {
        let org = ctrl.device().config().organization;
        ctrl.encode_address(&dram_sim::org::DramAddress::new(
            &org, 0, bank_group, 0, row, col,
        ))
    }

    #[test]
    fn single_agent_completes_all_accesses() {
        let ctrl = controller(1024);
        let addr = address_of(&ctrl, 0, 3, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], 10);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut agent], 1_000_000);
        assert!(agent.is_done());
        assert_eq!(agent.history.len(), 10);
        for access in &agent.history {
            assert!(access.latency_ticks() > 0);
            assert_eq!(access.address, addr);
        }
    }

    #[test]
    fn accesses_are_serialized_per_agent() {
        let ctrl = controller(1024);
        let addr = address_of(&ctrl, 0, 3, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], 5);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut agent], 1_000_000);
        for pair in agent.history.windows(2) {
            assert!(
                pair[1].issue_tick >= pair[0].completion_tick,
                "next access must only issue after the previous completes"
            );
        }
    }

    #[test]
    fn think_time_spaces_accesses() {
        let ctrl = controller(1024);
        let addr = address_of(&ctrl, 0, 3, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], 4).with_think_time(1_000);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut agent], 1_000_000);
        for pair in agent.history.windows(2) {
            assert!(pair[1].issue_tick >= pair[0].completion_tick + 1_000);
        }
    }

    #[test]
    fn two_agents_in_different_banks_both_make_progress() {
        let ctrl = controller(1024);
        let a0 = address_of(&ctrl, 0, 1, 0);
        let a1 = address_of(&ctrl, 1, 1, 0);
        let mut spy = SerializedAccessAgent::new(vec![a0], 50);
        let mut trojan = SerializedAccessAgent::new(vec![a1], 50);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut spy, &mut trojan], 5_000_000);
        assert!(spy.is_done());
        assert!(trojan.is_done());
        assert_eq!(spy.history.len(), 50);
        assert_eq!(trojan.history.len(), 50);
    }

    #[test]
    fn closed_page_policy_makes_every_access_an_activation() {
        let ctrl = controller(4096);
        let addr = address_of(&ctrl, 0, 5, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], 20);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut agent], 1_000_000);
        // Under the closed-page policy each serialized access re-activates
        // the row, so the PRAC counter tracks the access count.
        let decoded = runner.controller().decode_address(addr);
        let org = runner.controller().device().config().organization;
        let bank = runner.controller().device().bank(decoded.flat_bank(&org));
        assert_eq!(bank.counter(decoded.row), 20);
    }

    #[test]
    fn runner_respects_max_ticks() {
        let ctrl = controller(1024);
        let addr = address_of(&ctrl, 0, 3, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], u64::MAX);
        let mut runner = MultiAgentRunner::new(ctrl);
        let stopped_at = runner.run(&mut [&mut agent], 10_000);
        assert!(stopped_at <= 10_000);
        assert!(!agent.is_done());
        assert!(!agent.history.is_empty());
    }

    #[test]
    fn starting_at_delays_first_access() {
        let ctrl = controller(1024);
        let addr = address_of(&ctrl, 0, 3, 0);
        let mut agent = SerializedAccessAgent::new(vec![addr], 1).starting_at(5_000);
        let mut runner = MultiAgentRunner::new(ctrl);
        runner.run(&mut [&mut agent], 100_000);
        assert_eq!(agent.history.len(), 1);
        assert!(agent.history[0].issue_tick >= 5_000);
    }
}
