//! PRACLeak covert channels (Section 3.2, Table 2).
//!
//! Two channels between a trojan (sender) and a spy (receiver) sharing a
//! DRAM module:
//!
//! * **Activity-based** — sender and receiver use *different banks*.  To send
//!   a '1' the sender activates one of its rows `NBO` times within the bit
//!   window, triggering an Alert Back-Off whose RFM stalls the whole channel;
//!   to send a '0' it stays idle.  The receiver times its own accesses and
//!   decodes the bit from the presence or absence of a latency spike in the
//!   window.  One bit per window.
//! * **Activation-count-based** — sender and receiver share a *DRAM row*
//!   (different pages mapped to the same row under bank-striped mapping).
//!   The sender encodes a value `k < NBO` by activating the shared row `k`
//!   times; the receiver then activates the same row until it observes the
//!   ABO-induced spike after `NBO − k` of its own activations, recovering
//!   `k` exactly — `log2(NBO)` bits per window.

use prac_core::config::PracLevel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::agents::{
    AgentAction, MemoryAgent, MultiAgentRunner, RecordedAccess, SerializedAccessAgent,
};
use crate::latency::SpikeDetector;
use crate::setup::AttackSetup;

/// Which covert channel variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CovertChannelKind {
    /// Sender and receiver in different banks; 1 bit per window.
    ActivityBased,
    /// Sender and receiver share a DRAM row; `log2(NBO)` bits per window.
    ActivationCountBased,
}

/// Result of a covert-channel run (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CovertChannelResult {
    /// Channel variant.
    pub kind: CovertChannelKind,
    /// Back-Off threshold used.
    pub nbo: u32,
    /// Transmission period (time per symbol) in microseconds.
    pub transmission_period_us: f64,
    /// Achieved bitrate in kilobits per second.
    pub bitrate_kbps: f64,
    /// Number of payload bits transmitted.
    pub bits_transmitted: u64,
    /// Number of bits decoded incorrectly.
    pub bit_errors: u64,
}

impl CovertChannelResult {
    /// Bit error rate of the run.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.bits_transmitted == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_transmitted as f64
        }
    }
}

/// Sender for the activity-based channel: for each bit, either hammers its
/// row `NBO` times (bit = 1) or idles until the end of the window (bit = 0).
#[derive(Debug)]
struct ActivitySender {
    row_address: u64,
    bits: Vec<bool>,
    nbo: u32,
    window_ticks: u64,
    current_bit: usize,
    accesses_left_in_bit: u32,
}

impl ActivitySender {
    fn new(row_address: u64, bits: Vec<bool>, nbo: u32, window_ticks: u64) -> Self {
        let first_active = bits.first().copied().unwrap_or(false);
        Self {
            row_address,
            bits,
            nbo,
            window_ticks,
            current_bit: 0,
            accesses_left_in_bit: if first_active { nbo } else { 0 },
        }
    }

    fn window_end(&self) -> u64 {
        (self.current_bit as u64 + 1) * self.window_ticks
    }
}

impl MemoryAgent for ActivitySender {
    fn next_action(&mut self, now: u64) -> AgentAction {
        if self.current_bit >= self.bits.len() {
            return AgentAction::Done;
        }
        if now >= self.window_end() {
            // Advance to the next bit window.
            self.current_bit += 1;
            if self.current_bit >= self.bits.len() {
                return AgentAction::Done;
            }
            self.accesses_left_in_bit = if self.bits[self.current_bit] {
                self.nbo
            } else {
                0
            };
        }
        if self.accesses_left_in_bit > 0 {
            self.accesses_left_in_bit -= 1;
            AgentAction::Access(self.row_address)
        } else {
            AgentAction::Idle
        }
    }

    fn on_completion(&mut self, _access: RecordedAccess) {}

    fn is_done(&self) -> bool {
        self.current_bit >= self.bits.len()
    }
}

/// Runs the selected covert channel, transmitting `payload_bits` random bits
/// (or symbols) and measuring period, bitrate and error rate.
#[must_use]
pub fn run_covert_channel(
    kind: CovertChannelKind,
    nbo: u32,
    payload_symbols: usize,
    seed: u64,
) -> CovertChannelResult {
    match kind {
        CovertChannelKind::ActivityBased => run_activity_based(nbo, payload_symbols, seed),
        CovertChannelKind::ActivationCountBased => {
            run_activation_count_based(nbo, payload_symbols, seed)
        }
    }
}

fn run_activity_based(nbo: u32, payload_bits: usize, seed: u64) -> CovertChannelResult {
    let setup = AttackSetup::new(nbo).with_prac_level(PracLevel::One);
    let controller = setup.build_controller();

    let mut rng = StdRng::seed_from_u64(seed);
    let bits: Vec<bool> = (0..payload_bits).map(|_| rng.gen_bool(0.5)).collect();

    // Window: NBO serialized activations (each ~ tRC + read latency at the
    // controller) plus the RFM stall, with ~30% slack for queueing.
    let per_access_ticks = 4 * (52 + 36 + 20);
    let window_ticks = (u64::from(nbo) * per_access_ticks * 13) / 10 + 1_400;

    // Sender row in bank-group 0; receiver rotates over rows in bank-group 2.
    let sender_row = setup.row_address(&controller, 0, 99, 0);
    let receiver_rows: Vec<u64> = (0..64u32)
        .map(|r| setup.row_address(&controller, 2, 5_000 + r, 0))
        .collect();

    let mut sender = ActivitySender::new(sender_row, bits.clone(), nbo, window_ticks);
    let mut receiver = SerializedAccessAgent::new(receiver_rows, u64::MAX);
    let mut runner = MultiAgentRunner::new(controller);
    let total_ticks = window_ticks * bits.len() as u64 + window_ticks;
    runner.run(&mut [&mut sender, &mut receiver], total_ticks);

    // Decode: a bit window containing at least one latency spike is a '1'.
    let detector = SpikeDetector::default();
    let mut decoded = vec![false; bits.len()];
    for access in &receiver.history {
        if detector.is_spike(access.latency_ns()) {
            let window = (access.completion_tick / window_ticks) as usize;
            if window < decoded.len() {
                decoded[window] = true;
            }
        }
    }
    let bit_errors = bits
        .iter()
        .zip(&decoded)
        .filter(|(sent, got)| sent != got)
        .count() as u64;

    let period_us = window_ticks as f64 * 0.25 / 1000.0;
    CovertChannelResult {
        kind: CovertChannelKind::ActivityBased,
        nbo,
        transmission_period_us: period_us,
        bitrate_kbps: 1.0 / period_us * 1000.0,
        bits_transmitted: bits.len() as u64,
        bit_errors,
    }
}

fn run_activation_count_based(nbo: u32, payload_symbols: usize, seed: u64) -> CovertChannelResult {
    let setup = AttackSetup::new(nbo).with_prac_level(PracLevel::One);
    let bits_per_symbol = 32 - (nbo - 1).leading_zeros().min(31);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let symbols: Vec<u32> = (0..payload_symbols)
        .map(|_| rng.gen_range(0..nbo))
        .collect();

    let mut total_period_ticks = 0u64;
    let mut errors_in_bits = 0u64;
    // Think time between receiver probes, chosen so that the probe following
    // the threshold-crossing one is always issued *inside* the ABO-RFM's
    // blocking window (which opens tABOACT = 180 ns after the Alert): the
    // spike is then observed on probe `t + 1` with a latency well above the
    // detector threshold, and the decode recovers the sender's count exactly.
    let receiver_think_ticks = 800u64;

    // Each symbol is transmitted in its own sub-run: the RFM that terminates
    // the receiver's probe also resets the shared row's counter, so symbols
    // are independent. Running them back-to-back in one simulation or in
    // separate simulations is equivalent; separate runs keep the decoding
    // logic obvious.
    for &k in &symbols {
        let controller = setup.build_controller();
        let shared_row_sender = setup.row_address(&controller, 0, 333, 0);
        let shared_row_receiver = setup.row_address(&controller, 0, 333, 8);

        // Phase 1: the sender activates the shared row k times.
        let mut sender = SerializedAccessAgent::new(vec![shared_row_sender], u64::from(k));
        let mut runner = MultiAgentRunner::new(controller);
        let start = runner.now();
        runner.run(&mut [&mut sender], 4 * u64::from(nbo) * 600 + 10_000);

        // Phase 2: the receiver activates the same row until the ABO spike.
        let mut receiver =
            SerializedAccessAgent::new(vec![shared_row_receiver], u64::from(nbo) + 4)
                .with_think_time(receiver_think_ticks);
        runner.run(
            &mut [&mut receiver],
            (4 * 600 + receiver_think_ticks) * u64::from(nbo) + 100_000,
        );
        let end = runner.now();
        total_period_ticks += end - start;

        // Decode: the spike is observed on the probe right after the one that
        // crossed the threshold, so the number of probes completed *before*
        // the spiked one equals NBO - k.
        let detector = SpikeDetector::default();
        let latencies = receiver.latencies_ns();
        let decoded = match detector.first_spike(&latencies) {
            Some(first_spike) => nbo.saturating_sub(first_spike.min(usize::from(u16::MAX)) as u32),
            None => 0,
        };
        if decoded != k {
            errors_in_bits += u64::from((decoded ^ k).count_ones());
        }
    }

    let symbols_count = symbols.len().max(1) as u64;
    let period_us = total_period_ticks as f64 * 0.25 / 1000.0 / symbols_count as f64;
    let bits_transmitted = symbols_count * u64::from(bits_per_symbol);
    CovertChannelResult {
        kind: CovertChannelKind::ActivationCountBased,
        nbo,
        transmission_period_us: period_us,
        bitrate_kbps: f64::from(bits_per_symbol) / period_us * 1000.0,
        bits_transmitted,
        bit_errors: errors_in_bits,
    }
}

/// Runs both channel variants for the NBO sweep of Table 2
/// (256, 512 and 1024).
#[must_use]
pub fn table2_sweep(symbols_per_point: usize, seed: u64) -> Vec<CovertChannelResult> {
    let mut out = Vec::new();
    for &nbo in &[256u32, 512, 1024] {
        out.push(run_covert_channel(
            CovertChannelKind::ActivityBased,
            nbo,
            symbols_per_point,
            seed,
        ));
        out.push(run_covert_channel(
            CovertChannelKind::ActivationCountBased,
            nbo,
            symbols_per_point,
            seed,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_based_channel_decodes_random_bits() {
        let result = run_covert_channel(CovertChannelKind::ActivityBased, 64, 12, 3);
        assert_eq!(result.bits_transmitted, 12);
        assert_eq!(
            result.bit_errors, 0,
            "activity-based channel should be error free at small NBO: {result:?}"
        );
        assert!(result.transmission_period_us > 1.0);
        assert!(result.bitrate_kbps > 10.0);
    }

    #[test]
    fn activation_count_channel_recovers_exact_values() {
        let result = run_covert_channel(CovertChannelKind::ActivationCountBased, 64, 6, 11);
        assert_eq!(
            result.bit_errors, 0,
            "count-based channel must be exact: {result:?}"
        );
        assert_eq!(result.bits_transmitted, 6 * 6); // log2(64) bits per symbol
    }

    #[test]
    fn count_based_channel_carries_more_bits_per_second_than_activity_based() {
        let activity = run_covert_channel(CovertChannelKind::ActivityBased, 64, 8, 5);
        let count = run_covert_channel(CovertChannelKind::ActivationCountBased, 64, 8, 5);
        assert!(
            count.bitrate_kbps > activity.bitrate_kbps,
            "count-based {count:?} should beat activity-based {activity:?}"
        );
        // And its period is roughly twice as long (two NBO-long phases).
        assert!(count.transmission_period_us > activity.transmission_period_us);
    }

    #[test]
    fn bitrate_decreases_with_nbo() {
        let small = run_covert_channel(CovertChannelKind::ActivityBased, 64, 4, 9);
        let large = run_covert_channel(CovertChannelKind::ActivityBased, 256, 4, 9);
        assert!(small.bitrate_kbps > large.bitrate_kbps);
        assert!(small.transmission_period_us < large.transmission_period_us);
    }

    #[test]
    fn error_rate_is_fraction_of_bits() {
        let r = CovertChannelResult {
            kind: CovertChannelKind::ActivityBased,
            nbo: 256,
            transmission_period_us: 10.0,
            bitrate_kbps: 100.0,
            bits_transmitted: 100,
            bit_errors: 3,
        };
        assert!((r.error_rate() - 0.03).abs() < 1e-12);
    }
}
