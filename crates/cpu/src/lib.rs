//! # cpu-sim
//!
//! A trace-driven multi-core CPU model with a three-level cache hierarchy,
//! used as the processor substrate of the reproduction (standing in for
//! ChampSim in the paper's evaluation stack).
//!
//! The model is deliberately simpler than a full out-of-order simulator while
//! retaining the properties the memory-system study depends on:
//!
//! * a **reorder-buffer-limited core** ([`core_model::Core`]): instructions
//!   issue in order up to the issue width, retire in order up to the retire
//!   width, and loads block retirement until their data returns — so memory
//!   latency and bandwidth changes translate into IPC changes,
//! * **private L1D and L2 caches plus a shared LLC** with MSHR-style limits
//!   on outstanding misses, write-back/write-allocate behaviour, LRU or
//!   SRRIP replacement and an optional IP-stride prefetcher,
//! * **`clflush` support**, required by the AES T-table side-channel attack,
//! * trace representation and statistics (IPC, weighted speedup) used by the
//!   performance experiments.
//!
//! Memory-system interaction is abstracted through the
//! [`core_model::MemoryPort`] trait so this crate stays independent of the
//! DRAM/ controller crates; the `system-sim` crate wires the two together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod cluster;
pub mod config;
pub mod core_model;
pub mod prefetch;
pub mod stats;
pub mod trace;

pub use cache::{AccessOutcome, Cache, CacheConfig, ReplacementPolicy};
pub use cluster::{ClusterOutput, CpuCluster};
pub use config::CpuConfig;
pub use core_model::{Core, CoreMemoryRequest, MemoryPort};
pub use stats::{weighted_speedup, CoreStats};
pub use trace::{Trace, TraceOp};
