//! IP-stride prefetcher (the paper's L1D prefetcher).
//!
//! The prefetcher tracks, per load instruction pointer, the last address and
//! the last observed stride.  When two consecutive accesses from the same IP
//! exhibit the same stride, the prefetcher predicts the next address and asks
//! the hierarchy to prefetch it.  Because our traces do not carry real
//! instruction pointers, the core model uses a per-core synthetic IP derived
//! from the trace position of the load.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A single stride-table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct StrideEntry {
    last_address: u64,
    last_stride: i64,
    confidence: u8,
}

/// IP-indexed stride prefetcher.
#[derive(Debug, Clone, Default)]
pub struct StridePrefetcher {
    table: HashMap<u64, StrideEntry>,
    /// Prefetches generated (statistics).
    issued: u64,
    /// Maximum number of tracked IPs.
    capacity: usize,
}

impl StridePrefetcher {
    /// Creates a prefetcher tracking up to `capacity` instruction pointers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            table: HashMap::with_capacity(capacity),
            issued: 0,
            capacity: capacity.max(1),
        }
    }

    /// Observes a demand load from `ip` to `address`; returns an address to
    /// prefetch when the stride is confident.
    pub fn observe(&mut self, ip: u64, address: u64) -> Option<u64> {
        if self.table.len() >= self.capacity && !self.table.contains_key(&ip) {
            // Simple capacity control: drop the whole table when full; stride
            // state rebuilds within a couple of accesses.
            self.table.clear();
        }
        let entry = self.table.entry(ip).or_default();
        if entry.last_address == 0 {
            entry.last_address = address;
            return None;
        }
        let stride = address as i64 - entry.last_address as i64;
        let confident = stride != 0 && stride == entry.last_stride;
        entry.confidence = if confident {
            entry.confidence.saturating_add(1)
        } else {
            0
        };
        entry.last_stride = stride;
        entry.last_address = address;
        if entry.confidence >= 1 {
            let predicted = address.wrapping_add_signed(stride);
            self.issued += 1;
            Some(predicted)
        } else {
            None
        }
    }

    /// Number of prefetches issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_is_detected_after_two_observations() {
        let mut p = StridePrefetcher::new(64);
        assert_eq!(p.observe(1, 0x1000), None);
        assert_eq!(p.observe(1, 0x1040), None); // first stride observed
        assert_eq!(p.observe(1, 0x1080), Some(0x10C0));
        assert_eq!(p.observe(1, 0x10C0), Some(0x1100));
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn irregular_accesses_do_not_prefetch() {
        let mut p = StridePrefetcher::new(64);
        p.observe(2, 0x1000);
        p.observe(2, 0x5000);
        assert_eq!(p.observe(2, 0x2000), None);
        assert_eq!(p.observe(2, 0x9000), None);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn different_ips_are_tracked_independently() {
        let mut p = StridePrefetcher::new(64);
        p.observe(1, 0x1000);
        p.observe(2, 0x8000);
        p.observe(1, 0x1040);
        p.observe(2, 0x8080);
        assert_eq!(p.observe(1, 0x1080), Some(0x10C0));
        assert_eq!(p.observe(2, 0x8100), Some(0x8180));
    }

    #[test]
    fn capacity_overflow_clears_table_without_panicking() {
        let mut p = StridePrefetcher::new(2);
        for ip in 0..10u64 {
            p.observe(ip, ip * 0x1000 + 0x40);
        }
        // Still functional afterwards.
        p.observe(99, 0x1000);
        p.observe(99, 0x1040);
        assert_eq!(p.observe(99, 0x1080), Some(0x10C0));
    }

    #[test]
    fn negative_strides_are_supported() {
        let mut p = StridePrefetcher::new(16);
        p.observe(7, 0x4000);
        p.observe(7, 0x3FC0);
        assert_eq!(p.observe(7, 0x3F80), Some(0x3F40));
    }
}
