//! CPU and cache-hierarchy configuration (Table 3 of the paper).

use serde::{Deserialize, Serialize};

use crate::cache::{CacheConfig, ReplacementPolicy};

/// Configuration of one core and its share of the cache hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores in the cluster.
    pub cores: u32,
    /// Instructions issued into the ROB per cycle.
    pub issue_width: u32,
    /// Instructions retired from the ROB per cycle.
    pub retire_width: u32,
    /// Reorder-buffer capacity.
    pub rob_entries: u32,
    /// Maximum outstanding L1D misses per core (MSHRs).
    pub mshrs_per_core: u32,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Enable the IP-stride prefetcher at the L1D.
    pub stride_prefetcher: bool,
}

impl CpuConfig {
    /// The 4-core Sunny-Cove-like configuration from Table 3.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cores: 4,
            issue_width: 6,
            retire_width: 4,
            rob_entries: 352,
            mshrs_per_core: 16,
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                line_bytes: 64,
                hit_latency: 5,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 10,
                replacement: ReplacementPolicy::Lru,
            },
            llc: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                hit_latency: 20,
                replacement: ReplacementPolicy::Srrip,
            },
            stride_prefetcher: true,
        }
    }

    /// A small configuration for fast unit tests (tiny caches, 2 cores).
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        Self {
            cores: 2,
            issue_width: 4,
            retire_width: 4,
            rob_entries: 32,
            mshrs_per_core: 4,
            l1d: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
                hit_latency: 2,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
                hit_latency: 5,
                replacement: ReplacementPolicy::Lru,
            },
            llc: CacheConfig {
                size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 10,
                replacement: ReplacementPolicy::Srrip,
            },
            stride_prefetcher: false,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table3() {
        let c = CpuConfig::paper_default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.retire_width, 4);
        assert_eq!(c.rob_entries, 352);
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.replacement, ReplacementPolicy::Srrip);
    }

    #[test]
    fn tiny_config_has_valid_cache_geometry() {
        let c = CpuConfig::tiny_for_tests();
        for cache in [&c.l1d, &c.l2, &c.llc] {
            assert!(cache.sets() >= 1);
            assert!(cache.size_bytes % (cache.ways * cache.line_bytes) as u64 == 0);
        }
    }
}
