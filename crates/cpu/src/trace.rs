//! Instruction traces consumed by the core model.
//!
//! A trace is a compact sequence of [`TraceOp`]s.  Memory operations carry
//! the physical address of the cache line they touch; compute operations
//! carry only a count so long stretches of non-memory work stay cheap to
//! store.  Traces are replayed cyclically when a core needs more instructions
//! than the trace contains (the standard trace-simulation convention).

use serde::{Deserialize, Serialize};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// `n` back-to-back non-memory instructions.
    Compute(u32),
    /// A load from the given physical address.
    Load(u64),
    /// A store to the given physical address.
    Store(u64),
    /// A cache-line flush (`clflush`) of the given physical address; the line
    /// is invalidated in every cache level. Counts as one instruction.
    Flush(u64),
}

impl TraceOp {
    /// Number of retired instructions this record represents.
    #[must_use]
    pub fn instruction_count(&self) -> u64 {
        match self {
            TraceOp::Compute(n) => u64::from(*n),
            _ => 1,
        }
    }

    /// The memory address touched, if any.
    #[must_use]
    pub fn address(&self) -> Option<u64> {
        match self {
            TraceOp::Compute(_) => None,
            TraceOp::Load(a) | TraceOp::Store(a) | TraceOp::Flush(a) => Some(*a),
        }
    }
}

/// An instruction trace for one core.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates a named trace from its operations.
    #[must_use]
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        Self {
            name: name.into(),
            ops,
        }
    }

    /// The trace name (workload label).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw operations.
    #[must_use]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Total instructions represented by one pass over the trace.
    #[must_use]
    pub fn instructions_per_pass(&self) -> u64 {
        self.ops.iter().map(TraceOp::instruction_count).sum()
    }

    /// Number of memory operations (loads + stores + flushes) per pass.
    #[must_use]
    pub fn memory_ops_per_pass(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| !matches!(op, TraceOp::Compute(_)))
            .count() as u64
    }

    /// Whether the trace contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns a cursor that yields operations cyclically forever.
    #[must_use]
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            index: 0,
            wraps: 0,
        }
    }
}

/// Cyclic read cursor over a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    index: usize,
    wraps: u64,
}

impl<'a> TraceCursor<'a> {
    /// Next operation; `None` only when the trace is empty.
    pub fn next_op(&mut self) -> Option<TraceOp> {
        if self.trace.ops.is_empty() {
            return None;
        }
        let op = self.trace.ops[self.index];
        self.index += 1;
        if self.index == self.trace.ops.len() {
            self.index = 0;
            self.wraps += 1;
        }
        Some(op)
    }

    /// Number of complete passes over the trace so far.
    #[must_use]
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::new(
            "t",
            vec![
                TraceOp::Compute(10),
                TraceOp::Load(0x1000),
                TraceOp::Store(0x2000),
                TraceOp::Flush(0x1000),
            ],
        )
    }

    #[test]
    fn instruction_accounting() {
        let t = trace();
        assert_eq!(t.instructions_per_pass(), 13);
        assert_eq!(t.memory_ops_per_pass(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn addresses_only_for_memory_ops() {
        assert_eq!(TraceOp::Compute(5).address(), None);
        assert_eq!(TraceOp::Load(0x40).address(), Some(0x40));
        assert_eq!(TraceOp::Flush(0x80).address(), Some(0x80));
    }

    #[test]
    fn cursor_wraps_around() {
        let t = trace();
        let mut c = t.cursor();
        for _ in 0..4 {
            assert!(c.next_op().is_some());
        }
        assert_eq!(c.wraps(), 1);
        assert_eq!(c.next_op(), Some(TraceOp::Compute(10)));
    }

    #[test]
    fn empty_trace_yields_none() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.cursor().next_op(), None);
    }
}
