//! Per-core statistics and the weighted-speedup metric.

use serde::{Deserialize, Serialize};

/// Statistics accumulated by one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Demand loads that missed every cache level (went to DRAM).
    pub llc_misses: u64,
    /// Demand loads serviced by any cache level.
    pub cache_hits: u64,
    /// clflush operations executed.
    pub flushes: u64,
    /// Prefetch requests sent towards memory.
    pub prefetches: u64,
}

impl CoreStats {
    /// Instructions per cycle (0 when no cycles elapsed).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Row-buffer-miss-per-kilo-instruction proxy: LLC misses per 1000
    /// retired instructions (the paper's RBMPKI classification input).
    #[must_use]
    pub fn misses_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Weighted speedup of a multi-programmed run:
/// `Σ_i IPC_shared(i) / IPC_alone(i)`.
///
/// # Panics
///
/// Panics when the two slices have different lengths.
#[must_use]
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> f64 {
    assert_eq!(
        shared_ipc.len(),
        alone_ipc.len(),
        "weighted speedup needs one alone-IPC per core"
    );
    shared_ipc
        .iter()
        .zip(alone_ipc)
        .map(|(&s, &a)| if a > 0.0 { s / a } else { 0.0 })
        .sum()
}

/// Normalised performance of a protected configuration relative to a
/// baseline, computed from weighted speedups.
#[must_use]
pub fn normalized_performance(protected_ws: f64, baseline_ws: f64) -> f64 {
    if baseline_ws <= 0.0 {
        0.0
    } else {
        protected_ws / baseline_ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn ipc_and_mpki() {
        let s = CoreStats {
            instructions: 10_000,
            cycles: 5_000,
            llc_misses: 120,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.misses_per_kilo_instruction() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_core_count() {
        let ipc = [1.0, 2.0, 0.5, 1.5];
        assert!((weighted_speedup(&ipc, &ipc) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_degrades_with_slowdown() {
        let alone = [2.0, 2.0];
        let shared = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_alone_ipc_contributes_zero() {
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one alone-IPC per core")]
    fn mismatched_lengths_panic() {
        let _ = weighted_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalized_performance_ratios() {
        assert!((normalized_performance(3.8, 4.0) - 0.95).abs() < 1e-12);
        assert_eq!(normalized_performance(1.0, 0.0), 0.0);
    }
}
