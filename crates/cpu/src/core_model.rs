//! The ROB-limited, trace-driven core model.
//!
//! Each cycle the core:
//!
//! 1. retires up to `retire_width` completed instructions from the ROB head
//!    (in order; an incomplete load at the head stalls retirement),
//! 2. issues up to `issue_width` new instructions from its trace into the
//!    ROB, as long as ROB entries and MSHRs are available.
//!
//! Loads probe the L1D and L2 (private, owned by the core); on a private-cache
//! miss the access is forwarded to the shared LLC and — if that also misses —
//! to DRAM through the [`MemoryPort`] supplied by the caller each cycle.
//! Stores are modelled as write-allocate cache updates that retire
//! immediately (a perfect store buffer).  `clflush` invalidates the line in
//! every level the core can see.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::cache::Cache;
use crate::config::CpuConfig;
use crate::prefetch::StridePrefetcher;
use crate::stats::CoreStats;
use crate::trace::{Trace, TraceOp};

/// A memory request the core wants to send to the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMemoryRequest {
    /// Core-local request identifier (echoed back on completion).
    pub id: u64,
    /// Physical address of the cache line.
    pub address: u64,
    /// `true` for write-backs, `false` for demand/prefetch reads.
    pub is_write: bool,
    /// `true` when the request is a prefetch (does not block retirement).
    pub is_prefetch: bool,
}

/// The interface through which a core reaches the shared LLC and DRAM.
///
/// Implemented by the system simulator; a simple fixed-latency implementation
/// is provided for unit tests.
pub trait MemoryPort {
    /// Accesses the shared LLC for `address`.  Returns `Some(latency)` on an
    /// LLC hit and `None` on a miss (in which case the core will emit a
    /// [`CoreMemoryRequest`] for DRAM).
    fn llc_access(&mut self, core: u32, address: u64, is_write: bool) -> Option<u32>;

    /// Invalidates `address` in the shared LLC (clflush propagation).
    fn llc_invalidate(&mut self, address: u64);

    /// `true` when the DRAM subsystem can accept another request this cycle.
    fn can_send(&self) -> bool;

    /// Sends a request towards DRAM.
    fn send(&mut self, core: u32, request: CoreMemoryRequest);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobEntryState {
    /// Completes at the contained cycle.
    ReadyAt(u64),
    /// Waiting for a DRAM completion with the contained request id.
    WaitingForMemory(u64),
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    state: RobEntryState,
    /// Retired-instruction credit this entry carries (compute bundles > 1).
    instructions: u32,
}

/// A single trace-driven core.
#[derive(Debug, Clone)]
pub struct Core {
    id: u32,
    config: CpuConfig,
    l1d: Cache,
    l2: Cache,
    rob: VecDeque<RobEntry>,
    trace: Trace,
    trace_index: usize,
    prefetcher: Option<StridePrefetcher>,
    next_request_id: u64,
    outstanding_misses: u32,
    stats: CoreStats,
    instruction_limit: u64,
    /// Synthetic instruction pointer for the stride prefetcher.
    synthetic_ip: u64,
}

impl Core {
    /// Creates a core that will replay `trace` until `instruction_limit`
    /// instructions have retired.
    #[must_use]
    pub fn new(id: u32, config: CpuConfig, trace: Trace, instruction_limit: u64) -> Self {
        let l1d = Cache::new(config.l1d);
        let l2 = Cache::new(config.l2);
        let prefetcher = config
            .stride_prefetcher
            .then(|| StridePrefetcher::new(1024));
        Self {
            id,
            config,
            l1d,
            l2,
            rob: VecDeque::new(),
            trace,
            trace_index: 0,
            prefetcher,
            next_request_id: 0,
            outstanding_misses: 0,
            stats: CoreStats::default(),
            instruction_limit,
            synthetic_ip: 0,
        }
    }

    /// The core identifier.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// `true` once the core has retired its instruction budget.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.stats.instructions >= self.instruction_limit
    }

    /// Notifies the core that the DRAM request with `request_id` completed.
    pub fn on_memory_completion(&mut self, request_id: u64) {
        let mut matched = false;
        for entry in &mut self.rob {
            if entry.state == RobEntryState::WaitingForMemory(request_id) {
                entry.state = RobEntryState::ReadyAt(0);
                matched = true;
                break;
            }
        }
        if matched || self.outstanding_misses > 0 {
            self.outstanding_misses = self.outstanding_misses.saturating_sub(1);
        }
    }

    /// Earliest tick strictly after `now` at which this core can make
    /// forward progress *without* an external memory completion, or `None`
    /// when only a completion (or nothing at all) can unblock it.
    ///
    /// Used by the event-driven engine to skip cycles in which
    /// [`Core::tick`] would be a no-op.  The contract is conservative in the
    /// safe direction: whenever a tick could retire or issue anything, the
    /// returned wake-up is at or before that tick.  The three progress
    /// sources are:
    ///
    /// * retirement — the ROB head becomes retirable at its ready tick;
    /// * issue — the next trace op can enter the ROB on a fresh cycle, i.e.
    ///   it is a compute/flush op, a memory op that hits the private caches,
    ///   or a memory op with an MSHR available (a fresh cycle always starts
    ///   with DRAM-queue slots, so `can_send` is not a next-cycle blocker);
    /// * nothing, when the head waits on DRAM and issue is MSHR/miss-bound.
    #[must_use]
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        if self.is_finished() {
            return None;
        }
        let mut wake: Option<u64> = None;
        if let Some(entry) = self.rob.front() {
            if let RobEntryState::ReadyAt(t) = entry.state {
                wake = Some(t.max(now + 1));
            }
        }
        if self.rob.len() < self.config.rob_entries as usize && !self.trace.is_empty() {
            let op = self.trace.ops()[self.trace_index];
            let issuable = match op {
                TraceOp::Compute(_) | TraceOp::Flush(_) => true,
                TraceOp::Load(addr) | TraceOp::Store(addr) => {
                    self.outstanding_misses < self.config.mshrs_per_core
                        || self.l1d.probe(addr)
                        || self.l2.probe(addr)
                }
            };
            if issuable {
                wake = Some(now + 1);
            }
        }
        wake
    }

    /// Accounts `cycles` stalled cycles the event-driven engine skipped:
    /// ticks in which [`Core::tick`] would only have incremented the cycle
    /// counter.  Keeps IPC bit-identical between the two engines.
    pub fn credit_stalled_cycles(&mut self, cycles: u64) {
        if !self.is_finished() {
            self.stats.cycles += cycles;
        }
    }

    fn next_trace_op(&mut self) -> Option<TraceOp> {
        if self.trace.is_empty() {
            return None;
        }
        let op = self.trace.ops()[self.trace_index];
        self.trace_index = (self.trace_index + 1) % self.trace.ops().len();
        Some(op)
    }

    /// Advances the core by one cycle.  DRAM-bound requests are pushed into
    /// `port`; completions must be delivered via
    /// [`Core::on_memory_completion`] by the caller.
    pub fn tick(&mut self, now: u64, port: &mut dyn MemoryPort) {
        if self.is_finished() {
            return;
        }
        self.stats.cycles += 1;
        self.retire(now);
        self.issue(now, port);
    }

    fn retire(&mut self, now: u64) {
        for _ in 0..self.config.retire_width {
            match self.rob.front() {
                Some(entry) => match entry.state {
                    RobEntryState::ReadyAt(t) if t <= now => {
                        self.stats.instructions += u64::from(entry.instructions);
                        self.rob.pop_front();
                    }
                    _ => break,
                },
                None => break,
            }
        }
    }

    fn issue(&mut self, now: u64, port: &mut dyn MemoryPort) {
        for _ in 0..self.config.issue_width {
            if self.rob.len() >= self.config.rob_entries as usize {
                break;
            }
            let Some(op) = self.peek_issuable_op(port) else {
                break;
            };
            match op {
                TraceOp::Compute(n) => {
                    self.rob.push_back(RobEntry {
                        state: RobEntryState::ReadyAt(now + 1),
                        instructions: n.max(1),
                    });
                }
                TraceOp::Store(addr) => {
                    self.access_for_write(addr, port);
                    self.rob.push_back(RobEntry {
                        state: RobEntryState::ReadyAt(now + 1),
                        instructions: 1,
                    });
                }
                TraceOp::Flush(addr) => {
                    self.flush_line(addr, port);
                    self.rob.push_back(RobEntry {
                        state: RobEntryState::ReadyAt(now + 1),
                        instructions: 1,
                    });
                }
                TraceOp::Load(addr) => {
                    let state = self.access_for_read(addr, now, port);
                    self.rob.push_back(RobEntry {
                        state,
                        instructions: 1,
                    });
                }
            }
        }
    }

    /// Fetches the next op, deferring loads that cannot currently allocate an
    /// MSHR or reach a busy DRAM queue (returns `None` to stall issue).
    fn peek_issuable_op(&mut self, port: &mut dyn MemoryPort) -> Option<TraceOp> {
        if self.trace.is_empty() {
            return None;
        }
        let op = self.trace.ops()[self.trace_index];
        if matches!(op, TraceOp::Load(_) | TraceOp::Store(_)) {
            let mshr_full = self.outstanding_misses >= self.config.mshrs_per_core;
            if mshr_full || !port.can_send() {
                // Only stall when the access would actually miss the private
                // caches; hits can always proceed.
                if let Some(addr) = op.address() {
                    if !self.l1d.probe(addr) && !self.l2.probe(addr) {
                        return None;
                    }
                }
            }
        }
        self.next_trace_op()
    }

    fn send_writeback(&mut self, address: u64, port: &mut dyn MemoryPort) {
        if port.can_send() {
            let id = self.alloc_request_id();
            port.send(
                self.id,
                CoreMemoryRequest {
                    id,
                    address,
                    is_write: true,
                    is_prefetch: false,
                },
            );
        }
        // When the DRAM queue is saturated the write-back is dropped; data
        // correctness is not modelled, and the lost bandwidth is negligible.
    }

    fn alloc_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    fn access_for_read(&mut self, addr: u64, now: u64, port: &mut dyn MemoryPort) -> RobEntryState {
        // Stride prefetcher observes the demand stream at the L1D. Traces do
        // not carry real instruction pointers, so all loads of a core share a
        // synthetic IP: regular streams still expose a constant stride while
        // irregular streams train nothing.
        self.synthetic_ip = u64::from(self.id);
        let prefetch_target = self
            .prefetcher
            .as_mut()
            .and_then(|p| p.observe(self.synthetic_ip, addr));

        let state = if self.l1d.access(addr, false).is_hit() {
            self.stats.cache_hits += 1;
            RobEntryState::ReadyAt(now + u64::from(self.config.l1d.hit_latency))
        } else if self.l2.access(addr, false).is_hit() {
            self.stats.cache_hits += 1;
            self.l1d.fill(addr);
            RobEntryState::ReadyAt(now + u64::from(self.config.l2.hit_latency))
        } else if let Some(latency) = port.llc_access(self.id, addr, false) {
            self.stats.cache_hits += 1;
            self.fill_private(addr, port);
            RobEntryState::ReadyAt(now + u64::from(latency))
        } else {
            // Full miss: goes to DRAM.
            self.stats.llc_misses += 1;
            self.fill_private(addr, port);
            self.outstanding_misses += 1;
            let id = self.alloc_request_id();
            port.send(
                self.id,
                CoreMemoryRequest {
                    id,
                    address: addr,
                    is_write: false,
                    is_prefetch: false,
                },
            );
            RobEntryState::WaitingForMemory(id)
        };

        if let Some(target) = prefetch_target {
            self.prefetch(target, port);
        }
        state
    }

    fn fill_private(&mut self, addr: u64, port: &mut dyn MemoryPort) {
        if let Some(victim) = self.l2.fill(addr) {
            self.send_writeback(victim, port);
        }
        if let Some(victim) = self.l1d.fill(addr) {
            self.send_writeback(victim, port);
        }
    }

    fn access_for_write(&mut self, addr: u64, port: &mut dyn MemoryPort) {
        if self.l1d.access(addr, true).is_hit() {
            return;
        }
        if self.l2.access(addr, true).is_hit() {
            self.l1d.fill(addr);
            return;
        }
        // Write-allocate into the LLC (or DRAM): the store itself retires
        // immediately; the line travels up the hierarchy in the background.
        let _ = port.llc_access(self.id, addr, true);
        if let Some(victim) = self.l1d.fill(addr) {
            self.send_writeback(victim, port);
        }
    }

    fn flush_line(&mut self, addr: u64, port: &mut dyn MemoryPort) {
        self.stats.flushes += 1;
        if let Some(dirty) = self.l1d.invalidate(addr) {
            self.send_writeback(dirty, port);
        }
        if let Some(dirty) = self.l2.invalidate(addr) {
            self.send_writeback(dirty, port);
        }
        port.llc_invalidate(addr);
    }

    fn prefetch(&mut self, addr: u64, port: &mut dyn MemoryPort) {
        if self.l1d.probe(addr) || self.l2.probe(addr) {
            return;
        }
        // Prefetch into the L2 via the LLC; if it misses everywhere, send a
        // non-blocking DRAM read.
        if port.llc_access(self.id, addr, false).is_some() {
            self.l2.fill(addr);
            self.stats.prefetches += 1;
            return;
        }
        if port.can_send() && self.outstanding_misses < self.config.mshrs_per_core {
            self.stats.prefetches += 1;
            let id = self.alloc_request_id();
            self.outstanding_misses += 1;
            self.l2.fill(addr);
            port.send(
                self.id,
                CoreMemoryRequest {
                    id,
                    address: addr,
                    is_write: false,
                    is_prefetch: true,
                },
            );
        }
    }
}

/// A fixed-latency [`MemoryPort`] for unit tests: every LLC access hits with
/// the configured latency unless the address is in the `dram_only` range, in
/// which case requests are captured for inspection.
#[derive(Debug, Default)]
pub struct TestPort {
    /// LLC hit latency reported to the core.
    pub llc_latency: u32,
    /// Addresses at or above this value always miss the LLC.
    pub dram_threshold: u64,
    /// Captured DRAM requests.
    pub sent: Vec<(u32, CoreMemoryRequest)>,
    /// Invalidate calls observed.
    pub invalidated: Vec<u64>,
    /// When false, `can_send` reports a full DRAM queue.
    pub accepting: bool,
}

impl TestPort {
    /// Creates a port that hits the LLC below `dram_threshold`.
    #[must_use]
    pub fn new(dram_threshold: u64) -> Self {
        Self {
            llc_latency: 20,
            dram_threshold,
            sent: Vec::new(),
            invalidated: Vec::new(),
            accepting: true,
        }
    }
}

impl MemoryPort for TestPort {
    fn llc_access(&mut self, _core: u32, address: u64, _is_write: bool) -> Option<u32> {
        (address < self.dram_threshold).then_some(self.llc_latency)
    }

    fn llc_invalidate(&mut self, address: u64) {
        self.invalidated.push(address);
    }

    fn can_send(&self) -> bool {
        self.accepting
    }

    fn send(&mut self, core: u32, request: CoreMemoryRequest) {
        self.sent.push((core, request));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_only_trace(n: usize) -> Trace {
        Trace::new("compute", vec![TraceOp::Compute(1); n])
    }

    #[test]
    fn compute_trace_retires_at_full_width() {
        let cfg = CpuConfig::tiny_for_tests();
        let mut core = Core::new(0, cfg, compute_only_trace(64), 1_000);
        let mut port = TestPort::new(u64::MAX);
        for now in 0..400 {
            core.tick(now, &mut port);
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
        // IPC should approach the retire width (4) for pure compute.
        assert!(core.stats().ipc() > 2.0, "IPC = {}", core.stats().ipc());
        assert!(port.sent.is_empty());
    }

    #[test]
    fn llc_hits_do_not_reach_dram() {
        let cfg = CpuConfig::tiny_for_tests();
        let trace = Trace::new("loads", vec![TraceOp::Load(0x10_0000), TraceOp::Compute(4)]);
        let mut core = Core::new(0, cfg, trace, 200);
        let mut port = TestPort::new(u64::MAX); // everything hits the LLC
        for now in 0..2_000 {
            core.tick(now, &mut port);
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
        let demand_reads: Vec<_> = port.sent.iter().filter(|(_, r)| !r.is_write).collect();
        assert!(demand_reads.is_empty());
        assert_eq!(core.stats().llc_misses, 0);
    }

    #[test]
    fn llc_misses_emit_dram_requests_and_block_until_completion() {
        let cfg = CpuConfig::tiny_for_tests();
        let trace = Trace::new("miss", vec![TraceOp::Load(0x900_0000)]);
        let mut core = Core::new(0, cfg, trace, 10);
        let mut port = TestPort::new(0); // everything misses the LLC
        core.tick(0, &mut port);
        assert_eq!(port.sent.len(), 1);
        let (_, req) = port.sent[0];
        assert!(!req.is_write);
        // Without a completion the load never retires.
        for now in 1..100 {
            core.tick(now, &mut port);
        }
        assert_eq!(core.stats().instructions, 0);
        core.on_memory_completion(req.id);
        for now in 100..110 {
            core.tick(now, &mut port);
        }
        assert!(core.stats().instructions >= 1);
    }

    #[test]
    fn repeated_loads_hit_the_private_caches() {
        let cfg = CpuConfig::tiny_for_tests();
        let trace = Trace::new("hot", vec![TraceOp::Load(0x900_0000), TraceOp::Compute(1)]);
        let mut core = Core::new(0, cfg, trace, 100);
        let mut port = TestPort::new(0);
        // Drive with immediate completions.
        for now in 0..5_000 {
            core.tick(now, &mut port);
            let pending: Vec<u64> = port.sent.drain(..).map(|(_, r)| r.id).collect();
            for id in pending {
                core.on_memory_completion(id);
            }
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
        // Only the first access misses; the rest hit the L1D.
        assert_eq!(core.stats().llc_misses, 1);
        assert!(core.stats().cache_hits > 10);
    }

    #[test]
    fn flush_invalidates_all_levels_and_forces_a_new_miss() {
        let cfg = CpuConfig::tiny_for_tests();
        let trace = Trace::new(
            "flush",
            vec![TraceOp::Load(0x900_0000), TraceOp::Flush(0x900_0000)],
        );
        let mut core = Core::new(0, cfg, trace, 40);
        let mut port = TestPort::new(0);
        for now in 0..20_000 {
            core.tick(now, &mut port);
            let pending: Vec<u64> = port.sent.drain(..).map(|(_, r)| r.id).collect();
            for id in pending {
                core.on_memory_completion(id);
            }
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
        // Every load misses because the flush wipes the line each iteration.
        assert!(
            core.stats().llc_misses >= 10,
            "flushes must force repeated DRAM misses, got {}",
            core.stats().llc_misses
        );
        assert!(core.stats().flushes >= 10);
        assert!(!port.invalidated.is_empty());
    }

    #[test]
    fn mshr_limit_stalls_issue() {
        let mut cfg = CpuConfig::tiny_for_tests();
        cfg.mshrs_per_core = 2;
        // Loads to distinct lines so each one needs an MSHR.
        let ops: Vec<TraceOp> = (0..16)
            .map(|i| TraceOp::Load(0x900_0000 + i * 64))
            .collect();
        let mut core = Core::new(0, cfg, Trace::new("burst", ops), 1_000);
        let mut port = TestPort::new(0);
        // Never complete anything: at most 2 requests may be outstanding.
        for now in 0..200 {
            core.tick(now, &mut port);
        }
        assert_eq!(port.sent.iter().filter(|(_, r)| !r.is_write).count(), 2);
    }

    #[test]
    fn stride_prefetcher_issues_prefetch_requests() {
        let mut cfg = CpuConfig::tiny_for_tests();
        cfg.stride_prefetcher = true;
        cfg.mshrs_per_core = 16;
        let ops: Vec<TraceOp> = (0..32)
            .flat_map(|i| [TraceOp::Load(0x900_0000 + i * 64), TraceOp::Compute(8)])
            .collect();
        let mut core = Core::new(0, cfg, Trace::new("stream", ops), 2_000);
        let mut port = TestPort::new(0);
        for now in 0..20_000 {
            core.tick(now, &mut port);
            let pending: Vec<u64> = port.sent.drain(..).map(|(_, r)| r.id).collect();
            for id in pending {
                core.on_memory_completion(id);
            }
            if core.is_finished() {
                break;
            }
        }
        assert!(core.stats().prefetches > 0);
    }
}
