//! Set-associative caches with write-back/write-allocate behaviour.
//!
//! The replacement policies provided are LRU and SRRIP (the paper's LLC
//! policy).  The caches are functional/tag-only: they decide hit vs miss and
//! which dirty victim to write back; data values are never modelled.

use serde::{Deserialize, Serialize};

/// Replacement policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    Lru,
    /// Static Re-Reference Interval Prediction (2-bit RRPV).
    Srrip,
}

/// Geometry and behaviour of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; if a dirty victim was evicted
    /// its line address is reported so the caller can write it back.
    Miss {
        /// Dirty victim line address (already aligned), if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// `true` for hits.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp or RRPV value depending on the policy.
    meta: u32,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    lru_clock: u32,
    hits: u64,
    misses: u64,
}

const SRRIP_MAX: u32 = 3;
const SRRIP_INSERT: u32 = 2;

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when the geometry does not describe at least one set, or when
    /// the line size / set count are not powers of two.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            config,
            sets: vec![vec![Line::default(); config.ways as usize]; sets as usize],
            lru_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit count since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_and_tag(&self, address: u64) -> (usize, u64) {
        let line = address / u64::from(self.config.line_bytes);
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set, tag)
    }

    /// Line-aligned address reconstructed from a set index and tag.
    fn line_address(&self, set: usize, tag: u64) -> u64 {
        (tag * self.config.sets() + set as u64) * u64::from(self.config.line_bytes)
    }

    /// Looks up `address` without changing any state.
    #[must_use]
    pub fn probe(&self, address: u64) -> bool {
        let (set, tag) = self.set_and_tag(address);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `address`; on a miss the line is filled (write-allocate) and
    /// the evicted dirty victim, if any, is returned for write-back.
    pub fn access(&mut self, address: u64, is_write: bool) -> AccessOutcome {
        self.lru_clock = self.lru_clock.wrapping_add(1);
        let (set, tag) = self.set_and_tag(address);
        let policy = self.config.replacement;
        let lru_clock = self.lru_clock;
        let set_lines = &mut self.sets[set];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty |= is_write;
            match policy {
                ReplacementPolicy::Lru => line.meta = lru_clock,
                ReplacementPolicy::Srrip => line.meta = 0,
            }
            self.hits += 1;
            return AccessOutcome::Hit;
        }

        self.misses += 1;
        let victim_index = Self::pick_victim(set_lines, policy);
        let victim = set_lines[victim_index];
        let writeback = if victim.valid && victim.dirty {
            Some(self.line_address(set, victim.tag))
        } else {
            None
        };
        let insert_meta = match policy {
            ReplacementPolicy::Lru => lru_clock,
            ReplacementPolicy::Srrip => SRRIP_INSERT,
        };
        self.sets[set][victim_index] = Line {
            tag,
            valid: true,
            dirty: is_write,
            meta: insert_meta,
        };
        AccessOutcome::Miss { writeback }
    }

    fn pick_victim(lines: &mut [Line], policy: ReplacementPolicy) -> usize {
        if let Some(idx) = lines.iter().position(|l| !l.valid) {
            return idx;
        }
        match policy {
            ReplacementPolicy::Lru => lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.meta)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Srrip => {
                // Age RRPVs until one line reaches the maximum, then evict it.
                loop {
                    if let Some(idx) = lines.iter().position(|l| l.meta >= SRRIP_MAX) {
                        return idx;
                    }
                    for l in lines.iter_mut() {
                        l.meta = (l.meta + 1).min(SRRIP_MAX);
                    }
                }
            }
        }
    }

    /// Invalidates the line containing `address` (clflush).  Returns the
    /// dirty line address if a write-back is required.
    pub fn invalidate(&mut self, address: u64) -> Option<u64> {
        let (set, tag) = self.set_and_tag(address);
        let line_addr = self.line_address(set, tag);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                *line = Line::default();
                return was_dirty.then_some(line_addr);
            }
        }
        None
    }

    /// Fills `address` without counting a demand access (prefetch fill).
    /// Returns the dirty victim, if any.
    pub fn fill(&mut self, address: u64) -> Option<u64> {
        let (set, tag) = self.set_and_tag(address);
        if self.sets[set].iter().any(|l| l.valid && l.tag == tag) {
            return None;
        }
        let policy = self.config.replacement;
        let lru_clock = self.lru_clock;
        let victim_index = Self::pick_victim(&mut self.sets[set], policy);
        let victim = self.sets[set][victim_index];
        let writeback = if victim.valid && victim.dirty {
            Some(self.line_address(set, victim.tag))
        } else {
            None
        };
        self.sets[set][victim_index] = Line {
            tag,
            valid: true,
            dirty: false,
            meta: match policy {
                ReplacementPolicy::Lru => lru_clock,
                ReplacementPolicy::Srrip => SRRIP_INSERT,
            },
        };
        writeback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024, // 4 sets x 4 ways x 64 B
            ways: 4,
            line_bytes: 64,
            hit_latency: 2,
            replacement: policy,
        })
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let c = small_cache(ReplacementPolicy::Lru);
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(
            c.access(0x1004, false).is_hit(),
            "same line, different offset"
        );
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        // Four distinct tags in set 0 (addresses differ by sets*line = 256).
        for i in 0..4u64 {
            c.access(i * 256, false);
        }
        // Touch the first line so the second becomes LRU.
        c.access(0, false);
        // A fifth line evicts address 256.
        c.access(4 * 256, false);
        assert!(c.probe(0));
        assert!(!c.probe(256));
    }

    #[test]
    fn dirty_victims_are_reported_for_writeback() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, true); // dirty
        for i in 1..4u64 {
            c.access(i * 256, false);
        }
        let outcome = c.access(4 * 256, false);
        match outcome {
            AccessOutcome::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0),
            other => panic!("expected a write-back of line 0, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line_and_reports_dirtiness() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0x1000, true);
        assert_eq!(c.invalidate(0x1000), Some(0x1000));
        assert!(!c.probe(0x1000));
        // Invalidate of a clean or absent line returns None.
        c.access(0x2000, false);
        assert_eq!(c.invalidate(0x2000), None);
        assert_eq!(c.invalidate(0x3000), None);
    }

    #[test]
    fn srrip_eventually_evicts_and_keeps_reused_lines() {
        let mut c = small_cache(ReplacementPolicy::Srrip);
        for i in 0..4u64 {
            c.access(i * 256, false);
        }
        // Re-reference line 0 so its RRPV drops to 0.
        c.access(0, false);
        c.access(4 * 256, false);
        assert!(c.probe(0), "recently re-referenced line must survive");
        assert_eq!(c.misses(), 5);
    }

    #[test]
    fn fill_does_not_count_as_demand_access() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.fill(0x4000);
        assert_eq!(c.misses(), 0);
        assert!(c.probe(0x4000));
        assert!(c.access(0x4000, false).is_hit());
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_set_geometry_is_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 4,
            line_bytes: 64,
            hit_latency: 1,
            replacement: ReplacementPolicy::Lru,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After accessing an address it is always present until evicted by
        /// at least `ways` distinct conflicting lines.
        #[test]
        fn recently_accessed_lines_are_present(addresses in proptest::collection::vec(0u64..(1 << 20), 1..200)) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 8 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 1,
                replacement: ReplacementPolicy::Lru,
            });
            for addr in addresses {
                c.access(addr, false);
                prop_assert!(c.probe(addr));
            }
        }

        /// Hit + miss counts equal total accesses.
        #[test]
        fn hit_miss_accounting(addresses in proptest::collection::vec(0u64..(1 << 16), 1..300)) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 4 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 1,
                replacement: ReplacementPolicy::Srrip,
            });
            let n = addresses.len() as u64;
            for addr in addresses {
                c.access(addr, false);
            }
            prop_assert_eq!(c.hits() + c.misses(), n);
        }
    }
}
