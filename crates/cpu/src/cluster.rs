//! The multi-core cluster: private cores plus the shared last-level cache.
//!
//! [`CpuCluster`] owns every core and the shared LLC and exposes a single
//! `tick` that the system simulator drives.  DRAM traffic is returned to the
//! caller as a list of [`CoreMemoryRequest`]s tagged with the issuing core;
//! completions are delivered back per core.

use serde::{Deserialize, Serialize};

use crate::cache::Cache;
use crate::config::CpuConfig;
use crate::core_model::{Core, CoreMemoryRequest, MemoryPort};
use crate::stats::CoreStats;
use crate::trace::Trace;

/// DRAM-bound traffic produced by one cluster tick.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterOutput {
    /// Requests to forward to the memory controller, tagged with the core id.
    pub requests: Vec<(u32, CoreMemoryRequest)>,
}

/// Shared-LLC port handed to each core during its tick.
#[derive(Debug)]
struct SharedPort<'a> {
    llc: &'a mut Cache,
    llc_latency: u32,
    requests: &'a mut Vec<(u32, CoreMemoryRequest)>,
    dram_slots_left: usize,
    writebacks: Vec<u64>,
}

impl MemoryPort for SharedPort<'_> {
    fn llc_access(&mut self, _core: u32, address: u64, is_write: bool) -> Option<u32> {
        if self.llc.access(address, is_write).is_hit() {
            Some(self.llc_latency)
        } else {
            None
        }
    }

    fn llc_invalidate(&mut self, address: u64) {
        if let Some(dirty) = self.llc.invalidate(address) {
            self.writebacks.push(dirty);
        }
    }

    fn can_send(&self) -> bool {
        self.dram_slots_left > 0
    }

    fn send(&mut self, core: u32, request: CoreMemoryRequest) {
        if self.dram_slots_left > 0 {
            self.dram_slots_left -= 1;
            self.requests.push((core, request));
        }
    }
}

/// A cluster of trace-driven cores sharing an LLC.
#[derive(Debug, Clone)]
pub struct CpuCluster {
    config: CpuConfig,
    cores: Vec<Core>,
    llc: Cache,
    /// Maximum DRAM requests accepted from the whole cluster per cycle.
    dram_requests_per_cycle: usize,
    /// Write-back identifier space distinct from core-generated ids.
    next_writeback_id: u64,
}

impl CpuCluster {
    /// Creates a cluster running `traces[i]` on core `i` until each core has
    /// retired `instruction_limit` instructions.
    ///
    /// # Panics
    ///
    /// Panics when the number of traces does not match `config.cores`.
    #[must_use]
    pub fn new(config: CpuConfig, traces: Vec<Trace>, instruction_limit: u64) -> Self {
        assert_eq!(
            traces.len(),
            config.cores as usize,
            "one trace per core is required"
        );
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, trace)| Core::new(i as u32, config.clone(), trace, instruction_limit))
            .collect();
        let llc = Cache::new(config.llc);
        Self {
            cores,
            llc,
            dram_requests_per_cycle: 4,
            config,
            next_writeback_id: 1 << 48,
        }
    }

    /// The cluster configuration.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Per-core statistics.
    #[must_use]
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.cores.iter().map(|c| *c.stats()).collect()
    }

    /// `true` when every core has retired its instruction budget.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.cores.iter().all(Core::is_finished)
    }

    /// `true` when the given core has finished.
    #[must_use]
    pub fn core_finished(&self, core: u32) -> bool {
        self.cores[core as usize].is_finished()
    }

    /// Delivers a DRAM completion to the owning core.
    pub fn on_memory_completion(&mut self, core: u32, request_id: u64) {
        if request_id >= (1 << 48) {
            return; // write-back: no one is waiting
        }
        if let Some(core) = self.cores.get_mut(core as usize) {
            core.on_memory_completion(request_id);
        }
    }

    /// Earliest tick strictly after `now` at which any core can make forward
    /// progress without an external memory completion (see
    /// [`Core::next_event_at`]); `None` when every unfinished core is
    /// blocked on DRAM.
    #[must_use]
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        self.cores
            .iter()
            .filter_map(|core| core.next_event_at(now))
            .min()
    }

    /// Accounts `cycles` skipped stalled cycles to every unfinished core
    /// (the event-driven engine's replacement for ticking through them).
    pub fn credit_stalled_cycles(&mut self, cycles: u64) {
        for core in &mut self.cores {
            core.credit_stalled_cycles(cycles);
        }
    }

    /// Advances every unfinished core by one cycle and returns the DRAM
    /// traffic generated.
    pub fn tick(&mut self, now: u64) -> ClusterOutput {
        let mut requests = Vec::new();
        let mut pending_writebacks = Vec::new();
        for core in &mut self.cores {
            if core.is_finished() {
                continue;
            }
            let mut port = SharedPort {
                llc: &mut self.llc,
                llc_latency: self.config.llc.hit_latency,
                requests: &mut requests,
                dram_slots_left: self.dram_requests_per_cycle,
                writebacks: Vec::new(),
            };
            core.tick(now, &mut port);
            pending_writebacks.extend(port.writebacks);
        }
        for addr in pending_writebacks {
            let id = self.next_writeback_id;
            self.next_writeback_id += 1;
            requests.push((
                u32::MAX,
                CoreMemoryRequest {
                    id,
                    address: addr,
                    is_write: true,
                    is_prefetch: false,
                },
            ));
        }
        ClusterOutput { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;

    fn streaming_trace(base: u64, lines: u64) -> Trace {
        let ops = (0..lines)
            .flat_map(|i| [TraceOp::Load(base + i * 64), TraceOp::Compute(4)])
            .collect();
        Trace::new("stream", ops)
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let cfg = CpuConfig::tiny_for_tests();
        let _ = CpuCluster::new(cfg, vec![Trace::new("only-one", vec![])], 100);
    }

    #[test]
    fn cluster_produces_dram_traffic_for_streaming_workloads() {
        let cfg = CpuConfig::tiny_for_tests();
        let traces = vec![
            streaming_trace(0x1000_0000, 512),
            streaming_trace(0x2000_0000, 512),
        ];
        let mut cluster = CpuCluster::new(cfg, traces, 2_000);
        let mut total_requests = 0usize;
        for now in 0..50_000 {
            let out = cluster.tick(now);
            for (core, req) in &out.requests {
                total_requests += 1;
                // Complete immediately to keep cores moving.
                cluster.on_memory_completion(*core, req.id);
            }
            if cluster.all_finished() {
                break;
            }
        }
        assert!(
            cluster.all_finished(),
            "cores should finish with instant memory"
        );
        assert!(total_requests > 50, "streaming workloads must reach DRAM");
    }

    #[test]
    fn cores_share_the_llc() {
        let cfg = CpuConfig::tiny_for_tests();
        // Core 1 repeatedly loads the same small set of lines that core 0
        // already streamed through the LLC: after warm-up it should hit.
        let shared_base = 0x3000_0000u64;
        let traces = vec![
            streaming_trace(shared_base, 8),
            streaming_trace(shared_base, 8),
        ];
        let mut cluster = CpuCluster::new(cfg, traces, 600);
        let mut dram_reads = 0usize;
        for now in 0..200_000 {
            let out = cluster.tick(now);
            for (core, req) in &out.requests {
                if !req.is_write {
                    dram_reads += 1;
                }
                cluster.on_memory_completion(*core, req.id);
            }
            if cluster.all_finished() {
                break;
            }
        }
        assert!(cluster.all_finished());
        // 8 distinct lines; both cores together should miss far fewer than
        // 2 * total accesses thanks to the shared LLC and private caches.
        assert!(
            dram_reads < 64,
            "expected heavy reuse, got {dram_reads} DRAM reads"
        );
    }

    #[test]
    fn stats_report_per_core_progress() {
        let cfg = CpuConfig::tiny_for_tests();
        let traces = vec![
            Trace::new("c0", vec![TraceOp::Compute(8)]),
            Trace::new("c1", vec![TraceOp::Compute(8)]),
        ];
        let mut cluster = CpuCluster::new(cfg, traces, 400);
        for now in 0..1_000 {
            let _ = cluster.tick(now);
            if cluster.all_finished() {
                break;
            }
        }
        let stats = cluster.core_stats();
        assert_eq!(stats.len(), 2);
        for s in stats {
            assert!(s.instructions >= 400);
            assert!(s.ipc() > 0.0);
        }
        assert!(cluster.core_finished(0));
        assert!(cluster.core_finished(1));
    }
}
