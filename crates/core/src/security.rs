//! Worst-case security analysis of TPRAC (Section 4.2 of the paper).
//!
//! The adversary model is the Feinting (a.k.a. Wave) attack: the attacker
//! maintains a pool of decoy rows plus one target row, uniformly activates the
//! pool so that mitigations are spent on decoys, and only concentrates on the
//! target row in the final round.  Given TPRAC's Timing-Based RFM interval
//! (`TB-Window`) this module computes the maximum number of activations the
//! adversary can land on the target row (`TMAX`, Equations 2–4), the optimal
//! initial pool size (`OPT_R1`, Equation 5 for the counter-reset case), and
//! solves for the largest `TB-Window` that keeps `TMAX` below the Back-Off
//! threshold (Equation 1), i.e. that provably eliminates ABO-RFMs and the
//! timing channel they create.

use serde::{Deserialize, Serialize};

use crate::config::PracConfig;
use crate::error::{ConfigError, Result};
use crate::timing::DramTimingSummary;

/// Whether per-row activation counters are reset at every refresh window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterResetPolicy {
    /// Counters are reset at every tREFW (MOAT-style).  The attacker's pool
    /// size is bounded by the number of TB-RFM intervals within one tREFW.
    ResetEveryTrefw,
    /// Counters persist until the row is mitigated by an RFM.  The attacker
    /// may use the full 128 K rows of a bank as the initial pool.
    NoReset,
}

impl CounterResetPolicy {
    /// Constructs the policy from the boolean carried by [`PracConfig`].
    #[must_use]
    pub fn from_config(config: &PracConfig) -> Self {
        if config.counter_reset_every_trefw {
            CounterResetPolicy::ResetEveryTrefw
        } else {
            CounterResetPolicy::NoReset
        }
    }
}

/// Outcome of simulating the Feinting attack against a fixed TB-Window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeintingOutcome {
    /// Initial decoy-pool size used by the attacker.
    pub initial_pool: u64,
    /// Number of attack rounds until only the target row remains.
    pub attack_rounds: u64,
    /// Maximum activations landed on the target row (Equation 4).
    pub target_activations: u64,
}

/// The largest TB-Window that keeps the worst-case target activations below
/// the Back-Off threshold, together with the derived controller settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbWindowSolution {
    /// TB-Window expressed as a multiple of tREFI.
    pub tb_window_trefi: f64,
    /// TB-Window in nanoseconds.
    pub tb_window_ns: f64,
    /// Worst-case activations to the target row at this window.
    pub tmax: u64,
    /// The Back-Off threshold the window was solved against.
    pub back_off_threshold: u32,
    /// Upper bound on channel bandwidth lost to TB-RFMs
    /// (`tRFMab / TB-Window`).
    pub bandwidth_loss: f64,
}

/// Analytical worst-case model of TPRAC under the Feinting/Wave attack.
#[derive(Debug, Clone)]
pub struct SecurityAnalysis {
    nbo: u32,
    timing: DramTimingSummary,
    reset: CounterResetPolicy,
    /// Maximum initial pool size the attacker can use when counters are not
    /// reset (the number of rows in a bank).
    max_pool_rows: u64,
}

impl SecurityAnalysis {
    /// Creates an analysis for the given PRAC configuration, device timing
    /// and counter-reset policy.
    #[must_use]
    pub fn new(config: &PracConfig, timing: &DramTimingSummary, reset: CounterResetPolicy) -> Self {
        Self {
            nbo: config.back_off_threshold,
            timing: timing.clone(),
            reset,
            max_pool_rows: u64::from(timing.rows_per_bank),
        }
    }

    /// Creates an analysis directly from a Back-Off threshold, bypassing the
    /// full [`PracConfig`].  Useful for sweeps such as Figure 7.
    #[must_use]
    pub fn with_back_off_threshold(
        nbo: u32,
        timing: &DramTimingSummary,
        reset: CounterResetPolicy,
    ) -> Self {
        Self {
            nbo,
            timing: timing.clone(),
            reset,
            max_pool_rows: u64::from(timing.rows_per_bank),
        }
    }

    /// Maximum number of row activations that fit between two consecutive
    /// TB-RFMs (Equation 2), for a window expressed in units of tREFI.
    #[must_use]
    pub fn activations_per_window(&self, tb_window_trefi: f64) -> u64 {
        let window_ns = tb_window_trefi * self.timing.t_refi_ns;
        (window_ns / self.timing.t_rc_ns).floor().max(0.0) as u64
    }

    /// Simulates the Feinting attack round structure (Equation 3) for a given
    /// initial pool size and activations-per-window budget, returning the
    /// total activations accumulated on the target row (Equation 4).
    #[must_use]
    pub fn feinting_rounds(&self, initial_pool: u64, acts_per_window: u64) -> FeintingOutcome {
        if acts_per_window == 0 || initial_pool == 0 {
            return FeintingOutcome {
                initial_pool,
                attack_rounds: 0,
                target_activations: 0,
            };
        }
        // Round 1 starts with the full pool.  In each round every remaining
        // row (decoys + target) is activated once; one TB-RFM is issued per
        // `acts_per_window` activations and each TB-RFM removes (mitigates)
        // one decoy row.  The attack ends when only the target row remains.
        let mut remaining = initial_pool;
        let mut cumulative_activations: u64 = 0;
        let mut rounds: u64 = 0;
        // Cap rounds defensively; the pool shrinks by at least one row per
        // `ceil(acts_per_window / remaining)` rounds so this terminates, but
        // a hard bound keeps pathological configurations from spinning.
        let round_cap = initial_pool
            .saturating_mul(2)
            .saturating_add(acts_per_window * 4)
            .max(1024);
        while remaining > 1 && rounds < round_cap {
            rounds += 1;
            cumulative_activations += remaining;
            let mitigated_so_far = cumulative_activations / acts_per_window;
            remaining = initial_pool.saturating_sub(mitigated_so_far).max(1);
            // Equation 3 counts mitigations against the *initial* pool;
            // once every decoy has been mitigated only the target remains.
            if mitigated_so_far >= initial_pool.saturating_sub(1) {
                remaining = 1;
            }
        }
        // Equation 4: the target row receives one activation per completed
        // round (it was part of the uniformly-activated pool) plus the entire
        // final window's worth of activations.
        let target_activations = rounds.saturating_sub(1) + acts_per_window;
        FeintingOutcome {
            initial_pool,
            attack_rounds: rounds,
            target_activations,
        }
    }

    /// Optimal initial pool size for the attacker (Equation 5 in the
    /// counter-reset case; the full bank otherwise).
    #[must_use]
    pub fn optimal_initial_pool(&self, tb_window_trefi: f64) -> u64 {
        let acts_per_window = self.activations_per_window(tb_window_trefi).max(1);
        match self.reset {
            CounterResetPolicy::ResetEveryTrefw => {
                // The attack must complete within one tREFW, so the pool is
                // bounded by the number of mitigations (TB-RFMs) that fit in
                // the window: MAXACT_tREFW / ACT_TB-Window.
                let max_acts = self.timing.max_activations_per_trefw();
                (max_acts / acts_per_window).clamp(1, self.max_pool_rows)
            }
            CounterResetPolicy::NoReset => self.max_pool_rows,
        }
    }

    /// Worst-case (maximum over pool sizes) activations to the target row for
    /// a TB-Window expressed in tREFI units — the quantity plotted in
    /// Figure 7.
    #[must_use]
    pub fn tmax(&self, tb_window_trefi: f64) -> u64 {
        let acts_per_window = self.activations_per_window(tb_window_trefi);
        if acts_per_window == 0 {
            return 0;
        }
        let pool = self.optimal_initial_pool(tb_window_trefi);
        match self.reset {
            CounterResetPolicy::ResetEveryTrefw => {
                self.feinting_rounds(pool, acts_per_window)
                    .target_activations
            }
            CounterResetPolicy::NoReset => {
                // Without reset the attack can span refresh windows; sweep a
                // geometric ladder of pool sizes up to the full bank and take
                // the maximum (the outcome is monotone in practice, but the
                // sweep guards against discretisation artefacts).
                let mut best = 0;
                let mut candidate = 1u64;
                while candidate <= self.max_pool_rows {
                    let outcome = self.feinting_rounds(candidate, acts_per_window);
                    best = best.max(outcome.target_activations);
                    candidate = (candidate * 2).max(candidate + 1);
                }
                let outcome = self.feinting_rounds(self.max_pool_rows, acts_per_window);
                best.max(outcome.target_activations)
            }
        }
    }

    /// Whether a TB-Window (in tREFI) keeps the worst case below `NBO`
    /// (Equation 1).
    #[must_use]
    pub fn is_window_safe(&self, tb_window_trefi: f64) -> bool {
        self.tmax(tb_window_trefi) < u64::from(self.nbo)
    }

    /// Solves for the largest safe TB-Window by binary search over the
    /// interval `[min_window, max_window]` tREFI (defaults 0.01–16).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoSafeWindow`] when even the smallest probed
    /// window cannot keep the worst case below the Back-Off threshold
    /// (this happens for very small `NBO`, mirroring the paper's observation
    /// that overheads explode at ultra-low thresholds).
    pub fn solve_tb_window(&self) -> Result<TbWindowSolution> {
        self.solve_tb_window_in(0.01, 16.0)
    }

    /// Same as [`SecurityAnalysis::solve_tb_window`] with explicit search
    /// bounds (in tREFI units).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] for a degenerate search
    /// interval and [`ConfigError::NoSafeWindow`] when no window in the
    /// interval is safe.
    pub fn solve_tb_window_in(&self, min_window: f64, max_window: f64) -> Result<TbWindowSolution> {
        if !min_window.is_finite()
            || !max_window.is_finite()
            || min_window <= 0.0
            || max_window <= min_window
        {
            return Err(ConfigError::InvalidParameter {
                name: "tb_window search bounds",
                reason: format!("expected 0 < min < max, got [{min_window}, {max_window}]"),
            });
        }
        // A TB-Window shorter than tRFMab is physically infeasible: the
        // channel would be blocked by RFMs back-to-back. Clamp the search to
        // feasible windows so the solver never reports >100% bandwidth loss.
        let min_feasible = (self.timing.t_rfmab_ns * 1.05) / self.timing.t_refi_ns;
        let min_window = min_window.max(min_feasible);
        if min_window >= max_window {
            return Err(ConfigError::NoSafeWindow {
                rowhammer_threshold: self.nbo,
                smallest_window_trefi: min_window,
            });
        }
        if !self.is_window_safe(min_window) {
            return Err(ConfigError::NoSafeWindow {
                rowhammer_threshold: self.nbo,
                smallest_window_trefi: min_window,
            });
        }
        let mut lo = min_window; // known safe
        let mut hi = max_window; // possibly unsafe
        if self.is_window_safe(hi) {
            return Ok(self.solution_for(hi));
        }
        // Binary search for the boundary; 40 iterations give sub-1e-9 tREFI
        // resolution which is far below the controller's timer granularity.
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.is_window_safe(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(self.solution_for(lo))
    }

    fn solution_for(&self, tb_window_trefi: f64) -> TbWindowSolution {
        let tb_window_ns = tb_window_trefi * self.timing.t_refi_ns;
        TbWindowSolution {
            tb_window_trefi,
            tb_window_ns,
            tmax: self.tmax(tb_window_trefi),
            back_off_threshold: self.nbo,
            bandwidth_loss: self.timing.t_rfmab_ns / tb_window_ns,
        }
    }

    /// Generates the (window, TMAX) series plotted in Figure 7 for the given
    /// window values (in tREFI units).
    #[must_use]
    pub fn tmax_series(&self, windows_trefi: &[f64]) -> Vec<(f64, u64)> {
        windows_trefi.iter().map(|&w| (w, self.tmax(w))).collect()
    }

    /// The Back-Off threshold this analysis targets.
    #[must_use]
    pub fn back_off_threshold(&self) -> u32 {
        self.nbo
    }

    /// The counter-reset policy assumed by this analysis.
    #[must_use]
    pub fn reset_policy(&self) -> CounterResetPolicy {
        self.reset
    }
}

/// Returns the standard set of TB-Window values (in tREFI) swept by Figure 7.
#[must_use]
pub fn figure7_windows() -> Vec<f64> {
    vec![0.25, 0.5, 0.75, 1.0, 2.0, 4.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PracConfig;

    fn analysis(nbo: u32, reset: CounterResetPolicy) -> SecurityAnalysis {
        SecurityAnalysis::with_back_off_threshold(nbo, &DramTimingSummary::ddr5_8000b(), reset)
    }

    #[test]
    fn activations_per_window_matches_trc_division() {
        let a = analysis(1024, CounterResetPolicy::ResetEveryTrefw);
        // 1 tREFI = 3900 ns, tRC = 52 ns → 75 activations.
        assert_eq!(a.activations_per_window(1.0), 75);
        assert_eq!(a.activations_per_window(0.25), 18);
        assert_eq!(a.activations_per_window(4.0), 300);
    }

    #[test]
    fn tmax_is_monotone_in_window() {
        for reset in [
            CounterResetPolicy::ResetEveryTrefw,
            CounterResetPolicy::NoReset,
        ] {
            let a = analysis(1024, reset);
            let series = a.tmax_series(&figure7_windows());
            for pair in series.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].1,
                    "TMAX must grow with the TB-Window ({reset:?}): {series:?}"
                );
            }
        }
    }

    #[test]
    fn no_reset_tmax_dominates_reset_tmax() {
        let with_reset = analysis(1024, CounterResetPolicy::ResetEveryTrefw);
        let without = analysis(1024, CounterResetPolicy::NoReset);
        for w in figure7_windows() {
            assert!(
                without.tmax(w) >= with_reset.tmax(w),
                "no-reset TMAX must be at least the reset TMAX at window {w}"
            );
        }
    }

    #[test]
    fn tmax_magnitudes_match_figure7_shape() {
        // Figure 7 reports TMAX in the few-hundreds at 1 tREFI and the
        // low-thousands at 4 tREFI. The analytical reproduction should land
        // in the same bands even if exact values differ slightly.
        let with_reset = analysis(4096, CounterResetPolicy::ResetEveryTrefw);
        let t1 = with_reset.tmax(1.0);
        let t4 = with_reset.tmax(4.0);
        assert!((300..1200).contains(&t1), "TMAX(1 tREFI, reset) = {t1}");
        assert!((1500..4500).contains(&t4), "TMAX(4 tREFI, reset) = {t4}");
        let growth = t4 as f64 / t1 as f64;
        assert!((2.0..5.0).contains(&growth), "growth factor {growth}");
    }

    #[test]
    fn reset_limits_pool_size() {
        let a = analysis(1024, CounterResetPolicy::ResetEveryTrefw);
        // At 1 tREFI the pool is bounded by ~MAXACT/75 (≈ 7–8 K), far below
        // the 128 K rows available without reset.
        let pool = a.optimal_initial_pool(1.0);
        assert!(pool < 10_000, "pool with reset should be < 10K, got {pool}");
        let b = analysis(1024, CounterResetPolicy::NoReset);
        assert_eq!(b.optimal_initial_pool(1.0), 128 * 1024);
    }

    #[test]
    fn solver_reproduces_nrh1024_operating_point() {
        // The paper: at NRH = 1024 (with reset) one TB-RFM every ~1.6 tREFI
        // suffices. Our discrete model should land in the 1–2.5 tREFI band.
        let cfg = PracConfig::builder().rowhammer_threshold(1024).build();
        let a = SecurityAnalysis::new(
            &cfg,
            &DramTimingSummary::ddr5_8000b(),
            CounterResetPolicy::ResetEveryTrefw,
        );
        let sol = a.solve_tb_window().unwrap();
        assert!(
            (1.0..2.5).contains(&sol.tb_window_trefi),
            "expected ~1.6 tREFI, got {}",
            sol.tb_window_trefi
        );
        assert!(sol.tmax < 1024);
        assert!(sol.bandwidth_loss < 0.10);
    }

    #[test]
    fn solver_scales_roughly_linearly_with_threshold() {
        let timing = DramTimingSummary::ddr5_8000b();
        let solve = |nrh: u32| {
            SecurityAnalysis::with_back_off_threshold(
                nrh,
                &timing,
                CounterResetPolicy::ResetEveryTrefw,
            )
            .solve_tb_window()
            .unwrap()
            .tb_window_trefi
        };
        let w512 = solve(512);
        let w1024 = solve(1024);
        let w4096 = solve(4096);
        assert!(w512 < w1024 && w1024 < w4096);
        let ratio = w1024 / w512;
        assert!(
            (1.4..2.6).contains(&ratio),
            "window should ~double, got {ratio}"
        );
    }

    #[test]
    fn solver_fails_for_tiny_thresholds() {
        let a = analysis(8, CounterResetPolicy::ResetEveryTrefw);
        let err = a.solve_tb_window().unwrap_err();
        assert!(matches!(err, ConfigError::NoSafeWindow { .. }));
    }

    #[test]
    fn solved_window_is_safe_and_near_boundary() {
        let a = analysis(2048, CounterResetPolicy::ResetEveryTrefw);
        let sol = a.solve_tb_window().unwrap();
        assert!(a.is_window_safe(sol.tb_window_trefi));
        // Slightly larger windows should be unsafe (we found the boundary),
        // unless the solver saturated at the search maximum.
        if sol.tb_window_trefi < 15.9 {
            assert!(!a.is_window_safe(sol.tb_window_trefi * 1.1));
        }
    }

    #[test]
    fn feinting_zero_budget_is_harmless() {
        let a = analysis(1024, CounterResetPolicy::ResetEveryTrefw);
        let outcome = a.feinting_rounds(100, 0);
        assert_eq!(outcome.target_activations, 0);
    }

    #[test]
    fn invalid_search_bounds_are_rejected() {
        let a = analysis(1024, CounterResetPolicy::ResetEveryTrefw);
        assert!(a.solve_tb_window_in(2.0, 1.0).is_err());
        assert!(a.solve_tb_window_in(0.0, 1.0).is_err());
    }

    #[test]
    fn reset_policy_tracks_config_flag() {
        let cfg = PracConfig::builder()
            .counter_reset_every_trefw(false)
            .build();
        assert_eq!(
            CounterResetPolicy::from_config(&cfg),
            CounterResetPolicy::NoReset
        );
        let cfg = PracConfig::builder()
            .counter_reset_every_trefw(true)
            .build();
        assert_eq!(
            CounterResetPolicy::from_config(&cfg),
            CounterResetPolicy::ResetEveryTrefw
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Larger windows can never decrease the worst case.
        #[test]
        fn tmax_monotone(nbo in 128u32..4096, w in 0.1f64..4.0, delta in 0.05f64..2.0) {
            let a = SecurityAnalysis::with_back_off_threshold(
                nbo,
                &DramTimingSummary::ddr5_8000b(),
                CounterResetPolicy::ResetEveryTrefw,
            );
            prop_assert!(a.tmax(w) <= a.tmax(w + delta));
        }

        /// The Feinting outcome never reports fewer target activations than
        /// the final-window budget alone (the attacker can always spend the
        /// final window on the target), and never more than rounds+budget.
        #[test]
        fn feinting_bounds(pool in 1u64..20_000, acts in 1u64..400) {
            let a = SecurityAnalysis::with_back_off_threshold(
                1024,
                &DramTimingSummary::ddr5_8000b(),
                CounterResetPolicy::ResetEveryTrefw,
            );
            let out = a.feinting_rounds(pool, acts);
            prop_assert!(out.target_activations >= acts.saturating_sub(1));
            prop_assert!(out.target_activations <= out.attack_rounds + acts);
        }

        /// A solved window is always safe.
        #[test]
        fn solved_windows_are_safe(nbo in 200u32..8192) {
            let a = SecurityAnalysis::with_back_off_threshold(
                nbo,
                &DramTimingSummary::ddr5_8000b(),
                CounterResetPolicy::ResetEveryTrefw,
            );
            if let Ok(sol) = a.solve_tb_window() {
                prop_assert!(sol.tmax < u64::from(nbo));
                prop_assert!(a.is_window_safe(sol.tb_window_trefi));
            }
        }
    }
}
