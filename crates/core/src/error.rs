//! Error types shared across the crate.

use std::fmt;

/// Convenience result alias for fallible configuration and analysis routines.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// Errors raised while validating PRAC / TPRAC configurations or running the
/// analytical security model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A numeric parameter was zero or otherwise outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// The analytical model could not find a TB-Window that keeps the
    /// worst-case activation count below the Back-Off threshold.
    NoSafeWindow {
        /// The RowHammer threshold that was requested.
        rowhammer_threshold: u32,
        /// The smallest window (in tREFI) that was probed.
        smallest_window_trefi: f64,
    },
    /// Two configuration options contradict each other.
    Inconsistent {
        /// Description of the contradiction.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidParameter { name, reason } => {
                write!(f, "invalid value for `{name}`: {reason}")
            }
            ConfigError::NoSafeWindow {
                rowhammer_threshold,
                smallest_window_trefi,
            } => write!(
                f,
                "no safe TB-Window exists for rowhammer threshold {rowhammer_threshold} \
                 (searched down to {smallest_window_trefi} tREFI)"
            ),
            ConfigError::Inconsistent { reason } => {
                write!(f, "inconsistent configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = ConfigError::InvalidParameter {
            name: "nbo",
            reason: "must be non-zero".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("nbo"));
        assert!(text.contains("non-zero"));
    }

    #[test]
    fn no_safe_window_mentions_threshold() {
        let err = ConfigError::NoSafeWindow {
            rowhammer_threshold: 64,
            smallest_window_trefi: 0.01,
        };
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
