//! Storage-overhead accounting (Section 6.8 of the paper).
//!
//! TPRAC's controller-side cost is a single **RFM-interval register** per
//! memory controller (24 bits suffice to express intervals up to roughly half
//! a refresh window at controller-clock granularity).  The DRAM-side cost of
//! the single-entry frequency-based mitigation queue is one (row address,
//! activation count) pair per bank.  This module makes those numbers
//! computable so the storage table can be regenerated and compared against
//! alternative queue designs.

use serde::{Deserialize, Serialize};

use crate::queue::QueueKind;
use crate::timing::DramTimingSummary;

/// Storage requirements of a mitigation design, split by location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageOverhead {
    /// Bits required inside the memory controller.
    pub controller_bits: u64,
    /// Bits required inside the DRAM device, per bank.
    pub dram_bits_per_bank: u64,
    /// Number of banks in the device used to scale the per-bank cost.
    pub banks: u32,
}

impl StorageOverhead {
    /// Total DRAM-side bits across all banks.
    #[must_use]
    pub fn dram_bits_total(&self) -> u64 {
        self.dram_bits_per_bank * u64::from(self.banks)
    }

    /// Total storage (controller + DRAM) in bytes, rounded up.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        (self.controller_bits + self.dram_bits_total()).div_ceil(8)
    }
}

/// Computes the width, in bits, of the RFM-interval register needed to
/// represent intervals up to `max_interval_ns` with `granularity_ns`
/// resolution.
#[must_use]
pub fn rfm_interval_register_bits(max_interval_ns: f64, granularity_ns: f64) -> u32 {
    if granularity_ns <= 0.0 || max_interval_ns <= 0.0 {
        return 0;
    }
    let steps = (max_interval_ns / granularity_ns).ceil().max(1.0) as u64;
    64 - steps.leading_zeros()
}

/// Storage accounting for TPRAC and the comparison queue designs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageModel {
    /// Bits needed to address a row within a bank (17 for 128 K rows).
    pub row_address_bits: u32,
    /// Bits of the per-row activation counter tracked by the queue entry.
    pub counter_bits: u32,
    /// Number of banks per device/channel.
    pub banks: u32,
}

impl StorageModel {
    /// Model for the evaluated 32 Gb DDR5 device (128 K rows per bank,
    /// 128 banks per channel as configured in Table 3).
    #[must_use]
    pub fn ddr5_32gb(timing: &DramTimingSummary, banks: u32) -> Self {
        let row_address_bits = 32 - (timing.rows_per_bank.max(2) - 1).leading_zeros();
        Self {
            row_address_bits,
            counter_bits: 12,
            banks,
        }
    }

    /// Storage overhead of TPRAC: the controller-side interval register plus
    /// the chosen in-DRAM queue.
    #[must_use]
    pub fn tprac_overhead(&self, timing: &DramTimingSummary, queue: QueueKind) -> StorageOverhead {
        // The register must cover intervals up to ~half of tREFW at a
        // controller-cycle granularity of one tREFI/1024 (≈ 3.8 ns), which
        // lands on the paper's 24-bit figure.
        let controller_bits = u64::from(rfm_interval_register_bits(
            timing.t_refw_ns / 2.0,
            timing.t_refi_ns / 1024.0,
        ));
        StorageOverhead {
            controller_bits,
            dram_bits_per_bank: self.queue_bits_per_bank(queue),
            banks: self.banks,
        }
    }

    /// Per-bank storage of a mitigation-queue design.
    #[must_use]
    pub fn queue_bits_per_bank(&self, queue: QueueKind) -> u64 {
        let entry_bits = u64::from(self.row_address_bits + self.counter_bits);
        match queue {
            QueueKind::SingleEntryFrequency => entry_bits,
            QueueKind::Fifo { capacity } => entry_bits * capacity as u64,
            // The idealised priority queue needs an entry per row — this is
            // exactly why it is an idealisation and not an implementation.
            QueueKind::Priority => entry_bits * u64::from(1u32 << self.row_address_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTimingSummary {
        DramTimingSummary::ddr5_8000b()
    }

    #[test]
    fn interval_register_is_24_bits_or_fewer() {
        let bits =
            rfm_interval_register_bits(timing().t_refw_ns / 2.0, timing().t_refi_ns / 1024.0);
        assert!(
            (20..=24).contains(&bits),
            "expected a ~24-bit interval register, got {bits}"
        );
    }

    #[test]
    fn degenerate_register_inputs_yield_zero() {
        assert_eq!(rfm_interval_register_bits(0.0, 1.0), 0);
        assert_eq!(rfm_interval_register_bits(100.0, 0.0), 0);
    }

    #[test]
    fn row_address_bits_cover_128k_rows() {
        let model = StorageModel::ddr5_32gb(&timing(), 128);
        assert_eq!(model.row_address_bits, 17);
    }

    #[test]
    fn single_entry_queue_is_tiny() {
        let model = StorageModel::ddr5_32gb(&timing(), 128);
        let overhead = model.tprac_overhead(&timing(), QueueKind::SingleEntryFrequency);
        // One (17 + 12)-bit entry per bank: 29 bits.
        assert_eq!(overhead.dram_bits_per_bank, 29);
        // Whole-channel cost stays under a kilobyte.
        assert!(overhead.total_bytes() < 1024);
    }

    #[test]
    fn fifo_scales_linearly_and_priority_explodes() {
        let model = StorageModel::ddr5_32gb(&timing(), 128);
        let single = model.queue_bits_per_bank(QueueKind::SingleEntryFrequency);
        let fifo4 = model.queue_bits_per_bank(QueueKind::Fifo { capacity: 4 });
        let priority = model.queue_bits_per_bank(QueueKind::Priority);
        assert_eq!(fifo4, single * 4);
        assert!(priority > fifo4 * 1000);
    }

    #[test]
    fn total_bytes_rounds_up() {
        let overhead = StorageOverhead {
            controller_bits: 24,
            dram_bits_per_bank: 29,
            banks: 1,
        };
        // 53 bits → 7 bytes.
        assert_eq!(overhead.total_bytes(), 7);
    }
}
