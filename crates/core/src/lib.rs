//! # prac-core
//!
//! Core abstractions for **Per Row Activation Counting (PRAC)** RowHammer
//! mitigations, the **TPRAC** (Timing-Safe PRAC) defense, and the analytical
//! worst-case security model used to size TPRAC's Timing-Based RFM interval.
//!
//! This crate is the paper's primary contribution distilled into a reusable
//! library. It is deliberately independent of any particular DRAM or CPU
//! simulator: the `dram-sim` and `memctrl` crates consume these types to build
//! a cycle-accurate model, while the analytical pieces ([`security`],
//! [`energy`], [`overhead`]) can be used standalone.
//!
//! ## What lives here
//!
//! * [`config`] — PRAC protocol parameters from the JEDEC DDR5 specification
//!   (Back-Off threshold `NBO`, PRAC level `Nmit`, `ABOACT`, `ABODelay`,
//!   Bank-Activation threshold `BAT`, `tRFMab`) plus the RowHammer threshold
//!   and mitigation-policy selection.
//! * [`queue`] — in-DRAM mitigation-queue designs: the paper's single-entry
//!   frequency-based queue, a FIFO queue (shown insecure by prior work), and
//!   an idealised full-priority queue (UPRAC).
//! * [`mitigation`] — the pluggable [`mitigation::MitigationEngine`] trait the
//!   memory controller drives at its decision points, plus the built-in
//!   engines (ABO-only, ACB-RFM, TPRAC, periodic PRFM, probabilistic PARA and
//!   the explicit no-mitigation baseline).
//! * [`tprac`] — the TPRAC policy: Timing-Based RFMs issued every `TB-Window`,
//!   Targeted-Refresh co-design, counter-reset handling.
//! * [`snapshot`] — the checkpoint/fork state-capture contract
//!   ([`snapshot::StateSnapshot`] / [`snapshot::Restorable`]) that lets the
//!   simulator capture a shared execution prefix once and fork a faithful
//!   copy per campaign cell.
//! * [`security`] — the Feinting/Wave worst-case analysis (Equations 1–5 of
//!   the paper) that computes the maximum activations an adversary can land on
//!   a single row (`TMAX`) and solves for the largest safe `TB-Window`.
//! * [`obfuscation`] — the alternative obfuscation-based defense of Section 7.1
//!   (random RFM injection) and its leakage estimate.
//! * [`energy`] — the energy-overhead model behind Table 5.
//! * [`overhead`] — storage-overhead accounting (Section 6.8).
//!
//! ## Quick example
//!
//! ```
//! use prac_core::config::{PracConfig, PracLevel};
//! use prac_core::security::{SecurityAnalysis, CounterResetPolicy};
//! use prac_core::timing::DramTimingSummary;
//!
//! // Size TPRAC's TB-Window for a RowHammer threshold of 1024.
//! let timing = DramTimingSummary::ddr5_8000b();
//! let prac = PracConfig::builder()
//!     .rowhammer_threshold(1024)
//!     .prac_level(PracLevel::One)
//!     .build();
//! let analysis = SecurityAnalysis::new(&prac, &timing, CounterResetPolicy::ResetEveryTrefw);
//! let window = analysis.solve_tb_window().expect("a safe window exists");
//! assert!(window.tb_window_trefi > 0.5 && window.tb_window_trefi < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod energy;
pub mod error;
pub mod mitigation;
pub mod obfuscation;
pub mod overhead;
pub mod queue;
pub mod security;
pub mod snapshot;
pub mod timing;
pub mod tprac;

pub use config::{MitigationPolicy, PracConfig, PracConfigBuilder, PracLevel};
pub use error::{ConfigError, Result};
pub use mitigation::{BankActivationView, MitigationDecision, MitigationEngine, ProactiveRfmKind};
pub use queue::{FifoQueue, MitigationQueue, PriorityQueue, QueueKind, SingleEntryQueue};
pub use security::{CounterResetPolicy, SecurityAnalysis, TbWindowSolution};
pub use snapshot::{Restorable, StateSnapshot};
pub use timing::DramTimingSummary;
pub use tprac::{TpracConfig, TpracScheduler, TrefRate};
