//! The pluggable mitigation-engine API.
//!
//! The memory controller no longer hard-codes the paper's three policies;
//! instead it drives a [`MitigationEngine`] trait object at its decision
//! points, so arbitrary RowHammer defenses — in-tree or injected by
//! downstream code — run through one cycle-exact contract:
//!
//! * **Proactive-RFM eligibility** — once per visited tick the controller
//!   calls [`MitigationEngine::poll`]; the returned [`MitigationDecision`]
//!   says whether to issue an RFM All-Bank now (and how to classify it) and
//!   how many scheduled mitigations were skipped at this tick.
//! * **Issue feedback** — [`MitigationEngine::rfm_issued`] /
//!   [`MitigationEngine::rfm_rejected`] report whether the requested RFM went
//!   out (the DRAM channel may be blocked by a refresh or an earlier RFM).
//! * **Alert handling** — the JEDEC Alert Back-Off responder is shared
//!   controller infrastructure; [`MitigationEngine::responds_to_alert`]
//!   decides whether it is armed at all (`false` only for the explicit
//!   no-mitigation baseline).
//! * **Refresh / TREF notifications** — [`MitigationEngine::note_refresh`]
//!   and [`MitigationEngine::note_targeted_refresh`] deliver the periodic
//!   refresh stream so co-designed defenses (TPRAC's TREF skip) can react.
//! * **Event-engine obligation** — [`MitigationEngine::next_event_at`]
//!   registers the engine's next wake-up so the event-driven simulation
//!   engine can skip every tick in which the engine provably does nothing.
//!
//! # Determinism and purity rules
//!
//! Both simulation engines must produce bit-identical results, which imposes
//! two contracts on every implementation:
//!
//! 1. **Unannounced polls are pure.** The event engine only visits ticks
//!    some component registered a wake-up for; the tick engine visits every
//!    tick.  So on any tick the engine's own `next_event_at` did *not*
//!    announce, `poll` must return an idle decision and must not mutate any
//!    state — a "counting" unannounced poll would diverge between the two
//!    engines.  An engine *may* mutate on an announced tick even when the
//!    decision comes out idle (e.g. [`ParaEngine`] consumes new activations
//!    and advances its RNG on failed draws — legal precisely because its
//!    `next_event_at` reports a wake whenever unconsumed activations
//!    exist, so both engines visit those ticks).
//! 2. **Randomness is seeded.** Probabilistic engines (e.g. [`ParaEngine`])
//!    must derive every draw from an explicit seed carried in the
//!    configuration, never from ambient entropy, so a scenario re-runs
//!    bit-for-bit.
//!
//! `next_event_at` may be conservative (waking early is harmless because an
//! idle poll is pure) but must never be later than the first tick at which
//! `poll` would return a non-idle decision.
//!
//! Counter-reset policy is configuration, not runtime behaviour: a defense
//! declares whether per-row counters reset every tREFW through
//! [`crate::config::PracConfig::counter_reset_every_trefw`] when its
//! descriptor is resolved, and the DRAM device enforces it.

use crate::tprac::{TpracConfig, TpracEvent, TpracScheduler};

/// Read-only view of the per-bank activation state a mitigation engine may
/// consult at a decision point.  Implemented by the memory controller over
/// the live DRAM device.
pub trait BankActivationView {
    /// Number of banks in the channel.
    fn bank_count(&self) -> usize;
    /// Activations bank `bank` has accumulated since its last RFM.
    fn activations_since_rfm(&self, bank: usize) -> u32;
    /// Cumulative row activations across the whole channel since reset.
    fn total_activations(&self) -> u64;
}

/// How an engine's proactive RFMs are classified in the controller
/// statistics and the RFM log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProactiveRfmKind {
    /// Activation-Based RFM (the JEDEC Targeted-RFM mechanism; activity
    /// dependent).
    ActivationBased,
    /// TPRAC Timing-Based RFM (activity independent).
    TimingBased,
    /// Periodic RFM issued on a fixed tREFI cadence (activity independent).
    Periodic,
    /// Probabilistic per-activation RFM (PARA-style; activity dependent).
    Probabilistic,
}

/// What the engine asks the controller to do at one tick.
///
/// `skipped` and `issue` are independent: a TPRAC window boundary can count
/// a TREF-skipped TB-RFM *and* retry an earlier deferred RFM at the same
/// tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationDecision {
    /// Scheduled mitigations skipped at this tick (e.g. a TB-RFM absorbed by
    /// a Targeted Refresh).  Counted in the statistics; nothing is issued.
    pub skipped: u32,
    /// Issue an RFM All-Bank now, classified as the given kind.
    pub issue: Option<ProactiveRfmKind>,
}

impl MitigationDecision {
    /// Nothing to do this tick.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            skipped: 0,
            issue: None,
        }
    }

    /// Issue an RFM of `kind` now.
    #[must_use]
    pub fn issue(kind: ProactiveRfmKind) -> Self {
        Self {
            skipped: 0,
            issue: Some(kind),
        }
    }

    /// `true` when the decision neither issues nor skips anything.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.skipped == 0 && self.issue.is_none()
    }
}

/// A cycle-exact proactive-mitigation policy the memory controller drives.
///
/// See the [module documentation](self) for the decision points and the
/// determinism contract.  Implementations must be `Send` so simulations can
/// run on the campaign runner's worker threads.
pub trait MitigationEngine: std::fmt::Debug + Send {
    /// Deep-copies the engine behind its trait object (checkpoint/fork).
    fn clone_box(&self) -> Box<dyn MitigationEngine>;

    /// Captures the engine's complete state — see [`crate::snapshot`].
    fn snapshot(&self) -> crate::snapshot::StateSnapshot;

    /// Restores state previously captured from the same engine type.
    fn restore(&mut self, snapshot: &crate::snapshot::StateSnapshot);

    /// Short human-readable label (reports, logs).
    fn label(&self) -> &'static str;

    /// Whether the controller's Alert Back-Off responder is armed.  `false`
    /// only for the explicit no-mitigation baseline; every real defense
    /// keeps the JEDEC safety net.
    fn responds_to_alert(&self) -> bool {
        true
    }

    /// Called once per visited tick (when the command slot was not consumed
    /// by a refresh or an ABO response).  Returns the engine's decision.
    fn poll(&mut self, now: u64, banks: &dyn BankActivationView) -> MitigationDecision;

    /// The RFM requested by [`MitigationEngine::poll`] was issued at `now`;
    /// the channel is blocked until `blocked_until`.
    fn rfm_issued(&mut self, now: u64, blocked_until: u64) {
        let _ = (now, blocked_until);
    }

    /// The RFM requested by [`MitigationEngine::poll`] could not be issued
    /// at `now` (channel busy).  Engines that must not lose the mitigation
    /// re-arm here and re-request it from a later `poll`.
    fn rfm_rejected(&mut self, now: u64) {
        let _ = now;
    }

    /// A periodic refresh was issued at `now`.
    fn note_refresh(&mut self, now: u64) {
        let _ = now;
    }

    /// The DRAM performed a Targeted Refresh at `now` (mitigating each
    /// bank's queue head).
    fn note_targeted_refresh(&mut self, now: u64) {
        let _ = now;
    }

    /// Earliest tick at which [`MitigationEngine::poll`] could return a
    /// non-idle decision, or `None` when the engine has no timer armed and
    /// no work deferred.  `channel_ready_at` is the earliest tick the DRAM
    /// channel accepts a command (deferred RFMs can only go out then).  The
    /// controller clamps the result to `now + 1`.
    fn next_event_at(
        &self,
        now: u64,
        banks: &dyn BankActivationView,
        channel_ready_at: u64,
    ) -> Option<u64>;
}

/// ABO-only policy: no proactive RFMs at all; mitigation happens purely
/// through the shared Alert Back-Off responder.
#[derive(Debug, Clone, Default)]
pub struct AboOnlyEngine;

impl Clone for Box<dyn MitigationEngine> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl MitigationEngine for AboOnlyEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "ABO-Only"
    }

    fn poll(&mut self, _now: u64, _banks: &dyn BankActivationView) -> MitigationDecision {
        MitigationDecision::idle()
    }

    fn next_event_at(
        &self,
        _now: u64,
        _banks: &dyn BankActivationView,
        _channel_ready_at: u64,
    ) -> Option<u64> {
        None
    }
}

/// Explicit no-mitigation baseline: no proactive RFMs *and* no Alert
/// response.  This is the normalisation baseline of every performance
/// figure, replacing the old trick of setting the Back-Off threshold to an
/// unreachable value.
#[derive(Debug, Clone, Default)]
pub struct DisabledEngine;

impl MitigationEngine for DisabledEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "Disabled"
    }

    fn responds_to_alert(&self) -> bool {
        false
    }

    fn poll(&mut self, _now: u64, _banks: &dyn BankActivationView) -> MitigationDecision {
        MitigationDecision::idle()
    }

    fn next_event_at(
        &self,
        _now: u64,
        _banks: &dyn BankActivationView,
        _channel_ready_at: u64,
    ) -> Option<u64> {
        None
    }
}

/// Proactive Activation-Based RFM engine (the JEDEC Targeted-RFM
/// mechanism): issues an RFM whenever any bank's activation count since its
/// last RFM reaches the Bank-Activation threshold (BAT).  Activity
/// dependent, and therefore still exploitable as a timing channel.
#[derive(Debug, Clone)]
pub struct AcbEngine {
    bank_activation_threshold: u32,
    rfms_requested: u64,
}

impl AcbEngine {
    /// Creates the engine with the given Bank-Activation threshold.
    #[must_use]
    pub fn new(bank_activation_threshold: u32) -> Self {
        Self {
            bank_activation_threshold,
            rfms_requested: 0,
        }
    }

    /// The configured Bank-Activation threshold.
    #[must_use]
    pub fn bank_activation_threshold(&self) -> u32 {
        self.bank_activation_threshold
    }

    /// Number of ACB-RFMs issued so far.
    #[must_use]
    pub fn rfms_requested(&self) -> u64 {
        self.rfms_requested
    }

    fn wants_rfm(&self, banks: &dyn BankActivationView) -> bool {
        (0..banks.bank_count())
            .any(|bank| banks.activations_since_rfm(bank) >= self.bank_activation_threshold)
    }
}

impl MitigationEngine for AcbEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "ABO+ACB-RFM"
    }

    fn poll(&mut self, _now: u64, banks: &dyn BankActivationView) -> MitigationDecision {
        if self.wants_rfm(banks) {
            MitigationDecision::issue(ProactiveRfmKind::ActivationBased)
        } else {
            MitigationDecision::idle()
        }
    }

    fn rfm_issued(&mut self, _now: u64, _blocked_until: u64) {
        self.rfms_requested += 1;
    }

    fn next_event_at(
        &self,
        _now: u64,
        banks: &dyn BankActivationView,
        channel_ready_at: u64,
    ) -> Option<u64> {
        // The bank counters only move on visited ticks, so the engine either
        // wants an RFM now (issue as soon as the channel frees up) or has
        // nothing scheduled.
        self.wants_rfm(banks).then_some(channel_ready_at)
    }
}

/// The TPRAC defense: activity-independent Timing-Based RFMs driven by a
/// [`TpracScheduler`], with Targeted-Refresh skips.  A TB-RFM whose deadline
/// passes while the channel is busy is deferred and issued as soon as the
/// device accepts it (the deadline already advanced inside the scheduler, so
/// RFM *timing* stays activity independent).
#[derive(Debug, Clone)]
pub struct TpracEngine {
    scheduler: TpracScheduler,
    /// A deadline TB-RFM the channel rejected; retried every poll.
    pending_tb_rfm: bool,
    /// Whether the in-flight issue request came from the scheduler deadline
    /// (as opposed to the deferred-RFM retry path).
    issuing_from_deadline: bool,
}

impl TpracEngine {
    /// Creates the engine with its first TB-RFM due one window from `now`.
    #[must_use]
    pub fn new(config: TpracConfig, now: u64) -> Self {
        Self {
            scheduler: TpracScheduler::new(config, now),
            pending_tb_rfm: false,
            issuing_from_deadline: false,
        }
    }

    /// The scheduler driving this engine.
    #[must_use]
    pub fn scheduler(&self) -> &TpracScheduler {
        &self.scheduler
    }
}

impl MitigationEngine for TpracEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "TPRAC"
    }

    fn poll(&mut self, now: u64, _banks: &dyn BankActivationView) -> MitigationDecision {
        self.issuing_from_deadline = false;
        let skipped = match self.scheduler.tick(now) {
            TpracEvent::IssueTbRfm => {
                self.issuing_from_deadline = true;
                return MitigationDecision::issue(ProactiveRfmKind::TimingBased);
            }
            TpracEvent::SkippedByTref => 1,
            TpracEvent::Idle => 0,
        };
        MitigationDecision {
            skipped,
            issue: self.pending_tb_rfm.then_some(ProactiveRfmKind::TimingBased),
        }
    }

    fn rfm_issued(&mut self, _now: u64, _blocked_until: u64) {
        if !self.issuing_from_deadline {
            self.pending_tb_rfm = false;
        }
    }

    fn rfm_rejected(&mut self, _now: u64) {
        if self.issuing_from_deadline {
            self.pending_tb_rfm = true;
        }
    }

    fn note_targeted_refresh(&mut self, _now: u64) {
        self.scheduler.note_targeted_refresh();
    }

    fn next_event_at(
        &self,
        _now: u64,
        _banks: &dyn BankActivationView,
        channel_ready_at: u64,
    ) -> Option<u64> {
        let mut wake = self.scheduler.next_deadline();
        if self.pending_tb_rfm {
            wake = wake.min(channel_ready_at);
        }
        Some(wake)
    }
}

/// PRFM: a periodic-RFM baseline that issues one RFM All-Bank every
/// `every_trefi` tREFI, independent of activity and without any per-row
/// state.  Simpler than TPRAC (no security solver, no TREF co-design) and
/// activity independent, but its fixed cadence must be provisioned for the
/// worst case, so it pays the full bandwidth cost at every threshold.
#[derive(Debug, Clone)]
pub struct PrfmEngine {
    period_ticks: u64,
    next_deadline: u64,
    /// A deadline RFM the channel rejected; retried every poll.
    pending_rfm: bool,
    issuing_from_deadline: bool,
    issued: u64,
}

impl PrfmEngine {
    /// Creates an engine issuing one RFM every `every_trefi` tREFI, with the
    /// first due one period after `now`.  `every_trefi` is clamped to at
    /// least 1.
    #[must_use]
    pub fn new(every_trefi: u32, t_refi_ticks: u64, now: u64) -> Self {
        let period_ticks = t_refi_ticks
            .saturating_mul(u64::from(every_trefi.max(1)))
            .max(1);
        Self {
            period_ticks,
            next_deadline: now + period_ticks,
            pending_rfm: false,
            issuing_from_deadline: false,
            issued: 0,
        }
    }

    /// The RFM period in ticks.
    #[must_use]
    pub fn period_ticks(&self) -> u64 {
        self.period_ticks
    }

    /// Periodic RFMs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The absolute tick at which the next periodic RFM is due.
    #[must_use]
    pub fn next_deadline(&self) -> u64 {
        self.next_deadline
    }
}

impl MitigationEngine for PrfmEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "PRFM"
    }

    fn poll(&mut self, now: u64, _banks: &dyn BankActivationView) -> MitigationDecision {
        self.issuing_from_deadline = false;
        if now >= self.next_deadline {
            // One event per poll: a long gap between polls catches up one
            // period at a time, exactly like the TPRAC scheduler.
            self.next_deadline += self.period_ticks;
            self.issuing_from_deadline = true;
            return MitigationDecision::issue(ProactiveRfmKind::Periodic);
        }
        if self.pending_rfm {
            return MitigationDecision::issue(ProactiveRfmKind::Periodic);
        }
        MitigationDecision::idle()
    }

    fn rfm_issued(&mut self, _now: u64, _blocked_until: u64) {
        self.issued += 1;
        if !self.issuing_from_deadline {
            self.pending_rfm = false;
        }
    }

    fn rfm_rejected(&mut self, _now: u64) {
        if self.issuing_from_deadline {
            self.pending_rfm = true;
        }
    }

    fn next_event_at(
        &self,
        _now: u64,
        _banks: &dyn BankActivationView,
        channel_ready_at: u64,
    ) -> Option<u64> {
        let mut wake = self.next_deadline;
        if self.pending_rfm {
            wake = wake.min(channel_ready_at);
        }
        Some(wake)
    }
}

/// PARA-style probabilistic engine: every row activation triggers an RFM
/// All-Bank with probability `1 / one_in`, drawn from a seeded xorshift64*
/// stream.  Activity *dependent* (more activations → more RFMs), so it does
/// not close the PRACLeak timing channel, but its per-activation decision
/// needs no counters at all — the classic PARA trade-off.
#[derive(Debug, Clone)]
pub struct ParaEngine {
    /// Issue threshold on the 64-bit RNG output (`u64::MAX / one_in`).
    threshold: u64,
    state: u64,
    /// Channel-wide activations already consumed from the view.
    seen_activations: u64,
    /// RFMs drawn but not yet issued (the channel may be busy).
    owed: u64,
    issued: u64,
}

impl ParaEngine {
    /// Creates an engine issuing an RFM with probability `1 / one_in` per
    /// activation (`one_in` clamped to at least 1), seeded with `seed`.
    #[must_use]
    pub fn new(one_in: u32, seed: u64) -> Self {
        Self {
            threshold: u64::MAX / u64::from(one_in.max(1)),
            state: seed.max(1),
            seen_activations: 0,
            owed: 0,
            issued: 0,
        }
    }

    /// Probabilistic RFMs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// RFMs drawn but still waiting for the channel.
    #[must_use]
    pub fn owed(&self) -> u64 {
        self.owed
    }

    fn draw(&mut self) -> bool {
        // xorshift64* — the same generator the obfuscation defense uses.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) < self.threshold
    }
}

impl MitigationEngine for ParaEngine {
    crate::snapshot_methods!(dyn MitigationEngine);

    fn label(&self) -> &'static str {
        "PARA"
    }

    fn poll(&mut self, _now: u64, banks: &dyn BankActivationView) -> MitigationDecision {
        let total = banks.total_activations();
        // One seeded draw per activation, in activation order: batching
        // (the event engine may deliver several at once) cannot change the
        // stream.
        while self.seen_activations < total {
            self.seen_activations += 1;
            if self.draw() {
                self.owed += 1;
            }
        }
        if self.owed > 0 {
            MitigationDecision::issue(ProactiveRfmKind::Probabilistic)
        } else {
            MitigationDecision::idle()
        }
    }

    fn rfm_issued(&mut self, _now: u64, _blocked_until: u64) {
        self.owed = self.owed.saturating_sub(1);
        self.issued += 1;
    }

    fn next_event_at(
        &self,
        now: u64,
        banks: &dyn BankActivationView,
        channel_ready_at: u64,
    ) -> Option<u64> {
        if self.owed > 0 {
            return Some(channel_ready_at);
        }
        // Unconsumed activations may owe a draw: wake immediately so the
        // poll sequence matches the tick engine's.
        (banks.total_activations() != self.seen_activations).then_some(now + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramTimingSummary;

    /// A synthetic bank view for unit tests.
    struct TestView {
        per_bank: Vec<u32>,
        total: u64,
    }

    impl BankActivationView for TestView {
        fn bank_count(&self) -> usize {
            self.per_bank.len()
        }
        fn activations_since_rfm(&self, bank: usize) -> u32 {
            self.per_bank[bank]
        }
        fn total_activations(&self) -> u64 {
            self.total
        }
    }

    fn idle_view() -> TestView {
        TestView {
            per_bank: vec![0; 4],
            total: 0,
        }
    }

    fn all_engines() -> Vec<Box<dyn MitigationEngine>> {
        let timing = DramTimingSummary::ddr5_8000b();
        vec![
            Box::new(AboOnlyEngine),
            Box::new(DisabledEngine),
            Box::new(AcbEngine::new(16)),
            Box::new(TpracEngine::new(
                TpracConfig::with_window_trefi(1.0, &timing),
                0,
            )),
            Box::new(PrfmEngine::new(1, 15_600, 0)),
            Box::new(ParaEngine::new(128, 7)),
        ]
    }

    #[test]
    fn every_engine_snapshot_restores_to_identical_behaviour() {
        // Drive each engine for a while, snapshot it, keep driving the
        // original, restore a fresh clone from the snapshot, and check the
        // restored engine replays the exact same decisions the original made
        // after the capture point.  The seeded PARA engine is the sharpest
        // check: its future random draws must survive the round trip.
        for prototype in all_engines() {
            let mut original = prototype.clone_box();
            let view = TestView {
                per_bank: vec![64; 2],
                total: 1024,
            };
            for now in 0..5_000u64 {
                if original.poll(now, &view).issue.is_some() {
                    original.rfm_issued(now, now + 10);
                }
            }
            let snap = original.snapshot();
            let mut restored = prototype.clone_box();
            restored.restore(&snap);
            for now in 5_000..20_000u64 {
                let a = original.poll(now, &view);
                let b = restored.poll(now, &view);
                assert_eq!(
                    a.issue,
                    b.issue,
                    "{} diverged after restore at tick {now}",
                    original.label()
                );
                if a.issue.is_some() {
                    original.rfm_issued(now, now + 10);
                    restored.rfm_issued(now, now + 10);
                }
            }
        }
    }

    #[test]
    fn idle_polls_are_pure_and_idle() {
        // Contract rule 1 (unannounced polls are pure): with no activations
        // and no elapsed deadline nothing announces a wake, so poll must
        // return idle and next_event_at must not move.
        let view = idle_view();
        for engine in &mut all_engines() {
            for now in 0..64 {
                let wake_before = engine.next_event_at(now, &view, now);
                let decision = engine.poll(now, &view);
                assert!(
                    decision.is_idle(),
                    "{} polled non-idle at tick {now} with nothing to do",
                    engine.label()
                );
                let wake_after = engine.next_event_at(now, &view, now);
                assert_eq!(
                    wake_before,
                    wake_after,
                    "{} mutated wake-up state on an idle poll",
                    engine.label()
                );
            }
        }
    }

    #[test]
    fn next_event_at_is_monotone_and_never_in_the_past() {
        // Drive each engine tick by tick (acknowledging every requested RFM)
        // and assert that after a poll at `now` the advertised wake-up lies
        // strictly in the future — the event engine would otherwise loop on
        // the current tick — and that re-querying an unchanged engine agrees
        // with itself (purity of `next_event_at`).
        for engine in &mut all_engines() {
            for now in 0..40_000u64 {
                let view = TestView {
                    per_bank: vec![u32::try_from(now / 64).unwrap(); 2],
                    total: now / 4,
                };
                let decision = engine.poll(now, &view);
                if decision.issue.is_some() {
                    engine.rfm_issued(now, now + 10);
                }
                let wake = engine.next_event_at(now, &view, now + 1);
                assert_eq!(
                    wake,
                    engine.next_event_at(now, &view, now + 1),
                    "{}: next_event_at is not pure",
                    engine.label()
                );
                if let Some(wake) = wake {
                    assert!(
                        wake > now,
                        "{}: wake {wake} is not after now {now}",
                        engine.label()
                    );
                }
            }
        }
    }

    #[test]
    fn abo_only_and_disabled_never_issue() {
        let view = TestView {
            per_bank: vec![u32::MAX; 4],
            total: 1 << 20,
        };
        for engine in [
            &mut AboOnlyEngine as &mut dyn MitigationEngine,
            &mut DisabledEngine,
        ] {
            for now in 0..1000 {
                assert!(engine.poll(now, &view).is_idle());
            }
            assert_eq!(engine.next_event_at(1000, &view, 1000), None);
        }
        assert!(AboOnlyEngine.responds_to_alert());
        assert!(!DisabledEngine.responds_to_alert());
    }

    #[test]
    fn acb_engine_triggers_at_bat() {
        let mut engine = AcbEngine::new(16);
        let below = TestView {
            per_bank: vec![0, 5, 15],
            total: 20,
        };
        assert!(engine.poll(0, &below).is_idle());
        assert_eq!(engine.next_event_at(0, &below, 50), None);
        let at = TestView {
            per_bank: vec![0, 16, 2],
            total: 18,
        };
        assert_eq!(
            engine.poll(1, &at).issue,
            Some(ProactiveRfmKind::ActivationBased)
        );
        // Wakes as soon as the channel frees up.
        assert_eq!(engine.next_event_at(1, &at, 50), Some(50));
        engine.rfm_issued(1, 1400);
        assert_eq!(engine.rfms_requested(), 1);
        assert_eq!(engine.bank_activation_threshold(), 16);
    }

    #[test]
    fn prfm_issues_on_a_fixed_cadence() {
        let period = 1_000u64;
        let mut engine = PrfmEngine::new(1, period, 0);
        let view = idle_view();
        let mut issue_ticks = Vec::new();
        for now in 0..period * 4 + 1 {
            let decision = engine.poll(now, &view);
            if decision.issue.is_some() {
                engine.rfm_issued(now, now + 10);
                issue_ticks.push(now);
            }
        }
        assert_eq!(
            issue_ticks,
            vec![period, period * 2, period * 3, period * 4]
        );
        assert_eq!(engine.issued(), 4);
    }

    #[test]
    fn prfm_cadence_is_activity_independent() {
        // The issue schedule must not depend on what the banks report.
        let busy = TestView {
            per_bank: vec![1000; 8],
            total: 1 << 30,
        };
        let quiet = idle_view();
        let period = 512u64;
        let mut a = PrfmEngine::new(1, period, 0);
        let mut b = PrfmEngine::new(1, period, 0);
        let run = |engine: &mut PrfmEngine, view: &TestView| {
            let mut ticks = Vec::new();
            for now in 0..period * 3 + 1 {
                if engine.poll(now, view).issue.is_some() {
                    engine.rfm_issued(now, now);
                    ticks.push(now);
                }
            }
            ticks
        };
        assert_eq!(run(&mut a, &busy), run(&mut b, &quiet));
    }

    #[test]
    fn prfm_defers_rejected_deadline_rfms() {
        let period = 100u64;
        let mut engine = PrfmEngine::new(1, period, 0);
        let view = idle_view();
        assert!(engine.poll(period, &view).issue.is_some());
        engine.rfm_rejected(period);
        // Deferred: retried immediately, wake bound by the channel.
        assert_eq!(
            engine.next_event_at(period, &view, period + 7),
            Some(period + 7)
        );
        assert!(engine.poll(period + 7, &view).issue.is_some());
        engine.rfm_issued(period + 7, period + 20);
        assert!(engine.poll(period + 8, &view).is_idle());
        // The *next* deadline was not pushed back by the deferral.
        assert_eq!(engine.next_deadline(), period * 2);
    }

    #[test]
    fn para_draws_once_per_activation_and_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut engine = ParaEngine::new(4, seed);
            let mut issue_ticks = Vec::new();
            for now in 0..512u64 {
                let view = TestView {
                    per_bank: vec![0; 2],
                    total: now, // one new activation per tick
                };
                if engine.poll(now, &view).issue.is_some() {
                    engine.rfm_issued(now, now);
                    issue_ticks.push(now);
                }
            }
            (issue_ticks, engine.issued())
        };
        let (ticks_a, issued_a) = run(9);
        let (ticks_b, issued_b) = run(9);
        assert_eq!(ticks_a, ticks_b, "same seed must replay bit-for-bit");
        assert_eq!(issued_a, issued_b);
        // ~1/4 of 511 activations ± a generous tolerance.
        assert!(
            (60..200).contains(&(issued_a as usize)),
            "unexpected issue count {issued_a}"
        );
        let (ticks_c, _) = run(10);
        assert_ne!(ticks_a, ticks_c, "different seeds must differ");
    }

    #[test]
    fn para_batched_observation_matches_per_tick_observation() {
        // The event engine may deliver several activations in one poll; the
        // RNG stream (and therefore the owed count) must not change.
        let total = 300u64;
        let mut stepped = ParaEngine::new(8, 42);
        for t in 1..=total {
            let view = TestView {
                per_bank: vec![0],
                total: t,
            };
            let _ = stepped.poll(t, &view);
        }
        let mut batched = ParaEngine::new(8, 42);
        let view = TestView {
            per_bank: vec![0],
            total,
        };
        let _ = batched.poll(total, &view);
        assert_eq!(stepped.owed(), batched.owed());
        assert_eq!(stepped.state, batched.state);
    }

    #[test]
    fn para_wakes_for_unseen_activations_and_owed_rfms() {
        let mut engine = ParaEngine::new(1, 3); // p = 1: every ACT owes an RFM
        let fresh = TestView {
            per_bank: vec![0],
            total: 1,
        };
        // Unseen activation: wake immediately.
        assert_eq!(engine.next_event_at(10, &fresh, 50), Some(11));
        assert!(engine.poll(10, &fresh).issue.is_some());
        // Owed RFM: wake when the channel is ready.
        assert_eq!(engine.next_event_at(10, &fresh, 50), Some(50));
        engine.rfm_issued(10, 60);
        assert_eq!(engine.next_event_at(10, &fresh, 50), None);
    }

    #[test]
    fn tprac_engine_defers_and_skips_like_the_inline_implementation() {
        let timing = DramTimingSummary::ddr5_8000b();
        let config = TpracConfig::with_window_trefi(1.0, &timing);
        let window = config.tb_window_ticks;
        let mut engine = TpracEngine::new(config, 0);
        let view = idle_view();

        // Deadline RFM rejected: deferred, deadline already advanced.
        assert!(engine.poll(window, &view).issue.is_some());
        engine.rfm_rejected(window);
        assert_eq!(
            engine.next_event_at(window, &view, window + 9),
            Some(window + 9)
        );
        assert!(engine.poll(window + 9, &view).issue.is_some());
        engine.rfm_issued(window + 9, window + 100);

        // A TREF absorbs the next window's TB-RFM and counts a skip.
        engine.note_targeted_refresh(window + 50);
        let decision = engine.poll(window * 2, &view);
        assert_eq!(decision.skipped, 1);
        assert_eq!(decision.issue, None);
    }
}
