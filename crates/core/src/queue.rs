//! In-DRAM mitigation-queue designs.
//!
//! The PRAC specification leaves the mitigation-queue design to DRAM vendors.
//! The paper (Section 4.1) proposes a **single-entry frequency-based queue
//! per bank**: the queue tracks the address and activation count of the most
//! heavily activated row, replaces its entry when another row's counter
//! exceeds the tracked count, and is drained (the tracked row is mitigated and
//! its counter reset) whenever an RFM reaches the bank.
//!
//! Two comparison points are also provided:
//!
//! * [`FifoQueue`] — a bounded FIFO of rows that crossed the Back-Off
//!   threshold, shown by prior work (QPRAC, MOAT) to be attackable.
//! * [`PriorityQueue`] — an idealised queue that remembers every activated
//!   row and always mitigates the global maximum (the UPRAC idealisation used
//!   as the security reference point in Section 4.2).

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

/// Identifier of a DRAM row within a bank.
pub type RowIndex = u32;

/// Which mitigation-queue design a simulation should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QueueKind {
    /// The paper's single-entry frequency-based queue.
    #[default]
    SingleEntryFrequency,
    /// A bounded FIFO queue of alerted rows.
    Fifo {
        /// Maximum number of pending entries.
        capacity: usize,
    },
    /// The idealised UPRAC priority queue (tracks all rows).
    Priority,
}

impl QueueKind {
    /// Instantiates the corresponding queue implementation.
    #[must_use]
    pub fn instantiate(self) -> Box<dyn MitigationQueue> {
        match self {
            QueueKind::SingleEntryFrequency => Box::new(SingleEntryQueue::new()),
            QueueKind::Fifo { capacity } => Box::new(FifoQueue::new(capacity)),
            QueueKind::Priority => Box::new(PriorityQueue::new()),
        }
    }
}

/// Behaviour shared by all in-DRAM mitigation-queue designs.
///
/// A queue observes every row activation in its bank (with the row's current
/// PRAC counter value) and, when the bank receives an RFM or Targeted
/// Refresh, nominates the row to mitigate.
pub trait MitigationQueue: std::fmt::Debug + Send {
    /// Deep-copies the queue behind its trait object (checkpoint/fork).
    fn clone_box(&self) -> Box<dyn MitigationQueue>;

    /// Captures the queue's complete state — see [`crate::snapshot`].
    fn snapshot(&self) -> crate::snapshot::StateSnapshot;

    /// Restores state previously captured from the same queue type.
    fn restore(&mut self, snapshot: &crate::snapshot::StateSnapshot);

    /// Records that `row` was activated and now has `activation_count`
    /// accumulated activations.
    fn observe_activation(&mut self, row: RowIndex, activation_count: u32);

    /// Removes and returns the row that should be mitigated by the next RFM,
    /// or `None` when the queue has nothing to mitigate.
    fn pop_for_mitigation(&mut self) -> Option<RowIndex>;

    /// Returns the row the queue would mitigate next without removing it.
    fn peek(&self) -> Option<RowIndex>;

    /// Notifies the queue that `row` was mitigated (its PRAC counter was
    /// reset), e.g. because a Targeted Refresh covered it.
    fn on_row_mitigated(&mut self, row: RowIndex);

    /// Clears all queue state (used when per-row counters are reset at tREFW).
    fn reset(&mut self);

    /// Number of rows currently tracked.
    fn len(&self) -> usize;

    /// Returns `true` when no rows are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's single-entry frequency-based mitigation queue.
///
/// Tracks only the most heavily activated row seen since the last mitigation.
/// This is sufficient, in combination with TPRAC's fixed-interval TB-RFMs, to
/// match the security of the idealised UPRAC design (Section 4.2.3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SingleEntryQueue {
    entry: Option<(RowIndex, u32)>,
}

impl SingleEntryQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The activation count of the currently tracked row, if any.
    #[must_use]
    pub fn tracked_count(&self) -> Option<u32> {
        self.entry.map(|(_, c)| c)
    }
}

impl Clone for Box<dyn MitigationQueue> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl MitigationQueue for SingleEntryQueue {
    crate::snapshot_methods!(dyn MitigationQueue);

    fn observe_activation(&mut self, row: RowIndex, activation_count: u32) {
        match self.entry {
            Some((tracked_row, tracked_count)) => {
                if row == tracked_row {
                    self.entry = Some((row, activation_count.max(tracked_count)));
                } else if activation_count > tracked_count {
                    self.entry = Some((row, activation_count));
                }
            }
            None => self.entry = Some((row, activation_count)),
        }
    }

    fn pop_for_mitigation(&mut self) -> Option<RowIndex> {
        self.entry.take().map(|(row, _)| row)
    }

    fn peek(&self) -> Option<RowIndex> {
        self.entry.map(|(row, _)| row)
    }

    fn on_row_mitigated(&mut self, row: RowIndex) {
        if let Some((tracked, _)) = self.entry {
            if tracked == row {
                self.entry = None;
            }
        }
    }

    fn reset(&mut self) {
        self.entry = None;
    }

    fn len(&self) -> usize {
        usize::from(self.entry.is_some())
    }
}

/// Bounded FIFO queue of rows that crossed the Back-Off threshold.
///
/// Included as the insecure comparison point: a FIFO admits decoy rows in
/// arrival order, so an attacker can keep the target row out of the queue
/// (prior work demonstrates targeted attacks against this design).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoQueue {
    capacity: usize,
    entries: VecDeque<RowIndex>,
    /// Per-row counts seen so far, used only to decide admission (a row is
    /// admitted the first time it is observed after a drain).
    admission_threshold: u32,
}

impl FifoQueue {
    /// Creates a FIFO queue holding at most `capacity` pending rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "FIFO mitigation queue capacity must be non-zero"
        );
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            admission_threshold: 1,
        }
    }

    /// Sets the activation count a row must reach before it is admitted.
    #[must_use]
    pub fn with_admission_threshold(mut self, threshold: u32) -> Self {
        self.admission_threshold = threshold.max(1);
        self
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl MitigationQueue for FifoQueue {
    crate::snapshot_methods!(dyn MitigationQueue);

    fn observe_activation(&mut self, row: RowIndex, activation_count: u32) {
        if activation_count >= self.admission_threshold
            && !self.entries.contains(&row)
            && self.entries.len() < self.capacity
        {
            self.entries.push_back(row);
        }
    }

    fn pop_for_mitigation(&mut self) -> Option<RowIndex> {
        self.entries.pop_front()
    }

    fn peek(&self) -> Option<RowIndex> {
        self.entries.front().copied()
    }

    fn on_row_mitigated(&mut self, row: RowIndex) {
        self.entries.retain(|&r| r != row);
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Idealised UPRAC priority queue: tracks the activation count of every row
/// and always nominates the global maximum for mitigation.
///
/// This is the security reference point of Section 4.2 — TPRAC with the
/// single-entry queue is shown to match it — and is also useful for the
/// queue-design ablation benchmark.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityQueue {
    counts: HashMap<RowIndex, u32>,
}

impl PriorityQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The activation count currently recorded for `row`.
    #[must_use]
    pub fn count_of(&self, row: RowIndex) -> u32 {
        self.counts.get(&row).copied().unwrap_or(0)
    }

    fn max_entry(&self) -> Option<RowIndex> {
        self.counts
            .iter()
            .max_by_key(|&(row, count)| (*count, std::cmp::Reverse(*row)))
            .map(|(row, _)| *row)
    }
}

impl MitigationQueue for PriorityQueue {
    crate::snapshot_methods!(dyn MitigationQueue);

    fn observe_activation(&mut self, row: RowIndex, activation_count: u32) {
        let entry = self.counts.entry(row).or_insert(0);
        *entry = (*entry).max(activation_count);
    }

    fn pop_for_mitigation(&mut self) -> Option<RowIndex> {
        let row = self.max_entry()?;
        self.counts.remove(&row);
        Some(row)
    }

    fn peek(&self) -> Option<RowIndex> {
        self.max_entry()
    }

    fn on_row_mitigated(&mut self, row: RowIndex) {
        self.counts.remove(&row);
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn len(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_entry_tracks_the_maximum() {
        let mut q = SingleEntryQueue::new();
        q.observe_activation(10, 5);
        q.observe_activation(20, 3);
        assert_eq!(q.peek(), Some(10));
        q.observe_activation(20, 6);
        assert_eq!(q.peek(), Some(20));
        assert_eq!(q.tracked_count(), Some(6));
    }

    #[test]
    fn single_entry_same_row_updates_count() {
        let mut q = SingleEntryQueue::new();
        q.observe_activation(7, 1);
        q.observe_activation(7, 2);
        assert_eq!(q.tracked_count(), Some(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn single_entry_pop_empties_queue() {
        let mut q = SingleEntryQueue::new();
        q.observe_activation(3, 9);
        assert_eq!(q.pop_for_mitigation(), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.pop_for_mitigation(), None);
    }

    #[test]
    fn single_entry_ties_keep_existing_entry() {
        // When the new row only equals (does not exceed) the tracked count,
        // the existing entry is retained — matching Figure 8(c) where only
        // one of the two equally-activated rows is tracked.
        let mut q = SingleEntryQueue::new();
        q.observe_activation(1, 43);
        q.observe_activation(2, 43);
        assert_eq!(q.peek(), Some(1));
    }

    #[test]
    fn single_entry_mitigated_notification_clears_only_tracked_row() {
        let mut q = SingleEntryQueue::new();
        q.observe_activation(5, 10);
        q.on_row_mitigated(6);
        assert_eq!(q.peek(), Some(5));
        q.on_row_mitigated(5);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_preserves_arrival_order_and_capacity() {
        let mut q = FifoQueue::new(2);
        q.observe_activation(1, 1);
        q.observe_activation(2, 1);
        q.observe_activation(3, 1); // dropped: queue full
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_for_mitigation(), Some(1));
        assert_eq!(q.pop_for_mitigation(), Some(2));
        assert_eq!(q.pop_for_mitigation(), None);
    }

    #[test]
    fn fifo_does_not_duplicate_rows() {
        let mut q = FifoQueue::new(4);
        q.observe_activation(9, 1);
        q.observe_activation(9, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fifo_admission_threshold_filters_cold_rows() {
        let mut q = FifoQueue::new(4).with_admission_threshold(10);
        q.observe_activation(1, 5);
        assert!(q.is_empty());
        q.observe_activation(1, 10);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn fifo_zero_capacity_panics() {
        let _ = FifoQueue::new(0);
    }

    #[test]
    fn priority_queue_always_returns_global_max() {
        let mut q = PriorityQueue::new();
        q.observe_activation(1, 10);
        q.observe_activation(2, 30);
        q.observe_activation(3, 20);
        assert_eq!(q.pop_for_mitigation(), Some(2));
        assert_eq!(q.pop_for_mitigation(), Some(3));
        assert_eq!(q.pop_for_mitigation(), Some(1));
        assert_eq!(q.pop_for_mitigation(), None);
    }

    #[test]
    fn priority_queue_counts_are_monotone() {
        let mut q = PriorityQueue::new();
        q.observe_activation(1, 5);
        q.observe_activation(1, 3); // stale smaller count must not regress
        assert_eq!(q.count_of(1), 5);
    }

    #[test]
    fn reset_clears_all_designs() {
        for kind in [
            QueueKind::SingleEntryFrequency,
            QueueKind::Fifo { capacity: 8 },
            QueueKind::Priority,
        ] {
            let mut q = kind.instantiate();
            q.observe_activation(1, 1);
            q.observe_activation(2, 2);
            q.reset();
            assert!(q.is_empty(), "{kind:?} should be empty after reset");
        }
    }

    #[test]
    fn queue_kind_default_is_single_entry() {
        assert_eq!(QueueKind::default(), QueueKind::SingleEntryFrequency);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The single-entry queue always tracks a row whose observed count is
        /// the maximum over all observations since the last drain.
        #[test]
        fn single_entry_tracks_a_maximal_row(observations in proptest::collection::vec((0u32..64, 1u32..1000), 1..200)) {
            let mut q = SingleEntryQueue::new();
            let mut best: u32 = 0;
            for (row, count) in &observations {
                q.observe_activation(*row, *count);
                best = best.max(*count);
            }
            prop_assert_eq!(q.tracked_count().unwrap(), best);
        }

        /// The priority queue pops rows in non-increasing order of their
        /// maximum observed count.
        #[test]
        fn priority_pops_in_non_increasing_order(observations in proptest::collection::vec((0u32..32, 1u32..1000), 1..200)) {
            let mut q = PriorityQueue::new();
            let mut max_per_row = std::collections::HashMap::new();
            for (row, count) in &observations {
                q.observe_activation(*row, *count);
                let e = max_per_row.entry(*row).or_insert(0u32);
                *e = (*e).max(*count);
            }
            let mut last = u32::MAX;
            while let Some(row) = q.pop_for_mitigation() {
                let count = max_per_row.remove(&row).expect("popped row was observed");
                prop_assert!(count <= last);
                last = count;
            }
            prop_assert!(max_per_row.is_empty());
        }

        /// A FIFO queue never exceeds its capacity and never duplicates rows.
        #[test]
        fn fifo_respects_capacity(cap in 1usize..16, observations in proptest::collection::vec((0u32..64, 1u32..10), 1..200)) {
            let mut q = FifoQueue::new(cap);
            for (row, count) in observations {
                q.observe_activation(row, count);
                prop_assert!(q.len() <= cap);
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(row) = q.pop_for_mitigation() {
                prop_assert!(seen.insert(row), "row {row} popped twice");
            }
        }
    }
}
