//! The cross-crate state-capture contract behind checkpoint/fork execution.
//!
//! Campaign cells that share a workload prefix can simulate that prefix once,
//! capture the complete system state at the divergence point, and fork one
//! copy per cell.  Forking only works if *every* stateful component — core
//! pipelines, caches, controller queues, PRAC counters, mitigation engines,
//! attack patterns — can produce a faithful deep copy of itself.  This module
//! is the contract those components implement:
//!
//! * [`StateSnapshot`] — an opaque, owned capture of one component's state.
//!   Internally it is a type-erased deep copy; the component that produced it
//!   is the only one that can restore from it.
//! * [`Restorable`] — the capture/restore pair itself.
//!
//! Trait-object components (the [`crate::mitigation::MitigationEngine`]
//! engines, the mitigation queues, the attack patterns) expose
//! `snapshot()` / `restore()` directly on their traits using the
//! [`snapshot_methods!`](crate::snapshot_methods) helper, so a
//! `Box<dyn MitigationEngine>` is forkable without knowing the concrete
//! engine behind it.
//!
//! The correctness bar is *bit-identity*: resuming from a snapshot must
//! produce exactly the run the uninterrupted simulation would have produced
//! (enforced end to end by `tests/fork_equivalence.rs` in the umbrella
//! crate).

use std::any::Any;
use std::fmt;

/// Object-safe inner cell of a [`StateSnapshot`]: deep-clonable and
/// downcastable.  Blanket-implemented for every `Clone` state type.
trait SnapshotCell: fmt::Debug + Send {
    /// Deep-copies the cell.
    fn clone_cell(&self) -> Box<dyn SnapshotCell>;
    /// Downcast access for [`StateSnapshot::restore_as`].
    fn as_any(&self) -> &dyn Any;
}

impl<T: Clone + fmt::Debug + Send + 'static> SnapshotCell for T {
    fn clone_cell(&self) -> Box<dyn SnapshotCell> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An opaque, owned capture of one component's complete internal state.
///
/// A snapshot is a deep copy: it shares no mutable state with the component
/// it was captured from, so the original can keep running (and diverge)
/// without invalidating the capture.  Snapshots are themselves clonable, so
/// one captured prefix state can seed many forks.
#[derive(Debug)]
pub struct StateSnapshot(Box<dyn SnapshotCell>);

impl Clone for StateSnapshot {
    fn clone(&self) -> Self {
        Self(self.0.clone_cell())
    }
}

impl StateSnapshot {
    /// Captures `state` (by value) as an opaque snapshot.
    #[must_use]
    pub fn capture<T: Clone + fmt::Debug + Send + 'static>(state: T) -> Self {
        Self(Box::new(state))
    }

    /// Recovers the captured state if the snapshot holds a `T`.
    #[must_use]
    pub fn restore_as<T: Clone + 'static>(&self) -> Option<T> {
        self.0.as_any().downcast_ref::<T>().cloned()
    }

    /// Recovers the captured state, panicking when the snapshot was taken
    /// from a different component type.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot does not hold a `T` — restoring a component
    /// from some *other* component's snapshot is a programming error, not a
    /// recoverable condition.
    #[must_use]
    pub fn restore_expecting<T: Clone + 'static>(&self, what: &str) -> T {
        self.restore_as()
            .unwrap_or_else(|| panic!("snapshot does not hold a {what}; captured {:?}", self.0))
    }
}

/// A component whose complete internal state can be captured and restored.
///
/// The contract is bit-identity: after `restore`, the component must behave
/// exactly as it did at the moment `snapshot` was taken — same future
/// decisions, same seeded random draws, same statistics.
pub trait Restorable {
    /// Captures the component's complete internal state.
    fn snapshot(&self) -> StateSnapshot;

    /// Restores state previously captured from a component of the same type.
    fn restore(&mut self, snapshot: &StateSnapshot);
}

impl<T: Clone + fmt::Debug + Send + 'static> Restorable for T {
    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::capture(self.clone())
    }

    fn restore(&mut self, snapshot: &StateSnapshot) {
        *self = snapshot.restore_expecting::<T>(std::any::type_name::<T>());
    }
}

/// Implements the forkability methods (`clone_box`, `snapshot`, `restore`)
/// of a snapshot-aware trait for a `Clone` concrete type.
///
/// Use inside an `impl TheTrait for ConcreteType` block, passing the trait
/// object type `clone_box` must return:
///
/// ```ignore
/// impl MitigationEngine for MyEngine {
///     prac_core::snapshot_methods!(dyn MitigationEngine);
///     // ... the trait's behavioural methods ...
/// }
/// ```
#[macro_export]
macro_rules! snapshot_methods {
    ($trait_object:ty) => {
        fn clone_box(&self) -> ::std::boxed::Box<$trait_object> {
            ::std::boxed::Box::new(::std::clone::Clone::clone(self))
        }

        fn snapshot(&self) -> $crate::snapshot::StateSnapshot {
            $crate::snapshot::StateSnapshot::capture(::std::clone::Clone::clone(self))
        }

        fn restore(&mut self, snapshot: &$crate::snapshot::StateSnapshot) {
            *self = snapshot.restore_expecting::<Self>(::std::any::type_name::<Self>());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_and_deep_copies() {
        let mut counters = vec![1u32, 2, 3];
        let snap = Restorable::snapshot(&counters);
        counters.push(4);
        assert_eq!(counters.len(), 4);
        counters.restore(&snap);
        assert_eq!(counters, vec![1, 2, 3]);
    }

    #[test]
    fn snapshots_are_clonable_and_reusable() {
        let snap = StateSnapshot::capture(41u64);
        let copy = snap.clone();
        assert_eq!(snap.restore_as::<u64>(), Some(41));
        assert_eq!(copy.restore_as::<u64>(), Some(41));
        // Restoring twice from the same snapshot works (it is not consumed).
        assert_eq!(snap.restore_as::<u64>(), Some(41));
    }

    #[test]
    fn mismatched_types_do_not_downcast() {
        let snap = StateSnapshot::capture(7u32);
        assert_eq!(snap.restore_as::<u64>(), None);
    }

    #[test]
    #[should_panic(expected = "snapshot does not hold a")]
    fn restore_expecting_panics_on_type_mismatch() {
        let snap = StateSnapshot::capture(7u32);
        let _: String = snap.restore_expecting("String");
    }
}
