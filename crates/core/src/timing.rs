//! Summary of DRAM timing parameters needed by the analytical models.
//!
//! The full cycle-accurate timing state machine lives in the `dram-sim` crate;
//! the analytical security and energy models here only need a handful of
//! device-level constants (row-cycle time, refresh interval and window, RFM
//! blocking time, rows per bank). [`DramTimingSummary`] captures exactly that
//! subset so that `prac-core` stays substrate-independent.

use serde::{Deserialize, Serialize};

/// Number of picoseconds per simulator tick used across the workspace.
///
/// The whole workspace operates on a single clock domain of 4 GHz
/// (0.25 ns per tick), which evenly divides every DDR5 timing parameter used
/// by the paper.
pub const PICOS_PER_TICK: u64 = 250;

/// Converts a duration in nanoseconds into simulator ticks (0.25 ns each).
#[must_use]
pub fn ns_to_ticks(ns: f64) -> u64 {
    ((ns * 1000.0) / PICOS_PER_TICK as f64).round() as u64
}

/// Converts simulator ticks back into nanoseconds.
#[must_use]
pub fn ticks_to_ns(ticks: u64) -> f64 {
    (ticks as f64 * PICOS_PER_TICK as f64) / 1000.0
}

/// Device-level timing constants consumed by the analytical models.
///
/// Field values default to the 32 Gb DDR5-8000B configuration of Table 3 in
/// the paper (with the PRAC-adjusted tRP/tWR already folded into `t_rc_ns`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramTimingSummary {
    /// Row-cycle time (ACT-to-ACT on the same bank), nanoseconds.
    pub t_rc_ns: f64,
    /// Average refresh command interval (tREFI), nanoseconds.
    pub t_refi_ns: f64,
    /// Refresh window (tREFW) over which all rows are refreshed once,
    /// nanoseconds. 32 ms for DDR5.
    pub t_refw_ns: f64,
    /// Refresh command blocking time (tRFC), nanoseconds.
    pub t_rfc_ns: f64,
    /// RFM All-Bank blocking time (tRFMab), nanoseconds.
    pub t_rfmab_ns: f64,
    /// Maximum additional activations allowed between an Alert assertion and
    /// the first RFM, expressed as a time bound (tABOACT), nanoseconds.
    pub t_abo_act_ns: f64,
    /// Number of DRAM rows per bank (128 K for the 32 Gb DDR5 chip).
    pub rows_per_bank: u32,
}

impl DramTimingSummary {
    /// Timing summary for the 32 Gb DDR5-8000B chip evaluated in the paper.
    #[must_use]
    pub fn ddr5_8000b() -> Self {
        Self {
            t_rc_ns: 52.0,
            t_refi_ns: 3900.0,
            t_refw_ns: 32.0 * 1_000_000.0,
            t_rfc_ns: 410.0,
            t_rfmab_ns: 350.0,
            t_abo_act_ns: 180.0,
            rows_per_bank: 128 * 1024,
        }
    }

    /// Maximum number of row activations that fit in one tREFI,
    /// accounting only for the row-cycle time.
    #[must_use]
    pub fn activations_per_trefi(&self) -> u32 {
        (self.t_refi_ns / self.t_rc_ns).floor() as u32
    }

    /// Maximum number of row activations that fit in one refresh window
    /// (tREFW) after subtracting the time consumed by the periodic refresh
    /// commands themselves.  This is the `MAXACT_tREFW` term of Equation (5)
    /// (~550 K for the evaluated device).
    #[must_use]
    pub fn max_activations_per_trefw(&self) -> u64 {
        let refreshes = (self.t_refw_ns / self.t_refi_ns).floor();
        let usable_ns = self.t_refw_ns - refreshes * self.t_rfc_ns;
        (usable_ns / self.t_rc_ns).floor() as u64
    }

    /// Number of tREFI intervals in one refresh window (8192 for DDR5).
    #[must_use]
    pub fn trefi_per_trefw(&self) -> u64 {
        (self.t_refw_ns / self.t_refi_ns).floor() as u64
    }

    /// tREFI expressed in simulator ticks.
    #[must_use]
    pub fn t_refi_ticks(&self) -> u64 {
        ns_to_ticks(self.t_refi_ns)
    }

    /// tRFMab expressed in simulator ticks.
    #[must_use]
    pub fn t_rfmab_ticks(&self) -> u64 {
        ns_to_ticks(self.t_rfmab_ns)
    }

    /// tRC expressed in simulator ticks.
    #[must_use]
    pub fn t_rc_ticks(&self) -> u64 {
        ns_to_ticks(self.t_rc_ns)
    }
}

impl Default for DramTimingSummary {
    fn default() -> Self {
        Self::ddr5_8000b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_constants_match_table3() {
        let t = DramTimingSummary::ddr5_8000b();
        assert_eq!(t.t_rc_ns, 52.0);
        assert_eq!(t.t_refi_ns, 3900.0);
        assert_eq!(t.t_rfmab_ns, 350.0);
        assert_eq!(t.rows_per_bank, 128 * 1024);
    }

    #[test]
    fn activations_per_trefi_is_75() {
        // 3900 / 52 = 75 exactly.
        assert_eq!(DramTimingSummary::ddr5_8000b().activations_per_trefi(), 75);
    }

    #[test]
    fn max_activations_per_trefw_is_roughly_550k() {
        let max = DramTimingSummary::ddr5_8000b().max_activations_per_trefw();
        assert!(
            (540_000..=620_000).contains(&max),
            "expected ~550K activations per tREFW, got {max}"
        );
    }

    #[test]
    fn trefi_per_trefw_is_8205() {
        // 32 ms / 3.9 us = 8205 intervals.
        assert_eq!(DramTimingSummary::ddr5_8000b().trefi_per_trefw(), 8205);
    }

    #[test]
    fn tick_conversion_round_trips_for_exact_multiples() {
        for ns in [52.0, 350.0, 3900.0, 410.0, 180.0] {
            let ticks = ns_to_ticks(ns);
            assert!((ticks_to_ns(ticks) - ns).abs() < 1e-9);
        }
    }

    #[test]
    fn one_tick_is_quarter_ns() {
        assert_eq!(ns_to_ticks(1.0), 4);
        assert_eq!(ns_to_ticks(0.25), 1);
    }
}
