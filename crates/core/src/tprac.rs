//! The TPRAC (Timing-Safe PRAC) defense policy.
//!
//! TPRAC replaces activity-dependent RFMs with **Timing-Based RFMs
//! (TB-RFMs)** issued by the memory controller at a fixed interval
//! (`TB-Window`), entirely independent of memory activity.  The controller
//! needs only a single 24-bit register holding the interval; at each window
//! boundary it issues an RFM All-Bank command and the in-DRAM single-entry
//! mitigation queue mitigates the most activated row in every bank.
//!
//! Two refinements from the paper are modelled:
//!
//! * **Targeted-Refresh co-design** (Section 4.3): when the DRAM performs a
//!   Targeted Refresh (TREF) during a window, the pending TB-RFM for that
//!   window can be skipped because the TREF already mitigated the queue head.
//! * **Counter reset** (Section 6.6): per-row activation counters may be reset
//!   at every tREFW, which shrinks the attacker's feasible pool and allows a
//!   longer (cheaper) TB-Window.
//!
//! [`TpracScheduler`] is a small, deterministic state machine the memory
//! controller ticks every cycle; it is deliberately free of any DRAM state so
//! it can be unit-tested exhaustively and reused by the cycle-accurate model.

use serde::{Deserialize, Serialize};

use crate::error::{ConfigError, Result};
use crate::queue::QueueKind;
use crate::security::{CounterResetPolicy, SecurityAnalysis};
use crate::timing::DramTimingSummary;

/// Rate at which the DRAM performs Targeted Refreshes (TREFs), expressed as
/// one TREF every `n` tREFI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TrefRate {
    /// The DRAM performs no Targeted Refreshes.
    #[default]
    None,
    /// One TREF every `n` tREFI intervals (`n >= 1`).
    EveryTrefi(u32),
}

impl TrefRate {
    /// TREFs performed per tREFI (0.0 when disabled).
    #[must_use]
    pub fn trefs_per_trefi(self) -> f64 {
        match self {
            TrefRate::None => 0.0,
            TrefRate::EveryTrefi(n) => 1.0 / f64::from(n.max(1)),
        }
    }

    /// The sweep evaluated by Figure 12: none, 1/4, 1/3, 1/2 and 1/1 tREFI.
    #[must_use]
    pub fn figure12_sweep() -> Vec<TrefRate> {
        vec![
            TrefRate::None,
            TrefRate::EveryTrefi(4),
            TrefRate::EveryTrefi(3),
            TrefRate::EveryTrefi(2),
            TrefRate::EveryTrefi(1),
        ]
    }
}

impl std::fmt::Display for TrefRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrefRate::None => write!(f, "no TREF"),
            TrefRate::EveryTrefi(n) => write!(f, "1 TREF per {n} tREFI"),
        }
    }
}

/// Static configuration of the TPRAC defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpracConfig {
    /// TB-Window: interval between Timing-Based RFMs, in simulator ticks.
    pub tb_window_ticks: u64,
    /// The same interval expressed in tREFI units (kept for reporting).
    pub tb_window_trefi: f64,
    /// Rate of Targeted Refreshes available to skip TB-RFMs.
    pub tref_rate: TrefRate,
    /// In-DRAM mitigation queue design backing each bank.
    pub queue_kind: QueueKind,
    /// Whether RFM postponing is disabled (always true for TPRAC; kept as a
    /// field so the insecure "postponing allowed" variant can be modelled in
    /// ablations).
    pub disable_rfm_postponing: bool,
}

impl TpracConfig {
    /// Builds a TPRAC configuration from an explicit TB-Window in tREFI.
    #[must_use]
    pub fn with_window_trefi(tb_window_trefi: f64, timing: &DramTimingSummary) -> Self {
        let tb_window_ticks = ((tb_window_trefi * timing.t_refi_ns) * 4.0)
            .round()
            .max(1.0) as u64;
        Self {
            tb_window_ticks,
            tb_window_trefi,
            tref_rate: TrefRate::None,
            queue_kind: QueueKind::SingleEntryFrequency,
            disable_rfm_postponing: true,
        }
    }

    /// Solves the security analysis for the given Back-Off threshold and
    /// builds the corresponding configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError::NoSafeWindow`] when no TB-Window can protect
    /// the requested threshold.
    pub fn solve_for_threshold(
        nbo: u32,
        timing: &DramTimingSummary,
        reset: CounterResetPolicy,
    ) -> Result<Self> {
        let analysis = SecurityAnalysis::with_back_off_threshold(nbo, timing, reset);
        let solution = analysis.solve_tb_window()?;
        Ok(Self::with_window_trefi(solution.tb_window_trefi, timing))
    }

    /// Sets the Targeted-Refresh rate used to skip TB-RFMs.
    #[must_use]
    pub fn with_tref_rate(mut self, rate: TrefRate) -> Self {
        self.tref_rate = rate;
        self
    }

    /// Sets the mitigation-queue design.
    #[must_use]
    pub fn with_queue_kind(mut self, kind: QueueKind) -> Self {
        self.queue_kind = kind;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] for a zero-length window.
    pub fn validate(&self) -> Result<()> {
        if self.tb_window_ticks == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "tb_window_ticks",
                reason: "TB-Window must be non-zero".to_string(),
            });
        }
        Ok(())
    }

    /// Upper bound on the DRAM bandwidth consumed by TB-RFMs
    /// (`tRFMab / TB-Window`), before accounting for skipped windows.
    #[must_use]
    pub fn bandwidth_loss_bound(&self, timing: &DramTimingSummary) -> f64 {
        timing.t_rfmab_ns / (self.tb_window_ticks as f64 * 0.25)
    }

    /// Fraction of TB-RFMs that can be skipped thanks to Targeted Refreshes
    /// (Section 4.3): one TB-RFM is skipped for every TREF that falls in a
    /// window, capped at 100 %.
    #[must_use]
    pub fn tb_rfm_skip_fraction(&self) -> f64 {
        let trefs_per_window = self.tref_rate.trefs_per_trefi() * self.tb_window_trefi;
        trefs_per_window.min(1.0)
    }
}

impl Default for TpracConfig {
    fn default() -> Self {
        // The paper's headline operating point: NRH = 1024 needs one TB-RFM
        // every ~1.6 tREFI. Use the analytically-solved value when possible,
        // falling back to 1.6 tREFI if the solver configuration changes.
        let timing = DramTimingSummary::ddr5_8000b();
        TpracConfig::solve_for_threshold(1024, &timing, CounterResetPolicy::ResetEveryTrefw)
            .unwrap_or_else(|_| TpracConfig::with_window_trefi(1.6, &timing))
    }
}

/// Events produced by the [`TpracScheduler`] each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpracEvent {
    /// Nothing to do this tick.
    Idle,
    /// Issue a Timing-Based RFM (RFMab) now.
    IssueTbRfm,
    /// A pending TB-RFM was skipped because a Targeted Refresh already
    /// mitigated the queue head during this window.
    SkippedByTref,
}

/// Deterministic controller-side scheduler for Timing-Based RFMs.
///
/// The scheduler owns a single deadline (`next_deadline`) representing the
/// RFM-interval register of Section 6.8.  Calling [`TpracScheduler::tick`]
/// with the current time returns the action the controller must take.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpracScheduler {
    config: TpracConfig,
    next_deadline: u64,
    tref_seen_this_window: bool,
    issued_tb_rfms: u64,
    skipped_tb_rfms: u64,
}

impl TpracScheduler {
    /// Creates a scheduler whose first TB-RFM is due one window from `now`.
    #[must_use]
    pub fn new(config: TpracConfig, now: u64) -> Self {
        let next_deadline = now + config.tb_window_ticks;
        Self {
            config,
            next_deadline,
            tref_seen_this_window: false,
            issued_tb_rfms: 0,
            skipped_tb_rfms: 0,
        }
    }

    /// Records that the DRAM performed a Targeted Refresh, which mitigated the
    /// head of the mitigation queue and allows the current window's TB-RFM to
    /// be skipped.
    pub fn note_targeted_refresh(&mut self) {
        self.tref_seen_this_window = true;
    }

    /// Advances the scheduler to `now` and returns the action to take.
    ///
    /// The caller is expected to invoke this every controller cycle; if a
    /// whole window elapses between calls the scheduler still issues exactly
    /// one event per elapsed window (catch-up happens on subsequent calls).
    pub fn tick(&mut self, now: u64) -> TpracEvent {
        if now < self.next_deadline {
            return TpracEvent::Idle;
        }
        self.next_deadline += self.config.tb_window_ticks;
        if self.tref_seen_this_window {
            self.tref_seen_this_window = false;
            self.skipped_tb_rfms += 1;
            TpracEvent::SkippedByTref
        } else {
            self.issued_tb_rfms += 1;
            TpracEvent::IssueTbRfm
        }
    }

    /// Number of TB-RFMs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued_tb_rfms
    }

    /// Number of TB-RFMs skipped thanks to Targeted Refreshes.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped_tb_rfms
    }

    /// The absolute tick at which the next TB-RFM is due.
    #[must_use]
    pub fn next_deadline(&self) -> u64 {
        self.next_deadline
    }

    /// The configuration driving this scheduler.
    #[must_use]
    pub fn config(&self) -> &TpracConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTimingSummary {
        DramTimingSummary::ddr5_8000b()
    }

    #[test]
    fn window_trefi_converts_to_ticks() {
        let cfg = TpracConfig::with_window_trefi(1.0, &timing());
        // 3900 ns at 4 ticks/ns.
        assert_eq!(cfg.tb_window_ticks, 15_600);
        assert!(cfg.disable_rfm_postponing);
    }

    #[test]
    fn default_config_matches_headline_operating_point() {
        let cfg = TpracConfig::default();
        assert!(
            (1.0..2.5).contains(&cfg.tb_window_trefi),
            "default TB-Window should be ~1.6 tREFI, got {}",
            cfg.tb_window_trefi
        );
        // Bandwidth loss bound ≈ 350 ns / 6.2 µs ≈ 5.6 %.
        let loss = cfg.bandwidth_loss_bound(&timing());
        assert!((0.03..0.09).contains(&loss), "bandwidth loss bound {loss}");
    }

    #[test]
    fn solve_for_threshold_scales_window_with_nbo() {
        let t = timing();
        let w512 = TpracConfig::solve_for_threshold(512, &t, CounterResetPolicy::ResetEveryTrefw)
            .unwrap()
            .tb_window_trefi;
        let w2048 = TpracConfig::solve_for_threshold(2048, &t, CounterResetPolicy::ResetEveryTrefw)
            .unwrap()
            .tb_window_trefi;
        assert!(w512 < w2048);
    }

    #[test]
    fn zero_window_rejected() {
        let mut cfg = TpracConfig::with_window_trefi(1.0, &timing());
        cfg.tb_window_ticks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scheduler_issues_one_rfm_per_window() {
        let cfg = TpracConfig::with_window_trefi(1.0, &timing());
        let window = cfg.tb_window_ticks;
        let mut sched = TpracScheduler::new(cfg, 0);
        let mut issued = 0;
        for now in 0..window * 5 + 1 {
            if sched.tick(now) == TpracEvent::IssueTbRfm {
                issued += 1;
            }
        }
        assert_eq!(issued, 5);
        assert_eq!(sched.issued(), 5);
        assert_eq!(sched.skipped(), 0);
    }

    #[test]
    fn scheduler_is_independent_of_activity() {
        // Ticking with or without interleaved "activity" produces identical
        // TB-RFM times — the core property that closes the timing channel.
        let cfg = TpracConfig::with_window_trefi(0.5, &timing());
        let window = cfg.tb_window_ticks;
        let mut a = TpracScheduler::new(cfg.clone(), 0);
        let mut b = TpracScheduler::new(cfg, 0);
        let mut times_a = Vec::new();
        let mut times_b = Vec::new();
        for now in 0..window * 4 + 1 {
            if a.tick(now) == TpracEvent::IssueTbRfm {
                times_a.push(now);
            }
        }
        for now in 0..window * 4 + 1 {
            // "b" sees bursts of hypothetical activity (no scheduler input
            // exists for it, by construction), so the sequences must match.
            if b.tick(now) == TpracEvent::IssueTbRfm {
                times_b.push(now);
            }
        }
        assert_eq!(times_a, times_b);
    }

    #[test]
    fn tref_skips_exactly_one_window() {
        let cfg = TpracConfig::with_window_trefi(1.0, &timing());
        let window = cfg.tb_window_ticks;
        let mut sched = TpracScheduler::new(cfg, 0);
        sched.note_targeted_refresh();
        // First window boundary: skipped.
        assert_eq!(sched.tick(window), TpracEvent::SkippedByTref);
        // Second window boundary: issued again.
        assert_eq!(sched.tick(window * 2), TpracEvent::IssueTbRfm);
        assert_eq!(sched.skipped(), 1);
        assert_eq!(sched.issued(), 1);
    }

    #[test]
    fn tref_rate_sweep_matches_figure12() {
        let sweep = TrefRate::figure12_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0], TrefRate::None);
        assert_eq!(sweep[4], TrefRate::EveryTrefi(1));
        assert!((TrefRate::EveryTrefi(2).trefs_per_trefi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skip_fraction_saturates_at_one() {
        let t = timing();
        let cfg = TpracConfig::with_window_trefi(1.6, &t).with_tref_rate(TrefRate::EveryTrefi(1));
        assert!((cfg.tb_rfm_skip_fraction() - 1.0).abs() < 1e-12);
        let cfg = TpracConfig::with_window_trefi(1.6, &t).with_tref_rate(TrefRate::EveryTrefi(4));
        assert!((cfg.tb_rfm_skip_fraction() - 0.4).abs() < 1e-12);
        let cfg = TpracConfig::with_window_trefi(1.6, &t);
        assert_eq!(cfg.tb_rfm_skip_fraction(), 0.0);
    }

    #[test]
    fn display_of_tref_rate_is_readable() {
        assert_eq!(TrefRate::EveryTrefi(2).to_string(), "1 TREF per 2 tREFI");
        assert_eq!(TrefRate::None.to_string(), "no TREF");
    }

    #[test]
    fn scheduler_catches_up_after_long_gap() {
        let cfg = TpracConfig::with_window_trefi(1.0, &timing());
        let window = cfg.tb_window_ticks;
        let mut sched = TpracScheduler::new(cfg, 0);
        // Jump three windows ahead in a single call: one event now, the
        // remaining ones on subsequent ticks.
        assert_eq!(sched.tick(window * 3), TpracEvent::IssueTbRfm);
        assert_eq!(sched.tick(window * 3), TpracEvent::IssueTbRfm);
        assert_eq!(sched.tick(window * 3), TpracEvent::IssueTbRfm);
        assert_eq!(sched.tick(window * 3), TpracEvent::Idle);
    }
}
