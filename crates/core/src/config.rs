//! PRAC protocol configuration.
//!
//! This module captures the knobs defined by the JEDEC DDR5 PRAC
//! specification (Table 1 of the paper) together with the system-level
//! choices that the paper evaluates: the RowHammer threshold, the
//! relationship between the Back-Off threshold `NBO` and the RowHammer
//! threshold `NRH`, the Bank-Activation threshold `BAT` used by proactive
//! Activation-Based RFMs, and which mitigation policy the memory controller
//! runs (ABO-Only, ABO+ACB-RFM, or TPRAC).

use serde::{Deserialize, Serialize};

use crate::error::{ConfigError, Result};
use crate::mitigation::{
    AboOnlyEngine, AcbEngine, DisabledEngine, MitigationEngine, ParaEngine, PrfmEngine, TpracEngine,
};
use crate::tprac::TpracConfig;

/// The PRAC level: number of RFM All-Bank commands the memory controller
/// issues per Alert Back-Off event (`Nmit` in the paper, Table 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum PracLevel {
    /// One RFM per Alert (PRAC-1).
    #[default]
    One,
    /// Two RFMs per Alert (PRAC-2).
    Two,
    /// Four RFMs per Alert (PRAC-4).
    Four,
}

impl PracLevel {
    /// Number of RFMab commands issued per Alert.
    #[must_use]
    pub fn rfms_per_alert(self) -> u32 {
        match self {
            PracLevel::One => 1,
            PracLevel::Two => 2,
            PracLevel::Four => 4,
        }
    }

    /// All PRAC levels defined by the specification, in ascending order.
    #[must_use]
    pub fn all() -> [PracLevel; 3] {
        [PracLevel::One, PracLevel::Two, PracLevel::Four]
    }
}

impl std::fmt::Display for PracLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PRAC-{}", self.rfms_per_alert())
    }
}

/// Which RFM-issuing policy the memory controller runs.
///
/// This enum is the *serialisable description* of a policy; its behaviour
/// lives in the [`crate::mitigation::MitigationEngine`] built by
/// [`MitigationPolicy::build_engine`].  The first two variants are the
/// insecure baselines evaluated in the paper (Section 5, "Evaluated
/// Design"); [`MitigationPolicy::Tprac`] is the proposed defense; the
/// remaining variants are beyond-paper comparison points.  Downstream code
/// with a policy that fits none of these can bypass the enum entirely and
/// inject a custom engine into the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum MitigationPolicy {
    /// Rely solely on the Alert Back-Off protocol: RFMs are only issued when
    /// the DRAM asserts Alert (a row reached `NBO`).  Vulnerable to
    /// PRACLeak timing channels.
    #[default]
    AboOnly,
    /// ABO plus proactive Activation-Based RFMs: an RFM is issued whenever a
    /// bank accumulates `BAT` activations, which (when `BAT` is configured
    /// correctly) eliminates ABO-RFMs but remains activity-dependent and
    /// therefore still leaks.
    AboPlusAcbRfm,
    /// The TPRAC defense: activity-independent Timing-Based RFMs issued every
    /// `TB-Window`, optionally co-designed with Targeted Refreshes.
    Tprac(TpracConfig),
    /// No mitigation at all: the Alert signal is never asserted and no RFMs
    /// are issued.  The normalisation baseline of the performance figures.
    Disabled,
    /// PRFM: one RFM every `every_trefi` tREFI on a fixed, activity-
    /// independent cadence, with no per-row counters.
    PeriodicRfm {
        /// RFM period in tREFI intervals (>= 1).
        every_trefi: u32,
    },
    /// PARA-style probabilistic mitigation: each row activation triggers an
    /// RFM with probability `1 / one_in`, drawn from a stream seeded with
    /// `seed` (deterministic per scenario).
    Para {
        /// Inverse issue probability per activation (>= 1).
        one_in: u32,
        /// Seed of the decision stream.
        seed: u64,
    },
}

impl MitigationPolicy {
    /// Returns `true` when this policy issues RFMs only as a function of the
    /// observed activation activity (and is therefore exploitable as a
    /// timing channel).  [`MitigationPolicy::Disabled`] issues nothing, so
    /// nothing observable depends on activity.
    #[must_use]
    pub fn is_activity_dependent(&self) -> bool {
        match self {
            MitigationPolicy::AboOnly
            | MitigationPolicy::AboPlusAcbRfm
            | MitigationPolicy::Para { .. } => true,
            MitigationPolicy::Tprac(_)
            | MitigationPolicy::Disabled
            | MitigationPolicy::PeriodicRfm { .. } => false,
        }
    }

    /// Whether the Alert Back-Off protocol is in force: the DRAM asserts
    /// Alert at `NBO` and the controller answers with RFMs.  `false` only
    /// for [`MitigationPolicy::Disabled`].
    #[must_use]
    pub fn uses_abo(&self) -> bool {
        !matches!(self, MitigationPolicy::Disabled)
    }

    /// A short human-readable label used by the bench harness.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MitigationPolicy::AboOnly => "ABO-Only",
            MitigationPolicy::AboPlusAcbRfm => "ABO+ACB-RFM",
            MitigationPolicy::Tprac(_) => "TPRAC",
            MitigationPolicy::Disabled => "Disabled",
            MitigationPolicy::PeriodicRfm { .. } => "PRFM",
            MitigationPolicy::Para { .. } => "PARA",
        }
    }

    /// Validates the policy's own parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] for a zero PRFM period or a
    /// zero PARA inverse probability, and propagates
    /// [`TpracConfig::validate`] errors.
    pub fn validate(&self) -> Result<()> {
        match self {
            MitigationPolicy::Tprac(tprac) => tprac.validate(),
            MitigationPolicy::PeriodicRfm { every_trefi: 0 } => {
                Err(ConfigError::InvalidParameter {
                    name: "every_trefi",
                    reason: "the PRFM period must be at least one tREFI".to_string(),
                })
            }
            MitigationPolicy::Para { one_in: 0, .. } => Err(ConfigError::InvalidParameter {
                name: "one_in",
                reason: "the PARA inverse probability must be at least 1".to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Builds the cycle-exact engine implementing this policy.
    ///
    /// `prac` supplies the Bank-Activation threshold for
    /// [`MitigationPolicy::AboPlusAcbRfm`], and `t_refi_ticks` the refresh
    /// interval for [`MitigationPolicy::PeriodicRfm`].  Engines whose state
    /// is clocked start at tick 0, matching controller construction.
    #[must_use]
    pub fn build_engine(&self, prac: &PracConfig, t_refi_ticks: u64) -> Box<dyn MitigationEngine> {
        match self {
            MitigationPolicy::AboOnly => Box::new(AboOnlyEngine),
            MitigationPolicy::AboPlusAcbRfm => {
                Box::new(AcbEngine::new(prac.bank_activation_threshold))
            }
            MitigationPolicy::Tprac(tprac) => Box::new(TpracEngine::new(tprac.clone(), 0)),
            MitigationPolicy::Disabled => Box::new(DisabledEngine),
            MitigationPolicy::PeriodicRfm { every_trefi } => {
                Box::new(PrfmEngine::new(*every_trefi, t_refi_ticks, 0))
            }
            MitigationPolicy::Para { one_in, seed } => Box::new(ParaEngine::new(*one_in, *seed)),
        }
    }
}

/// Complete PRAC configuration used by both the cycle-accurate model and the
/// analytical security/energy models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PracConfig {
    /// RowHammer threshold `NRH`: minimum activations to a row that can induce
    /// bit flips in its neighbours.
    pub rowhammer_threshold: u32,
    /// Back-Off threshold `NBO`: per-row activation count at which the DRAM
    /// asserts the Alert signal.
    pub back_off_threshold: u32,
    /// PRAC level (`Nmit`): RFMs issued per Alert.
    pub prac_level: PracLevel,
    /// Maximum additional activations the controller may issue to the
    /// alerting bank between Alert assertion and the first RFM (`ABOACT`).
    pub abo_act: u32,
    /// Minimum activations after the RFM before a new Alert may be asserted
    /// (`ABODelay`); the specification sets this equal to `Nmit`.
    pub abo_delay: u32,
    /// Bank-Activation threshold `BAT` for proactive ACB-RFMs (Targeted RFM).
    /// Only consulted by [`MitigationPolicy::AboPlusAcbRfm`].
    pub bank_activation_threshold: u32,
    /// Number of victim rows refreshed by a single RFM mitigation (the blast
    /// radius covered per mitigation; 4 in the paper's energy model).
    pub victims_per_mitigation: u32,
    /// Whether per-row activation counters are reset at every refresh window
    /// (tREFW), as proposed by MOAT.  Affects the worst-case analysis and
    /// Figure 14.
    pub counter_reset_every_trefw: bool,
    /// The mitigation policy run by the memory controller.
    pub policy: MitigationPolicy,
}

impl PracConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> PracConfigBuilder {
        PracConfigBuilder::default()
    }

    /// The default configuration evaluated in the paper: `NRH = 1024`,
    /// `NBO = NRH`, PRAC-1, counter reset enabled, ABO-Only policy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::builder().build()
    }

    /// Validates internal consistency.  Returns an error naming the first
    /// violated constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] when a threshold is zero or
    /// the Back-Off threshold exceeds the RowHammer threshold in a way that
    /// would leave the device unprotected, and [`ConfigError::Inconsistent`]
    /// when `ABODelay` disagrees with the PRAC level.
    pub fn validate(&self) -> Result<()> {
        if self.rowhammer_threshold == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "rowhammer_threshold",
                reason: "must be non-zero".to_string(),
            });
        }
        if self.back_off_threshold == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "back_off_threshold",
                reason: "must be non-zero".to_string(),
            });
        }
        if self.back_off_threshold > self.rowhammer_threshold {
            return Err(ConfigError::InvalidParameter {
                name: "back_off_threshold",
                reason: format!(
                    "NBO ({}) must not exceed NRH ({}); otherwise rows can be hammered past \
                     the RowHammer threshold before any mitigation triggers",
                    self.back_off_threshold, self.rowhammer_threshold
                ),
            });
        }
        if self.bank_activation_threshold == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "bank_activation_threshold",
                reason: "must be non-zero".to_string(),
            });
        }
        if self.victims_per_mitigation == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "victims_per_mitigation",
                reason: "must be non-zero".to_string(),
            });
        }
        if self.abo_delay != self.prac_level.rfms_per_alert() {
            return Err(ConfigError::Inconsistent {
                reason: format!(
                    "the JEDEC specification sets ABODelay equal to the PRAC level; \
                     got ABODelay = {} with {}",
                    self.abo_delay, self.prac_level
                ),
            });
        }
        self.policy.validate()
    }

    /// Number of RFMab commands issued for a single Alert.
    #[must_use]
    pub fn rfms_per_alert(&self) -> u32 {
        self.prac_level.rfms_per_alert()
    }
}

impl Default for PracConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`PracConfig`] following the paper's defaults.
///
/// The default operating point is the one used throughout Section 6:
/// `NRH = 1024`, `NBO = NRH`, PRAC-1 (one RFM per Alert), `ABOACT = 3`,
/// `BAT = 75` (the spec's "typically below NBO" example), four victim
/// refreshes per mitigation, and per-row counter reset every tREFW.
#[derive(Debug, Clone)]
pub struct PracConfigBuilder {
    rowhammer_threshold: u32,
    back_off_threshold: Option<u32>,
    prac_level: PracLevel,
    abo_act: u32,
    bank_activation_threshold: Option<u32>,
    victims_per_mitigation: u32,
    counter_reset_every_trefw: bool,
    policy: MitigationPolicy,
}

impl Default for PracConfigBuilder {
    fn default() -> Self {
        Self {
            rowhammer_threshold: 1024,
            back_off_threshold: None,
            prac_level: PracLevel::One,
            abo_act: 3,
            bank_activation_threshold: None,
            victims_per_mitigation: 4,
            counter_reset_every_trefw: true,
            policy: MitigationPolicy::AboOnly,
        }
    }
}

impl PracConfigBuilder {
    /// Sets the RowHammer threshold `NRH`.
    #[must_use]
    pub fn rowhammer_threshold(mut self, nrh: u32) -> Self {
        self.rowhammer_threshold = nrh;
        self
    }

    /// Overrides the Back-Off threshold `NBO`.  Defaults to `NRH`.
    #[must_use]
    pub fn back_off_threshold(mut self, nbo: u32) -> Self {
        self.back_off_threshold = Some(nbo);
        self
    }

    /// Sets the PRAC level (RFMs per Alert).
    #[must_use]
    pub fn prac_level(mut self, level: PracLevel) -> Self {
        self.prac_level = level;
        self
    }

    /// Sets `ABOACT`, the maximum activations allowed between Alert and RFM.
    #[must_use]
    pub fn abo_act(mut self, abo_act: u32) -> Self {
        self.abo_act = abo_act;
        self
    }

    /// Overrides the Bank-Activation threshold `BAT` for ACB-RFMs.
    /// Defaults to 75 activations as in the specification example.
    #[must_use]
    pub fn bank_activation_threshold(mut self, bat: u32) -> Self {
        self.bank_activation_threshold = Some(bat);
        self
    }

    /// Sets the number of victim rows refreshed per mitigation.
    #[must_use]
    pub fn victims_per_mitigation(mut self, victims: u32) -> Self {
        self.victims_per_mitigation = victims;
        self
    }

    /// Enables or disables per-row counter reset at every tREFW.
    #[must_use]
    pub fn counter_reset_every_trefw(mut self, reset: bool) -> Self {
        self.counter_reset_every_trefw = reset;
        self
    }

    /// Selects the mitigation policy run by the memory controller.
    #[must_use]
    pub fn policy(mut self, policy: MitigationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the configuration, panicking if it is internally inconsistent.
    ///
    /// # Panics
    ///
    /// Panics when the resulting configuration fails [`PracConfig::validate`];
    /// use [`PracConfigBuilder::try_build`] to handle the error instead.
    #[must_use]
    pub fn build(self) -> PracConfig {
        self.try_build().expect("invalid PRAC configuration")
    }

    /// Builds the configuration, validating it.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors documented on [`PracConfig::validate`].
    pub fn try_build(self) -> Result<PracConfig> {
        let back_off_threshold = self.back_off_threshold.unwrap_or(self.rowhammer_threshold);
        let bank_activation_threshold = self
            .bank_activation_threshold
            .unwrap_or_else(|| 75.min(back_off_threshold.max(1)));
        let config = PracConfig {
            rowhammer_threshold: self.rowhammer_threshold,
            back_off_threshold,
            prac_level: self.prac_level,
            abo_act: self.abo_act,
            abo_delay: self.prac_level.rfms_per_alert(),
            bank_activation_threshold,
            victims_per_mitigation: self.victims_per_mitigation,
            counter_reset_every_trefw: self.counter_reset_every_trefw,
            policy: self.policy,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section6_operating_point() {
        let cfg = PracConfig::paper_default();
        assert_eq!(cfg.rowhammer_threshold, 1024);
        assert_eq!(cfg.back_off_threshold, 1024);
        assert_eq!(cfg.prac_level, PracLevel::One);
        assert_eq!(cfg.abo_delay, 1);
        assert!(cfg.counter_reset_every_trefw);
        assert!(cfg.policy.is_activity_dependent());
    }

    #[test]
    fn prac_levels_enumerate_spec_values() {
        let levels: Vec<u32> = PracLevel::all()
            .iter()
            .map(|l| l.rfms_per_alert())
            .collect();
        assert_eq!(levels, vec![1, 2, 4]);
    }

    #[test]
    fn abo_delay_tracks_prac_level() {
        for level in PracLevel::all() {
            let cfg = PracConfig::builder().prac_level(level).build();
            assert_eq!(cfg.abo_delay, level.rfms_per_alert());
        }
    }

    #[test]
    fn nbo_defaults_to_nrh() {
        let cfg = PracConfig::builder().rowhammer_threshold(512).build();
        assert_eq!(cfg.back_off_threshold, 512);
    }

    #[test]
    fn bat_defaults_below_nbo() {
        let cfg = PracConfig::builder().rowhammer_threshold(4096).build();
        assert_eq!(cfg.bank_activation_threshold, 75);
        let small = PracConfig::builder().rowhammer_threshold(32).build();
        assert!(small.bank_activation_threshold <= 32);
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let err = PracConfig::builder()
            .rowhammer_threshold(0)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, ConfigError::InvalidParameter { name, .. } if name == "rowhammer_threshold")
        );
    }

    #[test]
    fn nbo_above_nrh_is_rejected() {
        let err = PracConfig::builder()
            .rowhammer_threshold(256)
            .back_off_threshold(512)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(err, ConfigError::InvalidParameter { name, .. } if name == "back_off_threshold")
        );
    }

    #[test]
    fn tprac_policy_is_activity_independent() {
        let policy = MitigationPolicy::Tprac(TpracConfig::default());
        assert!(!policy.is_activity_dependent());
        assert_eq!(policy.label(), "TPRAC");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MitigationPolicy::AboOnly.label(), "ABO-Only");
        assert_eq!(MitigationPolicy::AboPlusAcbRfm.label(), "ABO+ACB-RFM");
        assert_eq!(MitigationPolicy::Disabled.label(), "Disabled");
        assert_eq!(
            MitigationPolicy::PeriodicRfm { every_trefi: 4 }.label(),
            "PRFM"
        );
        assert_eq!(
            MitigationPolicy::Para {
                one_in: 128,
                seed: 1
            }
            .label(),
            "PARA"
        );
    }

    #[test]
    fn activity_dependence_of_the_new_policies() {
        assert!(!MitigationPolicy::Disabled.is_activity_dependent());
        assert!(!MitigationPolicy::PeriodicRfm { every_trefi: 2 }.is_activity_dependent());
        assert!(MitigationPolicy::Para {
            one_in: 64,
            seed: 0
        }
        .is_activity_dependent());
    }

    #[test]
    fn only_disabled_turns_off_abo() {
        assert!(!MitigationPolicy::Disabled.uses_abo());
        for policy in [
            MitigationPolicy::AboOnly,
            MitigationPolicy::AboPlusAcbRfm,
            MitigationPolicy::Tprac(TpracConfig::default()),
            MitigationPolicy::PeriodicRfm { every_trefi: 1 },
            MitigationPolicy::Para {
                one_in: 64,
                seed: 0,
            },
        ] {
            assert!(policy.uses_abo(), "{} must keep ABO armed", policy.label());
        }
    }

    #[test]
    fn degenerate_policy_parameters_are_rejected() {
        let err = PracConfig::builder()
            .policy(MitigationPolicy::PeriodicRfm { every_trefi: 0 })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidParameter { name, .. } if name == "every_trefi"));
        let err = PracConfig::builder()
            .policy(MitigationPolicy::Para { one_in: 0, seed: 3 })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidParameter { name, .. } if name == "one_in"));
    }

    #[test]
    fn build_engine_matches_the_policy() {
        let prac = PracConfig::paper_default();
        for (policy, label) in [
            (MitigationPolicy::AboOnly, "ABO-Only"),
            (MitigationPolicy::AboPlusAcbRfm, "ABO+ACB-RFM"),
            (MitigationPolicy::Tprac(TpracConfig::default()), "TPRAC"),
            (MitigationPolicy::Disabled, "Disabled"),
            (MitigationPolicy::PeriodicRfm { every_trefi: 4 }, "PRFM"),
            (
                MitigationPolicy::Para {
                    one_in: 64,
                    seed: 5,
                },
                "PARA",
            ),
        ] {
            let engine = policy.build_engine(&prac, 15_600);
            assert_eq!(engine.label(), label);
            assert_eq!(engine.responds_to_alert(), policy.uses_abo());
        }
    }
}
