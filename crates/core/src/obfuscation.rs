//! Obfuscation-based alternative defense (Section 7.1 of the paper).
//!
//! Instead of eliminating Alert Back-Off RFMs like TPRAC, the controller (or
//! the DRAM) can inject *random* RFM-like delays so that an attacker observing
//! latency spikes cannot tell genuine mitigation activity from noise.  The
//! paper analyses this as a flexible security/performance trade-off that does
//! not fully close the channel: with injection probability `p` per tREFI an
//! attacker profiling RFM counts over a refresh window still observes
//! distributions whose tails (zero RFMs, or more RFMs than injection alone can
//! produce) leak information.
//!
//! This module provides the injection policy and a simple distribution-overlap
//! estimate of residual leakage used by the ablation bench.

use serde::{Deserialize, Serialize};

use crate::error::{ConfigError, Result};
use crate::timing::DramTimingSummary;

/// Configuration of the random-RFM obfuscation defense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObfuscationConfig {
    /// Probability of injecting a random RFMab in any given tREFI interval.
    pub injection_probability_per_trefi: f64,
}

impl ObfuscationConfig {
    /// Creates a configuration with the given per-tREFI injection probability.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] if the probability is not in
    /// `[0, 1]`.
    pub fn new(injection_probability_per_trefi: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&injection_probability_per_trefi) {
            return Err(ConfigError::InvalidParameter {
                name: "injection_probability_per_trefi",
                reason: format!(
                    "probability must be within [0, 1], got {injection_probability_per_trefi}"
                ),
            });
        }
        Ok(Self {
            injection_probability_per_trefi,
        })
    }

    /// The 50 %-per-tREFI example configuration discussed in the paper.
    #[must_use]
    pub fn paper_example() -> Self {
        Self {
            injection_probability_per_trefi: 0.5,
        }
    }

    /// Expected number of injected RFMs per refresh window (tREFW).
    #[must_use]
    pub fn expected_rfms_per_trefw(&self, timing: &DramTimingSummary) -> f64 {
        self.injection_probability_per_trefi * timing.trefi_per_trefw() as f64
    }

    /// Expected DRAM bandwidth consumed by injected RFMs.
    #[must_use]
    pub fn bandwidth_loss(&self, timing: &DramTimingSummary) -> f64 {
        self.injection_probability_per_trefi * timing.t_rfmab_ns / timing.t_refi_ns
    }

    /// A crude residual-leakage estimate in `[0, 1]`:
    /// the probability that an attacker observing the RFM count over one
    /// refresh window can *definitively* classify victim activity.
    ///
    /// With injection probability `p`, an idle window produces a
    /// Binomial(`n`, `p`) count; a window in which the victim caused `extra`
    /// genuine ABO-RFMs produces that count shifted by `extra`.  Definitive
    /// classification only happens in the non-overlapping tails, which this
    /// model approximates with a normal-distribution tail bound.  `p = 0`
    /// leaks fully (1.0); large `extra` relative to the binomial spread also
    /// pushes leakage towards 1.0.
    #[must_use]
    pub fn residual_leakage(&self, timing: &DramTimingSummary, extra_rfms: u64) -> f64 {
        let p = self.injection_probability_per_trefi;
        if extra_rfms == 0 {
            return 0.0;
        }
        if p <= f64::EPSILON {
            return 1.0;
        }
        let n = timing.trefi_per_trefw() as f64;
        let sigma = (n * p * (1.0 - p)).sqrt();
        if sigma <= f64::EPSILON {
            return 1.0;
        }
        // Separation between the two count distributions in standard
        // deviations; map through a logistic squash so the result is a
        // monotone leakage score in [0, 1).
        let separation = extra_rfms as f64 / (2.0 * sigma);
        separation / (1.0 + separation)
    }
}

impl Default for ObfuscationConfig {
    fn default() -> Self {
        Self::paper_example()
    }
}

/// Deterministic, seedable decision sequence for RFM injection.
///
/// The cycle-accurate model asks this policy once per tREFI whether to inject
/// a random RFM.  A small xorshift generator keeps the crate free of external
/// dependencies while remaining reproducible across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionSequence {
    state: u64,
    threshold: u64,
}

impl InjectionSequence {
    /// Creates a sequence with the given seed and injection probability.
    #[must_use]
    pub fn new(config: ObfuscationConfig, seed: u64) -> Self {
        let threshold = (config.injection_probability_per_trefi * u64::MAX as f64).round() as u64;
        Self {
            state: seed.max(1),
            threshold,
        }
    }

    /// Returns `true` when the current tREFI interval should inject an RFM.
    pub fn next_decision(&mut self) -> bool {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let value = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        value < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_bounds_are_enforced() {
        assert!(ObfuscationConfig::new(-0.1).is_err());
        assert!(ObfuscationConfig::new(1.1).is_err());
        assert!(ObfuscationConfig::new(0.0).is_ok());
        assert!(ObfuscationConfig::new(1.0).is_ok());
    }

    #[test]
    fn paper_example_injects_about_4096_rfms_per_trefw() {
        let t = DramTimingSummary::ddr5_8000b();
        let cfg = ObfuscationConfig::paper_example();
        let expected = cfg.expected_rfms_per_trefw(&t);
        assert!(
            (4000.0..4200.0).contains(&expected),
            "expected ~4096 injected RFMs per tREFW, got {expected}"
        );
    }

    #[test]
    fn bandwidth_loss_scales_with_probability() {
        let t = DramTimingSummary::ddr5_8000b();
        let half = ObfuscationConfig::new(0.5).unwrap().bandwidth_loss(&t);
        let full = ObfuscationConfig::new(1.0).unwrap().bandwidth_loss(&t);
        assert!((full / half - 2.0).abs() < 1e-9);
        // p = 1 injects one 350 ns RFM per 3.9 µs → ~9 % bandwidth.
        assert!((0.05..0.15).contains(&full));
    }

    #[test]
    fn leakage_is_zero_without_victim_activity_and_one_without_noise() {
        let t = DramTimingSummary::ddr5_8000b();
        let cfg = ObfuscationConfig::new(0.5).unwrap();
        assert_eq!(cfg.residual_leakage(&t, 0), 0.0);
        let silent = ObfuscationConfig::new(0.0).unwrap();
        assert_eq!(silent.residual_leakage(&t, 10), 1.0);
    }

    #[test]
    fn leakage_grows_with_victim_rfms_and_shrinks_with_noise() {
        let t = DramTimingSummary::ddr5_8000b();
        let cfg = ObfuscationConfig::new(0.5).unwrap();
        let small = cfg.residual_leakage(&t, 1);
        let large = cfg.residual_leakage(&t, 1000);
        assert!(small < large);
        let noisier = ObfuscationConfig::new(0.9).unwrap();
        // More noise at the same victim activity cannot increase leakage by a
        // large margin (variance is maximal at p = 0.5, so compare to p→1).
        assert!(noisier.residual_leakage(&t, 1000) <= large + 0.2);
        assert!(large < 1.0);
    }

    #[test]
    fn injection_sequence_matches_probability() {
        let cfg = ObfuscationConfig::new(0.25).unwrap();
        let mut seq = InjectionSequence::new(cfg, 42);
        let n = 100_000;
        let hits = (0..n).filter(|_| seq.next_decision()).count();
        let rate = hits as f64 / n as f64;
        assert!(
            (0.23..0.27).contains(&rate),
            "empirical injection rate {rate} should be close to 0.25"
        );
    }

    #[test]
    fn injection_sequence_is_deterministic_per_seed() {
        let cfg = ObfuscationConfig::paper_example();
        let mut a = InjectionSequence::new(cfg, 7);
        let mut b = InjectionSequence::new(cfg, 7);
        let series_a: Vec<bool> = (0..64).map(|_| a.next_decision()).collect();
        let series_b: Vec<bool> = (0..64).map(|_| b.next_decision()).collect();
        assert_eq!(series_a, series_b);
    }
}
