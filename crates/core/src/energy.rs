//! Energy-overhead model (Table 5 of the paper).
//!
//! TPRAC's Timing-Based RFMs add energy in two ways:
//!
//! 1. **Mitigation energy** — every TB-RFM triggers the mitigation of the most
//!    activated row in each bank's queue: four victim-row refreshes plus one
//!    aggressor activation to reset its counter, i.e. five activation-equivalents
//!    per bank per TB-RFM.
//! 2. **Non-mitigation energy** — TB-RFMs block the channel and lengthen
//!    execution time, so background/static energy grows proportionally to the
//!    slowdown.
//!
//! [`EnergyModel`] turns simulation statistics (activation counts, RFM counts,
//! execution times) into the same three columns Table 5 reports: mitigation
//! overhead, non-mitigation overhead and total overhead, each relative to the
//! baseline system's energy.

use serde::{Deserialize, Serialize};

/// Per-operation DRAM energy constants, in arbitrary consistent units
/// (values below are picojoule-scale figures typical of DDR5 power models;
/// only ratios matter for the reported overheads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one row activation + precharge pair.
    pub activation_energy: f64,
    /// Energy of one read or write burst.
    pub rw_energy: f64,
    /// Energy of one all-bank refresh command.
    pub refresh_energy: f64,
    /// Background (static + peripheral) power per nanosecond of execution.
    pub background_power_per_ns: f64,
    /// Activation-equivalents consumed by one RFM mitigation
    /// (4 victim refreshes + 1 counter-reset activation in the paper).
    pub activations_per_mitigation: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            activation_energy: 170.0,
            rw_energy: 110.0,
            refresh_energy: 2200.0,
            background_power_per_ns: 2.0,
            activations_per_mitigation: 5.0,
        }
    }
}

/// Raw counters from a simulation run needed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyInputs {
    /// Demand row activations performed (all banks).
    pub activations: u64,
    /// Read + write column commands performed.
    pub reads_writes: u64,
    /// Periodic refresh commands issued.
    pub refreshes: u64,
    /// RFM commands issued (of any kind), each mitigating one row per bank.
    pub rfms: u64,
    /// Number of banks mitigated per RFM (RFMab mitigates every bank).
    pub banks_per_rfm: u32,
    /// Total execution time in nanoseconds.
    pub execution_time_ns: f64,
}

/// Energy breakdown for a single run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent on demand activations and column accesses.
    pub demand_energy: f64,
    /// Energy spent on periodic refresh.
    pub refresh_energy: f64,
    /// Energy spent on RFM-triggered mitigations.
    pub mitigation_energy: f64,
    /// Background energy (power × execution time).
    pub background_energy: f64,
}

impl EnergyBreakdown {
    /// Total energy of the run.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.demand_energy + self.refresh_energy + self.mitigation_energy + self.background_energy
    }
}

/// Relative overhead of a protected run versus its baseline, split as in
/// Table 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyOverhead {
    /// Extra energy spent on RFM mitigations, as a fraction of baseline total.
    pub mitigation: f64,
    /// Extra non-mitigation energy (longer execution time, extra refresh),
    /// as a fraction of baseline total.
    pub non_mitigation: f64,
    /// Total relative overhead (`mitigation + non_mitigation`).
    pub total: f64,
}

/// The energy model: converts counters into breakdowns and overheads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with explicit per-operation energies.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The per-operation energy constants used by this model.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the absolute energy breakdown for one run.
    #[must_use]
    pub fn breakdown(&self, inputs: &EnergyInputs) -> EnergyBreakdown {
        let p = &self.params;
        let demand_energy = inputs.activations as f64 * p.activation_energy
            + inputs.reads_writes as f64 * p.rw_energy;
        let refresh_energy = inputs.refreshes as f64 * p.refresh_energy;
        let mitigation_energy = inputs.rfms as f64
            * f64::from(inputs.banks_per_rfm.max(1))
            * p.activations_per_mitigation
            * p.activation_energy;
        let background_energy = inputs.execution_time_ns * p.background_power_per_ns;
        EnergyBreakdown {
            demand_energy,
            refresh_energy,
            mitigation_energy,
            background_energy,
        }
    }

    /// Computes the Table-5 style overhead of `protected` relative to
    /// `baseline`.
    ///
    /// The mitigation column is the protected run's mitigation energy divided
    /// by the baseline total; the non-mitigation column is every other energy
    /// difference (longer runtime, extra refresh, different demand energy)
    /// divided by the baseline total.
    #[must_use]
    pub fn overhead(&self, baseline: &EnergyInputs, protected: &EnergyInputs) -> EnergyOverhead {
        let base = self.breakdown(baseline);
        let prot = self.breakdown(protected);
        let base_total = base.total();
        if base_total <= f64::EPSILON {
            return EnergyOverhead::default();
        }
        let mitigation = (prot.mitigation_energy - base.mitigation_energy) / base_total;
        let non_mitigation = ((prot.total() - prot.mitigation_energy)
            - (base.total() - base.mitigation_energy))
            / base_total;
        EnergyOverhead {
            mitigation,
            non_mitigation,
            total: mitigation + non_mitigation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_inputs() -> EnergyInputs {
        EnergyInputs {
            activations: 1_000_000,
            reads_writes: 4_000_000,
            refreshes: 10_000,
            rfms: 0,
            banks_per_rfm: 0,
            execution_time_ns: 10_000_000.0,
        }
    }

    #[test]
    fn breakdown_components_are_additive() {
        let model = EnergyModel::default();
        let b = model.breakdown(&baseline_inputs());
        let total = b.demand_energy + b.refresh_energy + b.mitigation_energy + b.background_energy;
        assert!((b.total() - total).abs() < 1e-9);
        assert_eq!(b.mitigation_energy, 0.0);
    }

    #[test]
    fn overhead_is_zero_for_identical_runs() {
        let model = EnergyModel::default();
        let inputs = baseline_inputs();
        let o = model.overhead(&inputs, &inputs);
        assert!(o.mitigation.abs() < 1e-12);
        assert!(o.non_mitigation.abs() < 1e-12);
        assert!(o.total.abs() < 1e-12);
    }

    #[test]
    fn rfms_contribute_five_activations_per_bank() {
        let model = EnergyModel::default();
        let mut protected = baseline_inputs();
        protected.rfms = 1000;
        protected.banks_per_rfm = 128;
        let b = model.breakdown(&protected);
        let expected = 1000.0 * 128.0 * 5.0 * model.params().activation_energy;
        assert!((b.mitigation_energy - expected).abs() < 1e-6);
    }

    #[test]
    fn longer_execution_time_shows_up_as_non_mitigation_overhead() {
        let model = EnergyModel::default();
        let baseline = baseline_inputs();
        let mut protected = baseline;
        protected.execution_time_ns *= 1.05;
        let o = model.overhead(&baseline, &protected);
        assert!(o.mitigation.abs() < 1e-12);
        assert!(o.non_mitigation > 0.0);
        assert!((o.total - o.non_mitigation).abs() < 1e-12);
    }

    #[test]
    fn overhead_grows_with_rfm_frequency() {
        // More frequent TB-RFMs (lower NRH) must produce larger overhead,
        // reproducing the trend of Table 5.
        let model = EnergyModel::default();
        let baseline = baseline_inputs();
        let overhead_at = |rfms: u64, slowdown: f64| {
            let mut p = baseline;
            p.rfms = rfms;
            p.banks_per_rfm = 128;
            p.execution_time_ns *= slowdown;
            model.overhead(&baseline, &p).total
        };
        let high_nrh = overhead_at(100, 1.01);
        let low_nrh = overhead_at(3000, 1.25);
        assert!(low_nrh > high_nrh);
    }

    #[test]
    fn degenerate_baseline_yields_zero_overhead() {
        let model = EnergyModel::default();
        let zero = EnergyInputs::default();
        let o = model.overhead(&zero, &baseline_inputs());
        assert_eq!(o, EnergyOverhead::default());
    }
}
