//! Physical-address → DRAM-coordinate mapping policies.
//!
//! Three mappings are provided:
//!
//! * [`MopMapping`] — Minimalist Open-Page (the paper's Table 3 policy): a
//!   small run of consecutive cache lines stays in the same row to retain
//!   some spatial locality, while higher-order bits interleave across bank
//!   groups, banks and ranks for parallelism.
//! * [`BankStripedMapping`] — consecutive cache lines are striped across
//!   banks, so the cache lines of a single 4 KB page land in many banks and a
//!   single DRAM row holds lines from many different pages.  This is the
//!   mapping property the activation-count covert channel and the AES side
//!   channel rely on (two processes sharing one physical DRAM row).
//! * [`RowInterleavedMapping`] — a simple row:bank:column layout used as a
//!   baseline in tests.
//!
//! All mappings are bijective on the cache-line index; property tests verify
//! the round trip (including the channel bits in multi-channel
//! organisations).
//!
//! # Channel bits
//!
//! When the organisation has more than one channel, every mapping carves
//! `log2(channels)` bits out of the cache-line index *before* applying its
//! per-channel layout.  Where those bits sit is the
//! [`ChannelInterleave`] granularity:
//!
//! * [`ChannelInterleave::CacheLine`] — the bits right above the cache-line
//!   byte offset: consecutive cache lines rotate across channels (maximum
//!   channel-level parallelism for streaming traffic).
//! * [`ChannelInterleave::Row`] — the bits right above one row's worth of
//!   physical address space: consecutive row-sized blocks rotate across
//!   channels (a streaming access burst stays on one channel's open row).
//!
//! With one channel the channel field is zero bits wide and every mapping
//! decodes bit-identically to the pre-multi-channel layout.

use dram_sim::org::{DramAddress, DramOrganization};
use serde::{Deserialize, Serialize};

/// A physical→DRAM address translation policy.
pub trait AddressMapping: std::fmt::Debug + Send + Sync {
    /// Deep-copies the mapping behind its trait object.  Mappings are
    /// immutable configuration, so the copy exists purely to make the
    /// controller clonable for checkpoint/fork execution.
    fn clone_box(&self) -> Box<dyn AddressMapping>;

    /// Decodes a physical byte address into DRAM coordinates (including the
    /// channel in multi-channel organisations).
    fn decode(&self, physical_address: u64) -> DramAddress;

    /// Decodes only the channel of a physical byte address.  Routers on the
    /// per-request hot path use this instead of a full [`AddressMapping::decode`];
    /// the provided implementations reduce it to a shift-and-mask.
    fn decode_channel(&self, physical_address: u64) -> u32 {
        self.decode(physical_address).channel
    }

    /// Re-encodes DRAM coordinates into the physical byte address of the
    /// start of that cache line (inverse of [`AddressMapping::decode`]).
    fn encode(&self, address: &DramAddress) -> u64;

    /// The organisation this mapping was built for.
    fn organization(&self) -> &DramOrganization;
}

/// Which physical-address bits select the channel in multi-channel
/// organisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ChannelInterleave {
    /// Channel bits right above the cache-line offset: consecutive cache
    /// lines rotate across channels.
    #[default]
    CacheLine,
    /// Channel bits right above a row-sized block: consecutive rows' worth
    /// of physical addresses rotate across channels.
    Row,
}

impl ChannelInterleave {
    /// Stable CLI / config spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChannelInterleave::CacheLine => "cache-line",
            ChannelInterleave::Row => "row",
        }
    }

    /// Parses a CLI spelling (`"cache-line"` / `"row"`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "cache-line" | "cacheline" | "line" => Some(ChannelInterleave::CacheLine),
            "row" => Some(ChannelInterleave::Row),
            _ => None,
        }
    }

    /// Bit offset of the channel field within the cache-line index.
    fn line_bit_offset(self, org: &DramOrganization) -> u32 {
        match self {
            ChannelInterleave::CacheLine => 0,
            ChannelInterleave::Row => log2(org.columns_per_row),
        }
    }
}

/// Where the rank bits sit inside each mapping's within-channel layout.
///
/// * [`RankInterleave::Interleaved`] (default) keeps the rank bits in each
///   mapping's native mid-order slot — bit-identical to the layouts before
///   the knob existed, so every existing golden and cache key is preserved.
/// * [`RankInterleave::Consolidated`] moves the rank bits to the most
///   significant position: each rank owns one contiguous half (quarter, …)
///   of the channel's address space, so streaming traffic stays on one
///   rank and rank-level parallelism comes only from explicit placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RankInterleave {
    /// Rank bits in the mapping's native mid-order position (the seed
    /// layout).
    #[default]
    Interleaved,
    /// Rank bits most-significant: contiguous per-rank address regions.
    Consolidated,
}

impl RankInterleave {
    /// Stable CLI / config spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RankInterleave::Interleaved => "interleaved",
            RankInterleave::Consolidated => "consolidated",
        }
    }

    /// Parses a CLI spelling (`"interleaved"` / `"consolidated"`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "interleaved" => Some(RankInterleave::Interleaved),
            "consolidated" => Some(RankInterleave::Consolidated),
            _ => None,
        }
    }
}

/// Selector for the provided mapping policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MappingKind {
    /// Minimalist Open-Page.
    #[default]
    Mop,
    /// Cache lines striped across banks.
    BankStriped,
    /// Row-interleaved baseline.
    RowInterleaved,
}

impl MappingKind {
    /// Instantiates the mapping for `org` with the default (cache-line)
    /// channel interleave.
    #[must_use]
    pub fn instantiate(self, org: DramOrganization) -> Box<dyn AddressMapping> {
        self.instantiate_with(org, ChannelInterleave::default())
    }

    /// Instantiates the mapping for `org` with an explicit channel-interleave
    /// granularity.
    #[must_use]
    pub fn instantiate_with(
        self,
        org: DramOrganization,
        interleave: ChannelInterleave,
    ) -> Box<dyn AddressMapping> {
        self.instantiate_full(org, interleave, RankInterleave::default())
    }

    /// Instantiates the mapping for `org` with explicit channel- and
    /// rank-interleave granularities.
    #[must_use]
    pub fn instantiate_full(
        self,
        org: DramOrganization,
        interleave: ChannelInterleave,
        rank_interleave: RankInterleave,
    ) -> Box<dyn AddressMapping> {
        match self {
            MappingKind::Mop => Box::new(
                MopMapping::new(org)
                    .with_interleave(interleave)
                    .with_rank_interleave(rank_interleave),
            ),
            MappingKind::BankStriped => Box::new(
                BankStripedMapping::new(org)
                    .with_interleave(interleave)
                    .with_rank_interleave(rank_interleave),
            ),
            MappingKind::RowInterleaved => Box::new(
                RowInterleavedMapping::new(org)
                    .with_interleave(interleave)
                    .with_rank_interleave(rank_interleave),
            ),
        }
    }
}

fn log2(value: u32) -> u32 {
    debug_assert!(value.is_power_of_two());
    value.trailing_zeros()
}

/// Splits a cache-line index into fields of the given widths (low to high).
///
/// Monomorphised over the field count so the result lives on the stack:
/// decode/encode sit on the per-request hot path of every controller and
/// must not allocate.
///
/// `pub` but hidden: not API — exported only so the criterion harness
/// benches the shipped kernel rather than a copy that could drift.
#[doc(hidden)]
pub fn extract_fields<const N: usize>(mut index: u64, widths: &[u32; N]) -> [u32; N] {
    let mut out = [0u32; N];
    for (slot, &w) in out.iter_mut().zip(widths) {
        let mask = (1u64 << w) - 1;
        *slot = (index & mask) as u32;
        index >>= w;
    }
    out
}

/// Inverse of [`extract_fields`]; `pub` but hidden for the same reason.
#[doc(hidden)]
pub fn pack_fields<const N: usize>(fields: &[u32; N], widths: &[u32; N]) -> u64 {
    let mut out = 0u64;
    let mut shift = 0u32;
    for (&f, &w) in fields.iter().zip(widths) {
        debug_assert!(u64::from(f) < (1u64 << w));
        out |= u64::from(f) << shift;
        shift += w;
    }
    out
}

/// Reduces a physical byte address to a cache-line index within the whole
/// (all-channel) subsystem capacity.
fn subsystem_line(org: &DramOrganization, physical_address: u64) -> u64 {
    (physical_address / u64::from(org.column_bytes))
        % (org.capacity_bytes() / u64::from(org.column_bytes))
}

/// Extracts the channel bits from a subsystem cache-line index, returning
/// `(channel, within-channel line index)`.  Zero-width (single-channel)
/// splits are the identity.
fn split_channel(line: u64, org: &DramOrganization, interleave: ChannelInterleave) -> (u32, u64) {
    let width = log2(org.channels);
    if width == 0 {
        return (0, line);
    }
    let offset = interleave.line_bit_offset(org);
    let low = line & ((1u64 << offset) - 1);
    let channel = ((line >> offset) & ((1u64 << width) - 1)) as u32;
    let high = line >> (offset + width);
    (channel, low | (high << offset))
}

/// Channel bits of a physical address, without the full field extraction —
/// the shared fast path behind every mapping's
/// [`AddressMapping::decode_channel`].
fn channel_of(org: &DramOrganization, interleave: ChannelInterleave, physical_address: u64) -> u32 {
    if org.channels == 1 {
        return 0;
    }
    split_channel(subsystem_line(org, physical_address), org, interleave).0
}

/// Inverse of [`split_channel`]: re-inserts the channel bits into a
/// within-channel line index.
fn join_channel(
    channel: u32,
    inner: u64,
    org: &DramOrganization,
    interleave: ChannelInterleave,
) -> u64 {
    let width = log2(org.channels);
    if width == 0 {
        return inner;
    }
    debug_assert!(channel < org.channels, "channel {channel} out of range");
    let offset = interleave.line_bit_offset(org);
    let low = inner & ((1u64 << offset) - 1);
    let high = inner >> offset;
    low | (u64::from(channel) << offset) | (high << (offset + width))
}

/// Minimalist Open-Page mapping.
///
/// Cache-line index bit layout (low → high):
/// `[column_low (mop run)] [bank group] [bank] [rank] [column_high] [row]`.
/// A run of `mop_run` consecutive lines shares the row (open-page locality),
/// while the next bits spread accesses across bank groups/banks/ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MopMapping {
    org: DramOrganization,
    mop_run: u32,
    interleave: ChannelInterleave,
    rank_interleave: RankInterleave,
}

impl MopMapping {
    /// Creates the mapping with the default run length of 4 cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        let mop_run = 4.min(org.columns_per_row);
        Self {
            org,
            mop_run,
            interleave: ChannelInterleave::default(),
            rank_interleave: RankInterleave::default(),
        }
    }

    /// Replaces the channel-interleave granularity (builder-style).
    #[must_use]
    pub fn with_interleave(mut self, interleave: ChannelInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Replaces the rank-interleave position (builder-style).
    #[must_use]
    pub fn with_rank_interleave(mut self, rank_interleave: RankInterleave) -> Self {
        self.rank_interleave = rank_interleave;
        self
    }

    /// Field widths low → high.  Interleaved:
    /// `[col_low, bg, bank, rank, col_high, row]`; consolidated moves the
    /// rank width to the top: `[col_low, bg, bank, col_high, row, rank]`.
    fn widths(&self) -> [u32; 6] {
        let col_low = log2(self.mop_run);
        let col_high = log2(self.org.columns_per_row) - col_low;
        let bg = log2(self.org.bank_groups);
        let bank = log2(self.org.banks_per_group);
        let rank = log2(self.org.ranks);
        let row = log2(self.org.rows_per_bank);
        match self.rank_interleave {
            RankInterleave::Interleaved => [col_low, bg, bank, rank, col_high, row],
            RankInterleave::Consolidated => [col_low, bg, bank, col_high, row, rank],
        }
    }
}

impl Clone for Box<dyn AddressMapping> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl AddressMapping for MopMapping {
    fn clone_box(&self) -> Box<dyn AddressMapping> {
        Box::new(self.clone())
    }

    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = subsystem_line(&self.org, physical_address);
        let (channel, inner) = split_channel(line, &self.org, self.interleave);
        let widths = self.widths();
        let f = extract_fields(inner, &widths);
        let (rank, col_high, row) = match self.rank_interleave {
            RankInterleave::Interleaved => (f[3], f[4], f[5]),
            RankInterleave::Consolidated => (f[5], f[3], f[4]),
        };
        let column = f[0] | (col_high << log2(self.mop_run));
        DramAddress {
            channel,
            rank,
            bank_group: f[1],
            bank: f[2],
            row,
            column,
        }
    }

    fn decode_channel(&self, physical_address: u64) -> u32 {
        channel_of(&self.org, self.interleave, physical_address)
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let widths = self.widths();
        let col_low_bits = log2(self.mop_run);
        let col_low = address.column & (self.mop_run - 1);
        let col_high = address.column >> col_low_bits;
        let fields = match self.rank_interleave {
            RankInterleave::Interleaved => [
                col_low,
                address.bank_group,
                address.bank,
                address.rank,
                col_high,
                address.row,
            ],
            RankInterleave::Consolidated => [
                col_low,
                address.bank_group,
                address.bank,
                col_high,
                address.row,
                address.rank,
            ],
        };
        let inner = pack_fields(&fields, &widths);
        join_channel(address.channel, inner, &self.org, self.interleave)
            * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

/// Bank-striped mapping: consecutive cache lines rotate across bank groups,
/// banks and ranks before advancing the column.
///
/// Under this mapping a 4 KB page (64 cache lines) spreads over up to 64
/// banks while each DRAM row holds cache lines belonging to many distinct
/// pages — the exact condition the paper exploits for row sharing between
/// victim and attacker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStripedMapping {
    org: DramOrganization,
    interleave: ChannelInterleave,
    rank_interleave: RankInterleave,
}

impl BankStripedMapping {
    /// Creates the mapping.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        Self {
            org,
            interleave: ChannelInterleave::default(),
            rank_interleave: RankInterleave::default(),
        }
    }

    /// Replaces the channel-interleave granularity (builder-style).
    #[must_use]
    pub fn with_interleave(mut self, interleave: ChannelInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Replaces the rank-interleave position (builder-style).
    #[must_use]
    pub fn with_rank_interleave(mut self, rank_interleave: RankInterleave) -> Self {
        self.rank_interleave = rank_interleave;
        self
    }

    /// Interleaved: `[bg, bank, rank, col, row]`; consolidated:
    /// `[bg, bank, col, row, rank]`.
    fn widths(&self) -> [u32; 5] {
        let bg = log2(self.org.bank_groups);
        let bank = log2(self.org.banks_per_group);
        let rank = log2(self.org.ranks);
        let col = log2(self.org.columns_per_row);
        let row = log2(self.org.rows_per_bank);
        match self.rank_interleave {
            RankInterleave::Interleaved => [bg, bank, rank, col, row],
            RankInterleave::Consolidated => [bg, bank, col, row, rank],
        }
    }
}

impl AddressMapping for BankStripedMapping {
    fn clone_box(&self) -> Box<dyn AddressMapping> {
        Box::new(self.clone())
    }

    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = subsystem_line(&self.org, physical_address);
        let (channel, inner) = split_channel(line, &self.org, self.interleave);
        let f = extract_fields(inner, &self.widths());
        let (rank, column, row) = match self.rank_interleave {
            RankInterleave::Interleaved => (f[2], f[3], f[4]),
            RankInterleave::Consolidated => (f[4], f[2], f[3]),
        };
        DramAddress {
            channel,
            bank_group: f[0],
            bank: f[1],
            rank,
            column,
            row,
        }
    }

    fn decode_channel(&self, physical_address: u64) -> u32 {
        channel_of(&self.org, self.interleave, physical_address)
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let fields = match self.rank_interleave {
            RankInterleave::Interleaved => [
                address.bank_group,
                address.bank,
                address.rank,
                address.column,
                address.row,
            ],
            RankInterleave::Consolidated => [
                address.bank_group,
                address.bank,
                address.column,
                address.row,
                address.rank,
            ],
        };
        let inner = pack_fields(&fields, &self.widths());
        join_channel(address.channel, inner, &self.org, self.interleave)
            * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

/// Simple row:rank:bank-group:bank:column layout (highest bits select the
/// row). Used as a test baseline; exhibits poor bank parallelism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowInterleavedMapping {
    org: DramOrganization,
    interleave: ChannelInterleave,
    rank_interleave: RankInterleave,
}

impl RowInterleavedMapping {
    /// Creates the mapping.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        Self {
            org,
            interleave: ChannelInterleave::default(),
            rank_interleave: RankInterleave::default(),
        }
    }

    /// Replaces the channel-interleave granularity (builder-style).
    #[must_use]
    pub fn with_interleave(mut self, interleave: ChannelInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Replaces the rank-interleave position (builder-style).
    #[must_use]
    pub fn with_rank_interleave(mut self, rank_interleave: RankInterleave) -> Self {
        self.rank_interleave = rank_interleave;
        self
    }

    /// Interleaved: `[col, bank, bg, rank, row]`; consolidated:
    /// `[col, bank, bg, row, rank]`.
    fn widths(&self) -> [u32; 5] {
        let col = log2(self.org.columns_per_row);
        let bank = log2(self.org.banks_per_group);
        let bg = log2(self.org.bank_groups);
        let rank = log2(self.org.ranks);
        let row = log2(self.org.rows_per_bank);
        match self.rank_interleave {
            RankInterleave::Interleaved => [col, bank, bg, rank, row],
            RankInterleave::Consolidated => [col, bank, bg, row, rank],
        }
    }
}

impl AddressMapping for RowInterleavedMapping {
    fn clone_box(&self) -> Box<dyn AddressMapping> {
        Box::new(self.clone())
    }

    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = subsystem_line(&self.org, physical_address);
        let (channel, inner) = split_channel(line, &self.org, self.interleave);
        let f = extract_fields(inner, &self.widths());
        let (rank, row) = match self.rank_interleave {
            RankInterleave::Interleaved => (f[3], f[4]),
            RankInterleave::Consolidated => (f[4], f[3]),
        };
        DramAddress {
            channel,
            column: f[0],
            bank: f[1],
            bank_group: f[2],
            rank,
            row,
        }
    }

    fn decode_channel(&self, physical_address: u64) -> u32 {
        channel_of(&self.org, self.interleave, physical_address)
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let fields = match self.rank_interleave {
            RankInterleave::Interleaved => [
                address.column,
                address.bank,
                address.bank_group,
                address.rank,
                address.row,
            ],
            RankInterleave::Consolidated => [
                address.column,
                address.bank,
                address.bank_group,
                address.row,
                address.rank,
            ],
        };
        let inner = pack_fields(&fields, &self.widths());
        join_channel(address.channel, inner, &self.org, self.interleave)
            * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> DramOrganization {
        DramOrganization::ddr5_32gb_quad_rank()
    }

    #[test]
    fn mop_keeps_short_runs_in_one_row() {
        let m = MopMapping::new(org());
        let base = 0x4000_0000u64;
        let first = m.decode(base);
        for i in 1..4u64 {
            let next = m.decode(base + i * 64);
            assert!(first.same_row(&next), "line {i} left the row under MOP");
        }
        // The 5th line moves to another bank group (run length 4).
        let fifth = m.decode(base + 4 * 64);
        assert!(!first.same_bank(&fifth));
    }

    #[test]
    fn bank_striped_spreads_consecutive_lines_across_banks() {
        let m = BankStripedMapping::new(org());
        let base = 0x1234_5000u64 & !63;
        let a = m.decode(base);
        let b = m.decode(base + 64);
        assert!(
            !a.same_bank(&b),
            "consecutive lines must land in different banks"
        );
    }

    #[test]
    fn bank_striped_rows_hold_many_pages() {
        // Two addresses 2 MB apart (different 4 KB pages) can share a row:
        // find the encode of the same (bank, row) with different columns.
        let m = BankStripedMapping::new(org());
        let row_addr = DramAddress {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 42,
            column: 0,
        };
        let other_col = DramAddress {
            column: 17,
            ..row_addr
        };
        let pa0 = m.encode(&row_addr);
        let pa1 = m.encode(&other_col);
        // Different 4 KB pages...
        assert_ne!(pa0 >> 12, pa1 >> 12);
        // ...but the same DRAM row.
        assert!(m.decode(pa0).same_row(&m.decode(pa1)));
    }

    #[test]
    fn mop_round_trips() {
        let m = MopMapping::new(org());
        for pa in [
            0u64,
            64,
            4096,
            1 << 20,
            (1 << 30) + 64 * 7,
            (1 << 36) + 4096 * 3,
        ] {
            let decoded = m.decode(pa);
            assert_eq!(m.encode(&decoded), pa, "MOP round trip failed for {pa:#x}");
        }
    }

    #[test]
    fn all_mappings_decode_within_bounds() {
        let o = org();
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate(o);
            for pa in [0u64, 64, 1 << 21, (1 << 33) + 128, o.capacity_bytes() - 64] {
                let d = m.decode(pa);
                assert!(d.rank < o.ranks);
                assert!(d.bank_group < o.bank_groups);
                assert!(d.bank < o.banks_per_group);
                assert!(d.row < o.rows_per_bank);
                assert!(d.column < o.columns_per_row);
            }
        }
    }

    #[test]
    fn row_interleaved_keeps_whole_row_contiguous() {
        let m = RowInterleavedMapping::new(org());
        let base = 0u64;
        let first = m.decode(base);
        for i in 1..u64::from(org().columns_per_row) {
            let next = m.decode(base + i * 64);
            assert!(first.same_row(&next));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn invalid_organisation_is_rejected() {
        let mut o = DramOrganization::tiny_for_tests();
        o.columns_per_row = 3;
        let _ = MopMapping::new(o);
    }

    #[test]
    fn cache_line_interleave_rotates_consecutive_lines_across_channels() {
        let o = org().with_channels(4);
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate_with(o, ChannelInterleave::CacheLine);
            let channels: Vec<u32> = (0..8u64).map(|i| m.decode(i * 64).channel).collect();
            assert_eq!(
                channels,
                vec![0, 1, 2, 3, 0, 1, 2, 3],
                "{kind:?} must rotate channels per cache line"
            );
        }
    }

    #[test]
    fn row_interleave_keeps_a_row_block_on_one_channel() {
        let o = org().with_channels(4);
        let row_bytes = o.row_bytes();
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate_with(o, ChannelInterleave::Row);
            // Every cache line of the first row-sized block shares channel 0;
            // the next block moves to channel 1.
            for i in 0..(row_bytes / 64) {
                assert_eq!(m.decode(i * 64).channel, 0, "{kind:?} line {i}");
            }
            assert_eq!(m.decode(row_bytes).channel, 1, "{kind:?} next block");
        }
    }

    #[test]
    fn single_channel_decode_is_unchanged_by_the_channel_field() {
        // A 1-channel organisation must decode exactly as before the
        // multi-channel refactor regardless of the interleave knob.
        for interleave in [ChannelInterleave::CacheLine, ChannelInterleave::Row] {
            let m = MopMapping::new(org()).with_interleave(interleave);
            for pa in [0u64, 64, 4096, 1 << 20, (1 << 30) + 64 * 7] {
                let d = m.decode(pa);
                assert_eq!(d.channel, 0);
                assert_eq!(m.encode(&d), pa);
            }
        }
    }

    #[test]
    fn decode_channel_agrees_with_the_full_decode() {
        for channels in [1u32, 2, 4] {
            let o = org().with_channels(channels);
            for kind in [
                MappingKind::Mop,
                MappingKind::BankStriped,
                MappingKind::RowInterleaved,
            ] {
                for interleave in [ChannelInterleave::CacheLine, ChannelInterleave::Row] {
                    let m = kind.instantiate_with(o, interleave);
                    for pa in [0u64, 64, 8192, 1 << 21, (1 << 34) + 192] {
                        assert_eq!(
                            m.decode_channel(pa),
                            m.decode(pa).channel,
                            "{kind:?}/{interleave:?}/{channels}ch at {pa:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interleave_labels_round_trip() {
        for interleave in [ChannelInterleave::CacheLine, ChannelInterleave::Row] {
            assert_eq!(
                ChannelInterleave::parse(interleave.label()),
                Some(interleave)
            );
        }
        assert_eq!(ChannelInterleave::parse("diagonal"), None);
    }

    #[test]
    fn rank_interleave_labels_round_trip() {
        for interleave in [RankInterleave::Interleaved, RankInterleave::Consolidated] {
            assert_eq!(RankInterleave::parse(interleave.label()), Some(interleave));
        }
        assert_eq!(RankInterleave::parse("diagonal"), None);
        assert_eq!(RankInterleave::default(), RankInterleave::Interleaved);
    }

    #[test]
    fn consolidated_rank_bits_partition_the_address_space() {
        // With rank bits most-significant, each rank owns one contiguous
        // half of a 2-rank channel's address space.
        let o = org().with_ranks(2);
        let lines = o.capacity_bytes() / u64::from(o.column_bytes);
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate_full(
                o,
                ChannelInterleave::CacheLine,
                RankInterleave::Consolidated,
            );
            for probe in [0, 64, lines / 4] {
                assert_eq!(m.decode(probe * 64).rank, 0, "{kind:?} low half");
                assert_eq!(
                    m.decode((lines / 2 + probe) * 64).rank,
                    1,
                    "{kind:?} high half"
                );
            }
        }
    }

    #[test]
    fn default_rank_interleave_matches_the_seed_layout() {
        // `instantiate_with` (no rank knob) and `instantiate_full` with the
        // default must decode identically — the bit-identity the goldens pin.
        let o = org();
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let seed = kind.instantiate_with(o, ChannelInterleave::CacheLine);
            let full =
                kind.instantiate_full(o, ChannelInterleave::CacheLine, RankInterleave::Interleaved);
            for pa in [0u64, 64, 4096, 1 << 20, (1 << 30) + 64 * 7] {
                assert_eq!(seed.decode(pa), full.decode(pa), "{kind:?} at {pa:#x}");
            }
        }
    }

    #[test]
    fn multi_channel_decode_stays_within_bounds() {
        let o = org().with_channels(2);
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate(o);
            for pa in [0u64, 64, 1 << 21, (1 << 34) + 128, o.capacity_bytes() - 64] {
                let d = m.decode(pa);
                assert!(d.channel < o.channels);
                assert!(d.rank < o.ranks);
                assert!(d.bank_group < o.bank_groups);
                assert!(d.bank < o.banks_per_group);
                assert!(d.row < o.rows_per_bank);
                assert!(d.column < o.columns_per_row);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn org() -> DramOrganization {
        DramOrganization::ddr5_32gb_quad_rank()
    }

    proptest! {
        #[test]
        fn mop_bijective(line in 0u64..(1u64 << 31)) {
            let m = MopMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        #[test]
        fn bank_striped_bijective(line in 0u64..(1u64 << 31)) {
            let m = BankStripedMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        #[test]
        fn row_interleaved_bijective(line in 0u64..(1u64 << 31)) {
            let m = RowInterleavedMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        /// Distinct physical lines decode to distinct DRAM coordinates.
        #[test]
        fn decode_is_injective(a in 0u64..(1u64 << 28), b in 0u64..(1u64 << 28)) {
            prop_assume!(a != b);
            let m = MopMapping::new(org());
            prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
        }

        /// Every mapping × interleave × channel count round-trips including
        /// the channel bits.
        #[test]
        fn multi_channel_bijective(
            line in 0u64..(1u64 << 31),
            channels in 1u32..4u32,
            kind_index in 0usize..3,
            row_interleave in 0u32..2,
        ) {
            let o = org().with_channels(1 << channels);
            let kind = [
                MappingKind::Mop,
                MappingKind::BankStriped,
                MappingKind::RowInterleaved,
            ][kind_index];
            let interleave = if row_interleave == 1 {
                ChannelInterleave::Row
            } else {
                ChannelInterleave::CacheLine
            };
            let m = kind.instantiate_with(o, interleave);
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert!(decoded.channel < o.channels);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        /// The channel bits really partition the line space: distinct lines
        /// that decode to the same channel stay distinct within the channel.
        #[test]
        fn multi_channel_decode_is_injective(
            a in 0u64..(1u64 << 26),
            b in 0u64..(1u64 << 26),
        ) {
            prop_assume!(a != b);
            let o = org().with_channels(4);
            let m = BankStripedMapping::new(o).with_interleave(ChannelInterleave::Row);
            prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
        }

        /// Ranks {1,2} × every mapping × both channel interleaves × both
        /// rank interleaves × channels {1,2,4}: decoded coordinates stay in
        /// bounds and encode/decode is the identity.
        #[test]
        fn rank_aware_bijective(
            line in 0u64..(1u64 << 31),
            channels_log2 in 0u32..3,
            ranks_log2 in 0u32..2,
            kind_index in 0usize..3,
            channel_interleave in 0u32..2,
            rank_interleave in 0u32..2,
        ) {
            let o = org()
                .with_channels(1 << channels_log2)
                .with_ranks(1 << ranks_log2);
            let kind = [
                MappingKind::Mop,
                MappingKind::BankStriped,
                MappingKind::RowInterleaved,
            ][kind_index];
            let ci = if channel_interleave == 1 {
                ChannelInterleave::Row
            } else {
                ChannelInterleave::CacheLine
            };
            let ri = if rank_interleave == 1 {
                RankInterleave::Consolidated
            } else {
                RankInterleave::Interleaved
            };
            let m = kind.instantiate_full(o, ci, ri);
            // Keep the probe inside the (rank-dependent) capacity so the
            // round trip is exact rather than modulo-wrapped.
            let lines = o.capacity_bytes() / u64::from(o.column_bytes);
            let pa = (line % lines) * u64::from(o.column_bytes);
            let d = m.decode(pa);
            prop_assert!(d.channel < o.channels);
            prop_assert!(d.rank < o.ranks);
            prop_assert!(d.bank_group < o.bank_groups);
            prop_assert!(d.bank < o.banks_per_group);
            prop_assert!(d.row < o.rows_per_bank);
            prop_assert!(d.column < o.columns_per_row);
            prop_assert_eq!(m.encode(&d), pa);
        }

        /// Rank bits really partition the line space under both rank
        /// interleaves: distinct lines stay distinct after decode.
        #[test]
        fn rank_aware_decode_is_injective(
            a in 0u64..(1u64 << 26),
            b in 0u64..(1u64 << 26),
            rank_interleave in 0u32..2,
        ) {
            prop_assume!(a != b);
            let o = org().with_ranks(2);
            let ri = if rank_interleave == 1 {
                RankInterleave::Consolidated
            } else {
                RankInterleave::Interleaved
            };
            let m = MappingKind::Mop.instantiate_full(o, ChannelInterleave::CacheLine, ri);
            prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
        }
    }
}
