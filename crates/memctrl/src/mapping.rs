//! Physical-address → DRAM-coordinate mapping policies.
//!
//! Three mappings are provided:
//!
//! * [`MopMapping`] — Minimalist Open-Page (the paper's Table 3 policy): a
//!   small run of consecutive cache lines stays in the same row to retain
//!   some spatial locality, while higher-order bits interleave across bank
//!   groups, banks and ranks for parallelism.
//! * [`BankStripedMapping`] — consecutive cache lines are striped across
//!   banks, so the cache lines of a single 4 KB page land in many banks and a
//!   single DRAM row holds lines from many different pages.  This is the
//!   mapping property the activation-count covert channel and the AES side
//!   channel rely on (two processes sharing one physical DRAM row).
//! * [`RowInterleavedMapping`] — a simple row:bank:column layout used as a
//!   baseline in tests.
//!
//! All mappings are bijective on the cache-line index; property tests verify
//! the round trip.

use dram_sim::org::{DramAddress, DramOrganization};
use serde::{Deserialize, Serialize};

/// A physical→DRAM address translation policy.
pub trait AddressMapping: std::fmt::Debug + Send + Sync {
    /// Decodes a physical byte address into DRAM coordinates.
    fn decode(&self, physical_address: u64) -> DramAddress;

    /// Re-encodes DRAM coordinates into the physical byte address of the
    /// start of that cache line (inverse of [`AddressMapping::decode`]).
    fn encode(&self, address: &DramAddress) -> u64;

    /// The organisation this mapping was built for.
    fn organization(&self) -> &DramOrganization;
}

/// Selector for the provided mapping policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MappingKind {
    /// Minimalist Open-Page.
    #[default]
    Mop,
    /// Cache lines striped across banks.
    BankStriped,
    /// Row-interleaved baseline.
    RowInterleaved,
}

impl MappingKind {
    /// Instantiates the mapping for `org`.
    #[must_use]
    pub fn instantiate(self, org: DramOrganization) -> Box<dyn AddressMapping> {
        match self {
            MappingKind::Mop => Box::new(MopMapping::new(org)),
            MappingKind::BankStriped => Box::new(BankStripedMapping::new(org)),
            MappingKind::RowInterleaved => Box::new(RowInterleavedMapping::new(org)),
        }
    }
}

fn log2(value: u32) -> u32 {
    debug_assert!(value.is_power_of_two());
    value.trailing_zeros()
}

/// Splits a cache-line index into fields of the given widths (low to high),
/// returning the extracted fields.
fn extract_fields(mut index: u64, widths: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(widths.len());
    for &w in widths {
        let mask = (1u64 << w) - 1;
        out.push((index & mask) as u32);
        index >>= w;
    }
    out
}

fn pack_fields(fields: &[u32], widths: &[u32]) -> u64 {
    debug_assert_eq!(fields.len(), widths.len());
    let mut out = 0u64;
    let mut shift = 0u32;
    for (&f, &w) in fields.iter().zip(widths) {
        debug_assert!(u64::from(f) < (1u64 << w));
        out |= u64::from(f) << shift;
        shift += w;
    }
    out
}

/// Minimalist Open-Page mapping.
///
/// Cache-line index bit layout (low → high):
/// `[column_low (mop run)] [bank group] [bank] [rank] [column_high] [row]`.
/// A run of `mop_run` consecutive lines shares the row (open-page locality),
/// while the next bits spread accesses across bank groups/banks/ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MopMapping {
    org: DramOrganization,
    mop_run: u32,
}

impl MopMapping {
    /// Creates the mapping with the default run length of 4 cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        let mop_run = 4.min(org.columns_per_row);
        Self { org, mop_run }
    }

    fn widths(&self) -> [u32; 6] {
        let col_low = log2(self.mop_run);
        let col_high = log2(self.org.columns_per_row) - col_low;
        [
            col_low,
            log2(self.org.bank_groups),
            log2(self.org.banks_per_group),
            log2(self.org.ranks),
            col_high,
            log2(self.org.rows_per_bank),
        ]
    }
}

impl AddressMapping for MopMapping {
    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = (physical_address / u64::from(self.org.column_bytes))
            % (self.org.capacity_bytes() / u64::from(self.org.column_bytes));
        let widths = self.widths();
        let f = extract_fields(line, &widths);
        let column = f[0] | (f[4] << log2(self.mop_run));
        DramAddress {
            rank: f[3],
            bank_group: f[1],
            bank: f[2],
            row: f[5],
            column,
        }
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let widths = self.widths();
        let col_low_bits = log2(self.mop_run);
        let col_low = address.column & (self.mop_run - 1);
        let col_high = address.column >> col_low_bits;
        let fields = [
            col_low,
            address.bank_group,
            address.bank,
            address.rank,
            col_high,
            address.row,
        ];
        pack_fields(&fields, &widths) * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

/// Bank-striped mapping: consecutive cache lines rotate across bank groups,
/// banks and ranks before advancing the column.
///
/// Under this mapping a 4 KB page (64 cache lines) spreads over up to 64
/// banks while each DRAM row holds cache lines belonging to many distinct
/// pages — the exact condition the paper exploits for row sharing between
/// victim and attacker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStripedMapping {
    org: DramOrganization,
}

impl BankStripedMapping {
    /// Creates the mapping.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        Self { org }
    }

    fn widths(&self) -> [u32; 5] {
        [
            log2(self.org.bank_groups),
            log2(self.org.banks_per_group),
            log2(self.org.ranks),
            log2(self.org.columns_per_row),
            log2(self.org.rows_per_bank),
        ]
    }
}

impl AddressMapping for BankStripedMapping {
    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = (physical_address / u64::from(self.org.column_bytes))
            % (self.org.capacity_bytes() / u64::from(self.org.column_bytes));
        let f = extract_fields(line, &self.widths());
        DramAddress {
            bank_group: f[0],
            bank: f[1],
            rank: f[2],
            column: f[3],
            row: f[4],
        }
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let fields = [
            address.bank_group,
            address.bank,
            address.rank,
            address.column,
            address.row,
        ];
        pack_fields(&fields, &self.widths()) * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

/// Simple row:rank:bank-group:bank:column layout (highest bits select the
/// row). Used as a test baseline; exhibits poor bank parallelism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowInterleavedMapping {
    org: DramOrganization,
}

impl RowInterleavedMapping {
    /// Creates the mapping.
    ///
    /// # Panics
    ///
    /// Panics if the organisation is not power-of-two sized.
    #[must_use]
    pub fn new(org: DramOrganization) -> Self {
        assert!(org.is_valid(), "organisation must be power-of-two sized");
        Self { org }
    }

    fn widths(&self) -> [u32; 5] {
        [
            log2(self.org.columns_per_row),
            log2(self.org.banks_per_group),
            log2(self.org.bank_groups),
            log2(self.org.ranks),
            log2(self.org.rows_per_bank),
        ]
    }
}

impl AddressMapping for RowInterleavedMapping {
    fn decode(&self, physical_address: u64) -> DramAddress {
        let line = (physical_address / u64::from(self.org.column_bytes))
            % (self.org.capacity_bytes() / u64::from(self.org.column_bytes));
        let f = extract_fields(line, &self.widths());
        DramAddress {
            column: f[0],
            bank: f[1],
            bank_group: f[2],
            rank: f[3],
            row: f[4],
        }
    }

    fn encode(&self, address: &DramAddress) -> u64 {
        let fields = [
            address.column,
            address.bank,
            address.bank_group,
            address.rank,
            address.row,
        ];
        pack_fields(&fields, &self.widths()) * u64::from(self.org.column_bytes)
    }

    fn organization(&self) -> &DramOrganization {
        &self.org
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> DramOrganization {
        DramOrganization::ddr5_32gb_quad_rank()
    }

    #[test]
    fn mop_keeps_short_runs_in_one_row() {
        let m = MopMapping::new(org());
        let base = 0x4000_0000u64;
        let first = m.decode(base);
        for i in 1..4u64 {
            let next = m.decode(base + i * 64);
            assert!(first.same_row(&next), "line {i} left the row under MOP");
        }
        // The 5th line moves to another bank group (run length 4).
        let fifth = m.decode(base + 4 * 64);
        assert!(!first.same_bank(&fifth));
    }

    #[test]
    fn bank_striped_spreads_consecutive_lines_across_banks() {
        let m = BankStripedMapping::new(org());
        let base = 0x1234_5000u64 & !63;
        let a = m.decode(base);
        let b = m.decode(base + 64);
        assert!(
            !a.same_bank(&b),
            "consecutive lines must land in different banks"
        );
    }

    #[test]
    fn bank_striped_rows_hold_many_pages() {
        // Two addresses 2 MB apart (different 4 KB pages) can share a row:
        // find the encode of the same (bank, row) with different columns.
        let m = BankStripedMapping::new(org());
        let row_addr = DramAddress {
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 42,
            column: 0,
        };
        let other_col = DramAddress {
            column: 17,
            ..row_addr
        };
        let pa0 = m.encode(&row_addr);
        let pa1 = m.encode(&other_col);
        // Different 4 KB pages...
        assert_ne!(pa0 >> 12, pa1 >> 12);
        // ...but the same DRAM row.
        assert!(m.decode(pa0).same_row(&m.decode(pa1)));
    }

    #[test]
    fn mop_round_trips() {
        let m = MopMapping::new(org());
        for pa in [
            0u64,
            64,
            4096,
            1 << 20,
            (1 << 30) + 64 * 7,
            (1 << 36) + 4096 * 3,
        ] {
            let decoded = m.decode(pa);
            assert_eq!(m.encode(&decoded), pa, "MOP round trip failed for {pa:#x}");
        }
    }

    #[test]
    fn all_mappings_decode_within_bounds() {
        let o = org();
        for kind in [
            MappingKind::Mop,
            MappingKind::BankStriped,
            MappingKind::RowInterleaved,
        ] {
            let m = kind.instantiate(o);
            for pa in [0u64, 64, 1 << 21, (1 << 33) + 128, o.capacity_bytes() - 64] {
                let d = m.decode(pa);
                assert!(d.rank < o.ranks);
                assert!(d.bank_group < o.bank_groups);
                assert!(d.bank < o.banks_per_group);
                assert!(d.row < o.rows_per_bank);
                assert!(d.column < o.columns_per_row);
            }
        }
    }

    #[test]
    fn row_interleaved_keeps_whole_row_contiguous() {
        let m = RowInterleavedMapping::new(org());
        let base = 0u64;
        let first = m.decode(base);
        for i in 1..u64::from(org().columns_per_row) {
            let next = m.decode(base + i * 64);
            assert!(first.same_row(&next));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn invalid_organisation_is_rejected() {
        let mut o = DramOrganization::tiny_for_tests();
        o.columns_per_row = 3;
        let _ = MopMapping::new(o);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn org() -> DramOrganization {
        DramOrganization::ddr5_32gb_quad_rank()
    }

    proptest! {
        #[test]
        fn mop_bijective(line in 0u64..(1u64 << 31)) {
            let m = MopMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        #[test]
        fn bank_striped_bijective(line in 0u64..(1u64 << 31)) {
            let m = BankStripedMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        #[test]
        fn row_interleaved_bijective(line in 0u64..(1u64 << 31)) {
            let m = RowInterleavedMapping::new(org());
            let pa = line * 64;
            let decoded = m.decode(pa);
            prop_assert_eq!(m.encode(&decoded), pa);
        }

        /// Distinct physical lines decode to distinct DRAM coordinates.
        #[test]
        fn decode_is_injective(a in 0u64..(1u64 << 28), b in 0u64..(1u64 << 28)) {
            prop_assume!(a != b);
            let m = MopMapping::new(org());
            prop_assert_ne!(m.decode(a * 64), m.decode(b * 64));
        }
    }
}
