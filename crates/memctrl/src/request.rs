//! Memory requests and their completion records.

use serde::{Deserialize, Serialize};

/// Whether a request reads or writes its cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Demand read (load miss or fetch).
    Read,
    /// Writeback / store.
    Write,
}

/// A request presented to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Caller-assigned identifier, echoed back on completion.
    pub id: u64,
    /// Physical address of the cache line.
    pub physical_address: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Core (or agent) that produced the request.
    pub core: u32,
    /// Tick at which the request arrived at the controller.
    pub arrival_tick: u64,
}

impl MemoryRequest {
    /// Convenience constructor for a read request.
    #[must_use]
    pub fn read(id: u64, physical_address: u64, core: u32, arrival_tick: u64) -> Self {
        Self {
            id,
            physical_address,
            kind: RequestKind::Read,
            core,
            arrival_tick,
        }
    }

    /// Convenience constructor for a write request.
    #[must_use]
    pub fn write(id: u64, physical_address: u64, core: u32, arrival_tick: u64) -> Self {
        Self {
            id,
            physical_address,
            kind: RequestKind::Write,
            core,
            arrival_tick,
        }
    }
}

/// Completion record returned by the controller when a request finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// Identifier of the completed request.
    pub id: u64,
    /// Core that issued it.
    pub core: u32,
    /// Read or write.
    pub kind: RequestKind,
    /// Arrival tick at the controller.
    pub arrival_tick: u64,
    /// Tick at which data returned (read) or the write was accepted.
    pub completion_tick: u64,
}

impl CompletedRequest {
    /// End-to-end controller latency in ticks.
    #[must_use]
    pub fn latency_ticks(&self) -> u64 {
        self.completion_tick.saturating_sub(self.arrival_tick)
    }

    /// End-to-end latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.latency_ticks() as f64 * 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemoryRequest::read(1, 0x1000, 0, 5);
        assert_eq!(r.kind, RequestKind::Read);
        let w = MemoryRequest::write(2, 0x2000, 1, 6);
        assert_eq!(w.kind, RequestKind::Write);
        assert_eq!(w.core, 1);
    }

    #[test]
    fn latency_is_completion_minus_arrival() {
        let c = CompletedRequest {
            id: 1,
            core: 0,
            kind: RequestKind::Read,
            arrival_tick: 100,
            completion_tick: 500,
        };
        assert_eq!(c.latency_ticks(), 400);
        assert!((c.latency_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_saturates_on_inverted_times() {
        let c = CompletedRequest {
            id: 1,
            core: 0,
            kind: RequestKind::Read,
            arrival_tick: 500,
            completion_tick: 100,
        };
        assert_eq!(c.latency_ticks(), 0);
    }
}
