//! First-Ready First-Come-First-Served (FR-FCFS) scheduling with a cap on
//! consecutive row-buffer hits.
//!
//! FR-FCFS prioritises requests whose target row is already open (row-buffer
//! hits) because they can be serviced with a single column command; among
//! equally-ready requests the oldest wins.  Uncapped FR-FCFS can starve
//! row-miss requests, so — following the paper's configuration ("FR-FCFS with
//! a cap of 4") — after `cap` consecutive hits to the same bank the scheduler
//! falls back to the oldest request.

use dram_sim::org::DramAddress;
use serde::{Deserialize, Serialize};

/// A candidate visible to the scheduler: its queue slot, decoded address and
/// whether the target row is currently open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerCandidate {
    /// Index of the request in the controller's pending queue.
    pub queue_index: usize,
    /// Decoded DRAM coordinate of the request.
    pub address: DramAddress,
    /// Whether the bank currently has this row open (row-buffer hit).
    pub row_hit: bool,
    /// Arrival tick (for FCFS ordering).
    pub arrival_tick: u64,
}

/// FR-FCFS scheduler state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrFcfsScheduler {
    cap: u32,
    consecutive_hits: u32,
    last_hit_bank: Option<u32>,
}

impl FrFcfsScheduler {
    /// Creates a scheduler with the given row-hit cap (0 disables capping).
    #[must_use]
    pub fn new(cap: u32) -> Self {
        Self {
            cap,
            consecutive_hits: 0,
            last_hit_bank: None,
        }
    }

    /// The paper's configuration: FR-FCFS with a cap of 4.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(4)
    }

    /// Chooses the next request to service from `candidates`, without
    /// touching the hit-streak state.  Returns `None` when there are no
    /// candidates.
    ///
    /// The choice is a pure function of the candidate list and the current
    /// streak: the controller may call this speculatively every cycle (or ask
    /// "what would be scheduled next?" when computing its next wake-up event)
    /// and must call [`FrFcfsScheduler::note_scheduled`] only once a command
    /// for the chosen request was actually accepted by the device.
    #[must_use]
    pub fn choose<'c>(
        &self,
        candidates: &'c [SchedulerCandidate],
    ) -> Option<&'c SchedulerCandidate> {
        let chosen = self.choose_from(candidates.iter().copied())?;
        candidates
            .iter()
            .find(|c| c.queue_index == chosen.queue_index)
    }

    /// [`FrFcfsScheduler::choose`] over a streamed candidate sequence.
    ///
    /// One pass, no intermediate list: the controller's hot path feeds its
    /// pending queue through a mapping iterator instead of collecting a
    /// `Vec<SchedulerCandidate>` on every poll.  Tracks the oldest candidate
    /// and the oldest row hit simultaneously; ties are impossible because
    /// `queue_index` is unique, and strict `<` on `(arrival_tick,
    /// queue_index)` keeps the first-minimum semantics of the slice path.
    #[must_use]
    pub fn choose_from<I>(&self, candidates: I) -> Option<SchedulerCandidate>
    where
        I: IntoIterator<Item = SchedulerCandidate>,
    {
        let mut oldest: Option<SchedulerCandidate> = None;
        let mut oldest_hit: Option<SchedulerCandidate> = None;
        for c in candidates {
            let key = (c.arrival_tick, c.queue_index);
            if oldest.is_none_or(|b| key < (b.arrival_tick, b.queue_index)) {
                oldest = Some(c);
            }
            if c.row_hit && oldest_hit.is_none_or(|b| key < (b.arrival_tick, b.queue_index)) {
                oldest_hit = Some(c);
            }
        }
        let oldest = oldest?;
        let oldest_hit_allowed = self.cap == 0 || self.consecutive_hits < self.cap;
        Some(if oldest_hit_allowed {
            // Prefer the oldest row hit, else the oldest request overall.
            oldest_hit.unwrap_or(oldest)
        } else {
            // Cap reached: force the oldest request regardless of hit status.
            oldest
        })
    }

    /// Records that a command for the chosen candidate was accepted by the
    /// device, updating the consecutive-hit streak.  The streak counts
    /// *serviced* scheduling decisions, so attempts rejected by DRAM timing
    /// must not be reported here.
    pub fn note_scheduled(&mut self, bank: u32, row_hit: bool) {
        if row_hit && self.last_hit_bank == Some(bank) {
            self.consecutive_hits += 1;
        } else if row_hit {
            self.consecutive_hits = 1;
            self.last_hit_bank = Some(bank);
        } else {
            self.consecutive_hits = 0;
            self.last_hit_bank = None;
        }
    }

    /// Number of consecutive row hits scheduled to the same bank so far.
    #[must_use]
    pub fn consecutive_hits(&self) -> u32 {
        self.consecutive_hits
    }
}

impl Default for FrFcfsScheduler {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::org::DramOrganization;

    fn candidate(
        queue_index: usize,
        bank: u32,
        row: u32,
        row_hit: bool,
        arrival: u64,
    ) -> SchedulerCandidate {
        let org = DramOrganization::tiny_for_tests();
        SchedulerCandidate {
            queue_index,
            address: DramAddress::new(&org, 0, bank % org.bank_groups, 0, row, 0),
            row_hit,
            arrival_tick: arrival,
        }
    }

    fn flat(addr: &DramAddress) -> u32 {
        DramOrganization::tiny_for_tests().flat_bank_index(addr.rank, addr.bank_group, addr.bank)
    }

    /// Chooses and commits, the way the controller does when the device
    /// accepts the command for the chosen candidate.
    fn choose_and_commit(
        s: &mut FrFcfsScheduler,
        candidates: &[SchedulerCandidate],
    ) -> Option<usize> {
        let chosen = *s.choose(candidates)?;
        s.note_scheduled(flat(&chosen.address), chosen.row_hit);
        Some(chosen.queue_index)
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut s = FrFcfsScheduler::paper_default();
        assert_eq!(choose_and_commit(&mut s, &[]), None);
    }

    #[test]
    fn row_hits_win_over_older_misses() {
        let mut s = FrFcfsScheduler::paper_default();
        let c = vec![candidate(0, 0, 1, false, 10), candidate(1, 1, 2, true, 20)];
        assert_eq!(choose_and_commit(&mut s, &c), Some(1));
    }

    #[test]
    fn oldest_wins_among_misses() {
        let mut s = FrFcfsScheduler::paper_default();
        let c = vec![candidate(0, 0, 1, false, 30), candidate(1, 1, 2, false, 10)];
        assert_eq!(choose_and_commit(&mut s, &c), Some(1));
    }

    #[test]
    fn oldest_wins_among_hits() {
        let mut s = FrFcfsScheduler::paper_default();
        let c = vec![candidate(0, 0, 1, true, 30), candidate(1, 0, 1, true, 10)];
        assert_eq!(choose_and_commit(&mut s, &c), Some(1));
    }

    #[test]
    fn cap_forces_oldest_after_four_hits() {
        let mut s = FrFcfsScheduler::new(4);
        let hits = vec![candidate(0, 0, 1, true, 100)];
        for _ in 0..4 {
            assert_eq!(choose_and_commit(&mut s, &hits), Some(0));
        }
        assert_eq!(s.consecutive_hits(), 4);
        // Now an older miss must win even though a hit exists.
        let mixed = vec![candidate(0, 0, 1, true, 100), candidate(1, 1, 2, false, 50)];
        assert_eq!(choose_and_commit(&mut s, &mixed), Some(1));
        // Counter resets after servicing a miss.
        assert_eq!(s.consecutive_hits(), 0);
    }

    #[test]
    fn cap_zero_never_forces_misses() {
        let mut s = FrFcfsScheduler::new(0);
        let mixed = vec![candidate(0, 0, 1, true, 100), candidate(1, 1, 2, false, 50)];
        for _ in 0..16 {
            assert_eq!(choose_and_commit(&mut s, &mixed), Some(0));
        }
    }

    #[test]
    fn choose_is_pure_and_note_commits_the_streak() {
        let mut s = FrFcfsScheduler::new(4);
        let hits = vec![candidate(0, 0, 1, true, 100)];
        // Choosing repeatedly (e.g. on cycles where the command is rejected
        // by DRAM timing) must not advance the streak.
        for _ in 0..10 {
            assert_eq!(s.choose(&hits).map(|c| c.queue_index), Some(0));
        }
        assert_eq!(s.consecutive_hits(), 0);
        // Only the committed decisions count toward the cap.
        for serviced in 1..=4 {
            assert_eq!(s.choose(&hits).map(|c| c.queue_index), Some(0));
            s.note_scheduled(flat(&hits[0].address), true);
            assert_eq!(s.consecutive_hits(), serviced);
        }
        let mixed = vec![candidate(0, 0, 1, true, 100), candidate(1, 1, 2, false, 50)];
        assert_eq!(
            s.choose(&mixed).map(|c| c.queue_index),
            Some(1),
            "cap forces the oldest"
        );
    }

    #[test]
    fn choose_from_matches_the_slice_path() {
        // The streamed single-pass scan must agree with the reference slice
        // implementation for every streak state, including ties on
        // arrival_tick (broken by queue_index) and hitless lists.
        let lists: Vec<Vec<SchedulerCandidate>> = vec![
            vec![],
            vec![candidate(0, 0, 1, false, 30), candidate(1, 1, 2, false, 10)],
            vec![
                candidate(0, 0, 1, true, 20),
                candidate(1, 1, 2, true, 20),
                candidate(2, 0, 3, false, 5),
            ],
            vec![
                candidate(3, 1, 1, false, 7),
                candidate(1, 0, 2, true, 7),
                candidate(2, 1, 3, true, 7),
                candidate(0, 0, 4, false, 9),
            ],
        ];
        for hits_so_far in [0, 3, 4, 5] {
            let mut s = FrFcfsScheduler::new(4);
            for _ in 0..hits_so_far {
                s.note_scheduled(0, true);
            }
            for list in &lists {
                assert_eq!(
                    s.choose_from(list.iter().copied()).map(|c| c.queue_index),
                    s.choose(list).map(|c| c.queue_index),
                    "streak {hits_so_far}, list {list:?}"
                );
            }
        }
    }

    #[test]
    fn hit_streak_tracks_bank_changes() {
        let mut s = FrFcfsScheduler::new(4);
        let bank_a = vec![candidate(0, 0, 1, true, 1)];
        let bank_b = vec![candidate(0, 1, 1, true, 1)];
        let _ = choose_and_commit(&mut s, &bank_a);
        let _ = choose_and_commit(&mut s, &bank_a);
        assert_eq!(s.consecutive_hits(), 2);
        // Switching banks restarts the streak.
        let _ = choose_and_commit(&mut s, &bank_b);
        assert_eq!(s.consecutive_hits(), 1);
    }
}
