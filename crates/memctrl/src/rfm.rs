//! RFM plumbing shared by every mitigation policy.
//!
//! * [`AboResponder`] — reacts to the DRAM's Alert signal: after allowing up
//!   to `ABOACT` further activations (bounded by tABOACT), it issues the PRAC
//!   level's worth of RFMab commands (1, 2 or 4).  These are the activity-
//!   dependent **ABO-RFMs** PRACLeak exploits.  The responder is controller
//!   infrastructure (the JEDEC protocol applies under every policy that
//!   keeps ABO armed), which is why it lives here rather than behind the
//!   [`prac_core::mitigation::MitigationEngine`] trait.
//! * Proactive RFMs (**ACB-RFMs**, TPRAC's **TB-RFMs**, periodic **PRFM**
//!   and probabilistic **PARA** RFMs) are requested by the controller's
//!   pluggable [`prac_core::mitigation::MitigationEngine`].
//! * [`RfmKind`] labels every issued RFM so the statistics can distinguish
//!   the sources (and the attacks can check which kind they observed).

use prac_core::config::PracConfig;
use prac_core::mitigation::ProactiveRfmKind;
use serde::{Deserialize, Serialize};

/// Why an RFM All-Bank command was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RfmKind {
    /// Triggered by the Alert Back-Off protocol (activity dependent).
    AboRfm,
    /// Proactive Activation-Based RFM triggered by the Bank-Activation
    /// threshold (activity dependent).
    AcbRfm,
    /// TPRAC Timing-Based RFM (activity independent).
    TbRfm,
    /// Periodic RFM on a fixed tREFI cadence (activity independent).
    PeriodicRfm,
    /// PARA-style probabilistic per-activation RFM (activity dependent).
    ParaRfm,
    /// Randomly injected RFM from the obfuscation defense.
    InjectedRfm,
}

impl RfmKind {
    /// `true` for RFMs whose timing depends on memory activity (the
    /// exploitable ones).
    #[must_use]
    pub fn is_activity_dependent(self) -> bool {
        matches!(self, RfmKind::AboRfm | RfmKind::AcbRfm | RfmKind::ParaRfm)
    }
}

impl From<ProactiveRfmKind> for RfmKind {
    fn from(kind: ProactiveRfmKind) -> Self {
        match kind {
            ProactiveRfmKind::ActivationBased => RfmKind::AcbRfm,
            ProactiveRfmKind::TimingBased => RfmKind::TbRfm,
            ProactiveRfmKind::Periodic => RfmKind::PeriodicRfm,
            ProactiveRfmKind::Probabilistic => RfmKind::ParaRfm,
        }
    }
}

/// State machine responding to the DRAM's Alert signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AboResponder {
    /// RFMs issued per Alert (the PRAC level).
    rfms_per_alert: u32,
    /// Delay between observing Alert and the first RFM (tABOACT budget).
    response_delay_ticks: u64,
    /// RFMab commands still owed for the current Alert.
    pending_rfms: u32,
    /// Tick at which the next owed RFM may be issued.
    next_rfm_at: u64,
    /// Total ABO events handled.
    alerts_handled: u64,
}

impl AboResponder {
    /// Creates a responder from the PRAC configuration and the tABOACT bound
    /// (in ticks).
    #[must_use]
    pub fn new(prac: &PracConfig, t_abo_act_ticks: u64) -> Self {
        Self {
            rfms_per_alert: prac.rfms_per_alert(),
            response_delay_ticks: t_abo_act_ticks,
            pending_rfms: 0,
            next_rfm_at: 0,
            alerts_handled: 0,
        }
    }

    /// Notifies the responder that the Alert signal is asserted at `now`.
    /// Has no effect if a response is already in flight.
    pub fn on_alert(&mut self, now: u64) {
        if self.pending_rfms == 0 {
            self.pending_rfms = self.rfms_per_alert;
            self.next_rfm_at = now + self.response_delay_ticks;
            self.alerts_handled += 1;
        }
    }

    /// Returns `true` when an RFM should be issued at `now`; the caller must
    /// then call [`AboResponder::rfm_issued`] with the tick at which the next
    /// RFM becomes possible (end of the current RFM's blocking period).
    #[must_use]
    pub fn wants_rfm(&self, now: u64) -> bool {
        self.pending_rfms > 0 && now >= self.next_rfm_at
    }

    /// Records that one of the owed RFMs was issued; `next_possible` is the
    /// earliest tick a subsequent RFM may start (typically the end of the
    /// current blocking period).
    pub fn rfm_issued(&mut self, next_possible: u64) {
        debug_assert!(self.pending_rfms > 0);
        self.pending_rfms -= 1;
        self.next_rfm_at = next_possible;
    }

    /// RFMs still owed for the current Alert.
    #[must_use]
    pub fn pending(&self) -> u32 {
        self.pending_rfms
    }

    /// Earliest tick at which the next owed RFM may be issued (meaningful
    /// only while [`AboResponder::pending`] is non-zero).  Used by the
    /// event-driven engine to schedule the responder's next wake-up.
    #[must_use]
    pub fn next_rfm_at(&self) -> u64 {
        self.next_rfm_at
    }

    /// Number of distinct Alert events responded to.
    #[must_use]
    pub fn alerts_handled(&self) -> u64 {
        self.alerts_handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::config::{PracConfig, PracLevel};

    #[test]
    fn rfm_kind_activity_dependence() {
        assert!(RfmKind::AboRfm.is_activity_dependent());
        assert!(RfmKind::AcbRfm.is_activity_dependent());
        assert!(RfmKind::ParaRfm.is_activity_dependent());
        assert!(!RfmKind::TbRfm.is_activity_dependent());
        assert!(!RfmKind::PeriodicRfm.is_activity_dependent());
        assert!(!RfmKind::InjectedRfm.is_activity_dependent());
    }

    #[test]
    fn proactive_kinds_map_onto_rfm_kinds() {
        assert_eq!(
            RfmKind::from(ProactiveRfmKind::ActivationBased),
            RfmKind::AcbRfm
        );
        assert_eq!(RfmKind::from(ProactiveRfmKind::TimingBased), RfmKind::TbRfm);
        assert_eq!(
            RfmKind::from(ProactiveRfmKind::Periodic),
            RfmKind::PeriodicRfm
        );
        assert_eq!(
            RfmKind::from(ProactiveRfmKind::Probabilistic),
            RfmKind::ParaRfm
        );
    }

    #[test]
    fn abo_responder_owes_prac_level_rfms() {
        for (level, expected) in [
            (PracLevel::One, 1),
            (PracLevel::Two, 2),
            (PracLevel::Four, 4),
        ] {
            let prac = PracConfig::builder().prac_level(level).build();
            let mut r = AboResponder::new(&prac, 720);
            r.on_alert(1000);
            assert_eq!(r.pending(), expected);
            assert_eq!(r.alerts_handled(), 1);
        }
    }

    #[test]
    fn abo_responder_waits_for_taboact() {
        let prac = PracConfig::paper_default();
        let mut r = AboResponder::new(&prac, 720);
        r.on_alert(1000);
        assert!(!r.wants_rfm(1000));
        assert!(!r.wants_rfm(1719));
        assert!(r.wants_rfm(1720));
    }

    #[test]
    fn abo_responder_spaces_multiple_rfms() {
        let prac = PracConfig::builder().prac_level(PracLevel::Two).build();
        let mut r = AboResponder::new(&prac, 0);
        r.on_alert(0);
        assert!(r.wants_rfm(0));
        r.rfm_issued(1400); // first RFM blocks until tick 1400
        assert!(!r.wants_rfm(100));
        assert!(r.wants_rfm(1400));
        r.rfm_issued(2800);
        assert_eq!(r.pending(), 0);
        assert!(!r.wants_rfm(10_000));
    }

    #[test]
    fn abo_responder_ignores_realert_while_pending() {
        let prac = PracConfig::builder().prac_level(PracLevel::Four).build();
        let mut r = AboResponder::new(&prac, 0);
        r.on_alert(0);
        r.on_alert(10);
        assert_eq!(r.pending(), 4);
        assert_eq!(r.alerts_handled(), 1);
    }
}
