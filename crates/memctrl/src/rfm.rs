//! Refresh-Management (RFM) engines: the pieces of the controller that decide
//! *when* to issue RFM All-Bank commands, for every policy evaluated in the
//! paper.
//!
//! * [`AboResponder`] — reacts to the DRAM's Alert signal: after allowing up
//!   to `ABOACT` further activations (bounded by tABOACT), it issues the PRAC
//!   level's worth of RFMab commands (1, 2 or 4).  These are the activity-
//!   dependent **ABO-RFMs** PRACLeak exploits.
//! * [`AcbRfmEngine`] — issues a proactive **ACB-RFM** whenever any bank has
//!   accumulated `BAT` activations since its last RFM.  Still activity
//!   dependent, still leaky.
//! * TPRAC's **TB-RFMs** are produced by [`prac_core::tprac::TpracScheduler`]
//!   and wired in by the controller.
//! * [`RfmKind`] labels every issued RFM so the statistics can distinguish
//!   the sources (and the attacks can check which kind they observed).

use prac_core::config::PracConfig;
use serde::{Deserialize, Serialize};

/// Why an RFM All-Bank command was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RfmKind {
    /// Triggered by the Alert Back-Off protocol (activity dependent).
    AboRfm,
    /// Proactive Activation-Based RFM triggered by the Bank-Activation
    /// threshold (activity dependent).
    AcbRfm,
    /// TPRAC Timing-Based RFM (activity independent).
    TbRfm,
    /// Randomly injected RFM from the obfuscation defense.
    InjectedRfm,
}

impl RfmKind {
    /// `true` for RFMs whose timing depends on memory activity (the
    /// exploitable ones).
    #[must_use]
    pub fn is_activity_dependent(self) -> bool {
        matches!(self, RfmKind::AboRfm | RfmKind::AcbRfm)
    }
}

/// State machine responding to the DRAM's Alert signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AboResponder {
    /// RFMs issued per Alert (the PRAC level).
    rfms_per_alert: u32,
    /// Delay between observing Alert and the first RFM (tABOACT budget).
    response_delay_ticks: u64,
    /// RFMab commands still owed for the current Alert.
    pending_rfms: u32,
    /// Tick at which the next owed RFM may be issued.
    next_rfm_at: u64,
    /// Total ABO events handled.
    alerts_handled: u64,
}

impl AboResponder {
    /// Creates a responder from the PRAC configuration and the tABOACT bound
    /// (in ticks).
    #[must_use]
    pub fn new(prac: &PracConfig, t_abo_act_ticks: u64) -> Self {
        Self {
            rfms_per_alert: prac.rfms_per_alert(),
            response_delay_ticks: t_abo_act_ticks,
            pending_rfms: 0,
            next_rfm_at: 0,
            alerts_handled: 0,
        }
    }

    /// Notifies the responder that the Alert signal is asserted at `now`.
    /// Has no effect if a response is already in flight.
    pub fn on_alert(&mut self, now: u64) {
        if self.pending_rfms == 0 {
            self.pending_rfms = self.rfms_per_alert;
            self.next_rfm_at = now + self.response_delay_ticks;
            self.alerts_handled += 1;
        }
    }

    /// Returns `true` when an RFM should be issued at `now`; the caller must
    /// then call [`AboResponder::rfm_issued`] with the tick at which the next
    /// RFM becomes possible (end of the current RFM's blocking period).
    #[must_use]
    pub fn wants_rfm(&self, now: u64) -> bool {
        self.pending_rfms > 0 && now >= self.next_rfm_at
    }

    /// Records that one of the owed RFMs was issued; `next_possible` is the
    /// earliest tick a subsequent RFM may start (typically the end of the
    /// current blocking period).
    pub fn rfm_issued(&mut self, next_possible: u64) {
        debug_assert!(self.pending_rfms > 0);
        self.pending_rfms -= 1;
        self.next_rfm_at = next_possible;
    }

    /// RFMs still owed for the current Alert.
    #[must_use]
    pub fn pending(&self) -> u32 {
        self.pending_rfms
    }

    /// Earliest tick at which the next owed RFM may be issued (meaningful
    /// only while [`AboResponder::pending`] is non-zero).  Used by the
    /// event-driven engine to schedule the responder's next wake-up.
    #[must_use]
    pub fn next_rfm_at(&self) -> u64 {
        self.next_rfm_at
    }

    /// Number of distinct Alert events responded to.
    #[must_use]
    pub fn alerts_handled(&self) -> u64 {
        self.alerts_handled
    }
}

/// Proactive Activation-Based RFM engine (the JEDEC Targeted-RFM mechanism):
/// issues an RFM when any bank's activation count since its last RFM reaches
/// the Bank-Activation threshold (BAT).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcbRfmEngine {
    bank_activation_threshold: u32,
    rfms_requested: u64,
}

impl AcbRfmEngine {
    /// Creates the engine with the configured BAT.
    #[must_use]
    pub fn new(prac: &PracConfig) -> Self {
        Self {
            bank_activation_threshold: prac.bank_activation_threshold,
            rfms_requested: 0,
        }
    }

    /// Given the per-bank activation counts since each bank's last RFM,
    /// returns `true` when an ACB-RFM should be issued now.
    #[must_use]
    pub fn wants_rfm(&self, activations_since_rfm_per_bank: impl IntoIterator<Item = u32>) -> bool {
        activations_since_rfm_per_bank
            .into_iter()
            .any(|acts| acts >= self.bank_activation_threshold)
    }

    /// Records that an ACB-RFM was issued.
    pub fn rfm_issued(&mut self) {
        self.rfms_requested += 1;
    }

    /// Number of ACB-RFMs requested so far.
    #[must_use]
    pub fn rfms_requested(&self) -> u64 {
        self.rfms_requested
    }

    /// The configured Bank-Activation threshold.
    #[must_use]
    pub fn bank_activation_threshold(&self) -> u32 {
        self.bank_activation_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::config::{PracConfig, PracLevel};

    #[test]
    fn rfm_kind_activity_dependence() {
        assert!(RfmKind::AboRfm.is_activity_dependent());
        assert!(RfmKind::AcbRfm.is_activity_dependent());
        assert!(!RfmKind::TbRfm.is_activity_dependent());
        assert!(!RfmKind::InjectedRfm.is_activity_dependent());
    }

    #[test]
    fn abo_responder_owes_prac_level_rfms() {
        for (level, expected) in [
            (PracLevel::One, 1),
            (PracLevel::Two, 2),
            (PracLevel::Four, 4),
        ] {
            let prac = PracConfig::builder().prac_level(level).build();
            let mut r = AboResponder::new(&prac, 720);
            r.on_alert(1000);
            assert_eq!(r.pending(), expected);
            assert_eq!(r.alerts_handled(), 1);
        }
    }

    #[test]
    fn abo_responder_waits_for_taboact() {
        let prac = PracConfig::paper_default();
        let mut r = AboResponder::new(&prac, 720);
        r.on_alert(1000);
        assert!(!r.wants_rfm(1000));
        assert!(!r.wants_rfm(1719));
        assert!(r.wants_rfm(1720));
    }

    #[test]
    fn abo_responder_spaces_multiple_rfms() {
        let prac = PracConfig::builder().prac_level(PracLevel::Two).build();
        let mut r = AboResponder::new(&prac, 0);
        r.on_alert(0);
        assert!(r.wants_rfm(0));
        r.rfm_issued(1400); // first RFM blocks until tick 1400
        assert!(!r.wants_rfm(100));
        assert!(r.wants_rfm(1400));
        r.rfm_issued(2800);
        assert_eq!(r.pending(), 0);
        assert!(!r.wants_rfm(10_000));
    }

    #[test]
    fn abo_responder_ignores_realert_while_pending() {
        let prac = PracConfig::builder().prac_level(PracLevel::Four).build();
        let mut r = AboResponder::new(&prac, 0);
        r.on_alert(0);
        r.on_alert(10);
        assert_eq!(r.pending(), 4);
        assert_eq!(r.alerts_handled(), 1);
    }

    #[test]
    fn acb_engine_triggers_at_bat() {
        let prac = PracConfig::builder().bank_activation_threshold(16).build();
        let mut e = AcbRfmEngine::new(&prac);
        assert!(!e.wants_rfm([0, 5, 15]));
        assert!(e.wants_rfm([0, 16, 2]));
        e.rfm_issued();
        assert_eq!(e.rfms_requested(), 1);
        assert_eq!(e.bank_activation_threshold(), 16);
    }
}
