//! # memctrl
//!
//! A DDR5 memory controller model for PRAC-enabled DRAM.
//!
//! The controller implements the system side of the paper's evaluation stack:
//!
//! * **Address mapping** from physical addresses to DRAM coordinates,
//!   including the Minimalist Open-Page (MOP) mapping of Table 3 and a
//!   bank-striped mapping that places consecutive cache lines of a page in
//!   different banks (the property that lets two processes share a DRAM row,
//!   enabling the activation-count channel).  In multi-channel
//!   organisations every mapping also emits channel bits, with a selectable
//!   [`mapping::ChannelInterleave`] granularity (cache-line or row).
//! * **Scheduling**: First-Ready First-Come-First-Served (FR-FCFS) with a cap
//!   on consecutive row-buffer hits, plus open/closed page policies.
//! * **Refresh management**: periodic all-bank refresh every tREFI.
//! * **RFM management**: the Alert Back-Off responder (ABO-RFM) as shared
//!   controller infrastructure, the obfuscation defense's random RFM
//!   injection, and a pluggable [`prac_core::mitigation::MitigationEngine`]
//!   driving every proactive policy — ACB-RFMs, TPRAC's Timing-Based RFMs
//!   with Targeted-Refresh co-design, periodic PRFM, probabilistic PARA, or
//!   any engine injected via
//!   [`controller::MemoryController::with_mitigation_engine`].
//! * **Per-request latency recording**, the observable the PRACLeak attacks
//!   monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod mapping;
pub mod request;
pub mod rfm;
pub mod scheduler;
pub mod stats;

pub use controller::{ControllerConfig, MemoryController, PagePolicy};
pub use mapping::{
    AddressMapping, BankStripedMapping, ChannelInterleave, MappingKind, MopMapping, RankInterleave,
    RowInterleavedMapping,
};
pub use request::{CompletedRequest, MemoryRequest, RequestKind};
pub use rfm::RfmKind;
pub use scheduler::FrFcfsScheduler;
pub use stats::ControllerStats;
