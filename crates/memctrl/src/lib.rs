//! # memctrl
//!
//! A DDR5 memory controller model for PRAC-enabled DRAM.
//!
//! The controller implements the system side of the paper's evaluation stack:
//!
//! * **Address mapping** from physical addresses to DRAM coordinates,
//!   including the Minimalist Open-Page (MOP) mapping of Table 3 and a
//!   bank-striped mapping that places consecutive cache lines of a page in
//!   different banks (the property that lets two processes share a DRAM row,
//!   enabling the activation-count channel).
//! * **Scheduling**: First-Ready First-Come-First-Served (FR-FCFS) with a cap
//!   on consecutive row-buffer hits, plus open/closed page policies.
//! * **Refresh management**: periodic all-bank refresh every tREFI.
//! * **RFM engines** for every mitigation policy evaluated by the paper:
//!   the Alert Back-Off responder (ABO-RFM), proactive Activation-Based RFMs
//!   driven by the Bank-Activation threshold (ACB-RFM), TPRAC's Timing-Based
//!   RFMs (TB-RFM) with Targeted-Refresh co-design, and the obfuscation
//!   defense's random RFM injection.
//! * **Per-request latency recording**, the observable the PRACLeak attacks
//!   monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod mapping;
pub mod request;
pub mod rfm;
pub mod scheduler;
pub mod stats;

pub use controller::{ControllerConfig, MemoryController, PagePolicy};
pub use mapping::{
    AddressMapping, BankStripedMapping, MappingKind, MopMapping, RowInterleavedMapping,
};
pub use request::{CompletedRequest, MemoryRequest, RequestKind};
pub use rfm::RfmKind;
pub use scheduler::FrFcfsScheduler;
pub use stats::ControllerStats;
