//! The memory controller proper: request queues, command generation, refresh
//! scheduling and the pluggable mitigation engine.

use dram_sim::command::{DramCommand, IssueError};
use dram_sim::device::{DramDevice, DramDeviceConfig};
use dram_sim::org::DramAddress;
use prac_core::config::MitigationPolicy;
use prac_core::mitigation::{BankActivationView, MitigationEngine};
use prac_core::obfuscation::{InjectionSequence, ObfuscationConfig};
use serde::{Deserialize, Serialize};

use crate::mapping::{AddressMapping, ChannelInterleave, MappingKind, RankInterleave};
use crate::request::{CompletedRequest, MemoryRequest, RequestKind};
use crate::rfm::{AboResponder, RfmKind};
use crate::scheduler::{FrFcfsScheduler, SchedulerCandidate};
use crate::stats::ControllerStats;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PagePolicy {
    /// Keep rows open after a column access (exploits locality).
    #[default]
    Open,
    /// Precharge immediately after the column access completes.
    Closed,
}

/// Static controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Physical→DRAM mapping policy.
    pub mapping: MappingKind,
    /// Which physical-address bits select the channel in multi-channel
    /// organisations (no effect with one channel).
    pub channel_interleave: ChannelInterleave,
    /// Where the rank bits sit within each channel's layout (no effect with
    /// one rank).
    pub rank_interleave: RankInterleave,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// FR-FCFS consecutive-row-hit cap (0 disables the cap).
    pub frfcfs_cap: u32,
    /// Maximum pending requests accepted before back-pressure.
    pub queue_capacity: usize,
    /// Whether periodic refresh is issued every tREFI.
    pub refresh_enabled: bool,
    /// Obfuscation defense: inject random RFMs with this configuration.
    pub obfuscation: Option<ObfuscationConfig>,
    /// Seed for the obfuscation injection sequence.
    pub obfuscation_seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            mapping: MappingKind::Mop,
            channel_interleave: ChannelInterleave::CacheLine,
            rank_interleave: RankInterleave::Interleaved,
            page_policy: PagePolicy::Open,
            frfcfs_cap: 4,
            queue_capacity: 64,
            refresh_enabled: true,
            obfuscation: None,
            obfuscation_seed: 0x5eed_5eed,
        }
    }
}

/// A request being tracked by the controller.
#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    request: MemoryRequest,
    address: DramAddress,
    /// Set once the column command has been issued; holds the completion tick.
    completion_tick: Option<u64>,
    /// The request needed an activation (row was closed when first serviced).
    needed_activate: bool,
    /// The request hit a row conflict (a different row was open).
    had_conflict: bool,
}

/// The memory controller: accepts [`MemoryRequest`]s, drives the
/// [`DramDevice`] one command per tick, and reports completions.
///
/// Proactive mitigation behaviour is delegated to a pluggable
/// [`MitigationEngine`], normally built from the device's
/// [`MitigationPolicy`]; [`MemoryController::with_mitigation_engine`] injects
/// an arbitrary engine instead.
#[derive(Debug, Clone)]
pub struct MemoryController {
    device: DramDevice,
    config: ControllerConfig,
    /// Which channel of the subsystem this controller drives (0 in
    /// single-channel systems).  Requests routed here must decode to it.
    channel_index: u32,
    mapping: Box<dyn AddressMapping>,
    scheduler: FrFcfsScheduler,
    pending: Vec<PendingRequest>,
    stats: ControllerStats,
    policy: MitigationPolicy,
    /// Next tick at which a periodic refresh is due.
    next_refresh: u64,
    /// Alert Back-Off responder: shared controller infrastructure, armed
    /// unless the mitigation engine opts out (the explicit no-mitigation
    /// baseline).  Under TPRAC it should never fire if the TB-Window is
    /// configured correctly.
    abo: AboResponder,
    /// The pluggable proactive-mitigation engine.
    mitigation: Box<dyn MitigationEngine>,
    /// Obfuscation injection sequence, evaluated once per tREFI.
    injection: Option<InjectionSequence>,
    /// Next tick at which the injection decision is made.
    next_injection_check: u64,
    /// History of issued RFMs as (tick, kind).  Recording stops after
    /// [`RFM_LOG_CAP`] entries (the *first* ~1 M RFMs are kept, later ones
    /// are dropped) to keep memory use flat on pathological runs.
    rfm_log: Vec<(u64, RfmKind)>,
}

/// Maximum number of RFM-log entries retained.
const RFM_LOG_CAP: usize = 1 << 20;

/// [`BankActivationView`] over the live device, handed to the mitigation
/// engine at every decision point.
struct DeviceView<'a> {
    device: &'a DramDevice,
}

impl BankActivationView for DeviceView<'_> {
    fn bank_count(&self) -> usize {
        self.device.bank_count() as usize
    }

    fn activations_since_rfm(&self, bank: usize) -> u32 {
        self.device
            .bank(u32::try_from(bank).expect("bank index fits u32"))
            .activations_since_rfm()
    }

    fn total_activations(&self) -> u64 {
        self.device.stats().activations
    }
}

impl MemoryController {
    /// Creates a controller in front of a freshly-initialised device, with
    /// the mitigation engine built from the device's [`MitigationPolicy`].
    #[must_use]
    pub fn new(device_config: DramDeviceConfig, config: ControllerConfig) -> Self {
        let engine = device_config
            .prac
            .policy
            .build_engine(&device_config.prac, device_config.timing.t_refi);
        Self::with_mitigation_engine(device_config, config, engine)
    }

    /// Creates a controller driving an explicitly supplied mitigation
    /// engine.  This is the extension point for defenses that have no
    /// [`MitigationPolicy`] variant: implement
    /// [`prac_core::mitigation::MitigationEngine`] and inject it here.  The
    /// device-side configuration (Back-Off threshold, counter reset, queue
    /// design) still comes from `device_config`.
    #[must_use]
    pub fn with_mitigation_engine(
        device_config: DramDeviceConfig,
        config: ControllerConfig,
        mitigation: Box<dyn MitigationEngine>,
    ) -> Self {
        let policy = device_config.prac.policy.clone();
        let timing = device_config.timing;
        let abo = AboResponder::new(&device_config.prac, timing.t_abo_act);
        let injection = config
            .obfuscation
            .map(|cfg| InjectionSequence::new(cfg, config.obfuscation_seed));
        let mapping = config.mapping.instantiate_full(
            device_config.organization,
            config.channel_interleave,
            config.rank_interleave,
        );
        let scheduler = FrFcfsScheduler::new(config.frfcfs_cap);
        let next_refresh = timing.t_refi;
        Self {
            device: DramDevice::new(device_config),
            channel_index: 0,
            mapping,
            scheduler,
            pending: Vec::with_capacity(config.queue_capacity),
            stats: ControllerStats::default(),
            policy,
            next_refresh,
            abo,
            mitigation,
            injection,
            next_injection_check: timing.t_refi,
            config,
            rfm_log: Vec::new(),
        }
    }

    /// Re-targets a forked controller at a different mitigation
    /// configuration (the checkpoint/fork divergence point).
    ///
    /// Rebuilds exactly the policy-dependent pieces
    /// [`MemoryController::with_mitigation_engine`] derives from the PRAC
    /// configuration — the mitigation engine, the ABO responder, the
    /// declarative policy and the device-side PRAC parameters — while
    /// leaving all accumulated state (queues, scheduler streaks, bank
    /// counters, statistics, the obfuscation sequence) untouched.  A fresh
    /// engine is correct at the fork point because every built-in engine
    /// derives its schedule from absolute deadlines anchored at tick 0 and
    /// the fork point lies before the target policy's first possible
    /// divergence (the campaign layer computes that horizon).
    pub fn refit_mitigation(
        &mut self,
        prac: prac_core::config::PracConfig,
        tref_every_n_refreshes: Option<u32>,
    ) {
        let timing = self.device.config().timing;
        self.mitigation = prac.policy.build_engine(&prac, timing.t_refi);
        self.abo = AboResponder::new(&prac, timing.t_abo_act);
        self.policy = prac.policy.clone();
        self.device.refit_prac(prac, tref_every_n_refreshes);
    }

    /// Assigns the channel of the subsystem this controller drives
    /// (builder-style; 0 by default).  Enqueued requests are
    /// `debug_assert`ed to decode to this channel.
    #[must_use]
    pub fn for_channel(mut self, channel_index: u32) -> Self {
        self.channel_index = channel_index;
        self
    }

    /// The channel of the subsystem this controller drives.
    #[must_use]
    pub fn channel_index(&self) -> u32 {
        self.channel_index
    }

    /// The controller configuration.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The underlying DRAM device (read-only).
    #[must_use]
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Accumulated controller statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The mitigation policy in force (the declarative description; the
    /// behaviour lives in [`MemoryController::mitigation_engine`]).
    #[must_use]
    pub fn policy(&self) -> &MitigationPolicy {
        &self.policy
    }

    /// The mitigation engine driving proactive RFMs.
    #[must_use]
    pub fn mitigation_engine(&self) -> &dyn MitigationEngine {
        self.mitigation.as_ref()
    }

    /// Chronological log of issued RFMs as `(tick, kind)` pairs.  Recording
    /// stops after the first ~1 M RFMs (`RFM_LOG_CAP`); later RFMs are
    /// counted in the statistics but not logged.
    #[must_use]
    pub fn rfm_log(&self) -> &[(u64, RfmKind)] {
        &self.rfm_log
    }

    /// Number of requests currently pending (queued or in flight).
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when the controller can accept another request.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.pending.len() < self.config.queue_capacity
    }

    /// Decodes a physical address with the controller's mapping
    /// (useful for attack code that needs to reason about row co-location).
    #[must_use]
    pub fn decode_address(&self, physical_address: u64) -> DramAddress {
        self.mapping.decode(physical_address)
    }

    /// Re-encodes DRAM coordinates into a physical address.
    #[must_use]
    pub fn encode_address(&self, address: &DramAddress) -> u64 {
        self.mapping.encode(address)
    }

    /// Enqueues a request.  Returns `false` (and drops the request) when the
    /// queue is full; callers that must not lose requests should check
    /// [`MemoryController::can_accept`] first.
    pub fn enqueue(&mut self, request: MemoryRequest) -> bool {
        if !self.can_accept() {
            return false;
        }
        let address = self.mapping.decode(request.physical_address);
        debug_assert_eq!(
            address.channel, self.channel_index,
            "request {:#x} routed to the wrong channel",
            request.physical_address
        );
        self.pending.push(PendingRequest {
            request,
            address,
            completion_tick: None,
            needed_activate: false,
            had_conflict: false,
        });
        true
    }

    fn record_rfm(&mut self, now: u64, kind: RfmKind) {
        self.stats.record_rfm(kind);
        if self.rfm_log.len() < RFM_LOG_CAP {
            self.rfm_log.push((now, kind));
        }
    }

    /// Issues an RFMab if the device accepts it, recording its kind.
    /// Returns the end of the blocking period on success.
    fn try_issue_rfm(&mut self, now: u64, kind: RfmKind) -> Option<u64> {
        match self.device.issue(DramCommand::RfmAllBank, now) {
            Ok(end) => {
                self.record_rfm(now, kind);
                Some(end)
            }
            Err(_) => None,
        }
    }

    /// Advances the controller by one tick.  At most one DRAM command is
    /// issued per tick.  Returns the requests that completed at this tick.
    pub fn tick(&mut self, now: u64) -> Vec<CompletedRequest> {
        let mut completed = Vec::new();
        self.tick_into(now, &mut completed);
        completed
    }

    /// [`MemoryController::tick`] with a caller-owned completion buffer:
    /// appends this tick's completions to `completed` instead of allocating
    /// a fresh `Vec` per poll.  This is the hot-loop entry point — the
    /// memory subsystem polls a controller at every one of its wake-ups, so
    /// the buffer lives across ticks at the call site.
    pub fn tick_into(&mut self, now: u64, completed: &mut Vec<CompletedRequest>) {
        self.collect_completions_into(now, completed);

        // 1. Periodic refresh has the highest priority once due.
        if self.config.refresh_enabled
            && now >= self.next_refresh
            && self.device.can_issue(&DramCommand::Refresh, now).is_ok()
        {
            let performs_tref = self.device.next_refresh_performs_tref();
            if self.device.issue(DramCommand::Refresh, now).is_ok() {
                self.stats.refreshes_issued += 1;
                self.next_refresh += self.device.config().timing.t_refi;
                self.mitigation.note_refresh(now);
                if performs_tref {
                    self.mitigation.note_targeted_refresh(now);
                }
                return;
            }
        }
        // Refresh due but channel blocked: fall through and retry next tick.

        // 2. Mitigation policies (RFM engines).
        if self.drive_rfm_engines(now) {
            return;
        }

        // 3. Demand scheduling.
        self.schedule_demand(now);

        self.collect_completions_into(now, completed);
    }

    /// Runs the ABO responder and the mitigation engine; returns `true` when
    /// an RFM was issued this tick (consuming the command slot).
    fn drive_rfm_engines(&mut self, now: u64) -> bool {
        // Alert Back-Off: shared infrastructure for every engine that keeps
        // it armed (under TPRAC it should never fire; if it does — e.g. a
        // deliberately misconfigured window — the response is identical,
        // which is what Figure 9(b) relies on).
        if self.mitigation.responds_to_alert() {
            if self.device.alert_asserted() {
                self.abo.on_alert(now);
            }
            if self.abo.wants_rfm(now) {
                if let Some(end) = self.try_issue_rfm(now, RfmKind::AboRfm) {
                    self.abo.rfm_issued(end);
                    return true;
                }
                return false;
            }
        }

        // Proactive mitigation: one engine decision per visited tick.
        let decision = self.mitigation.poll(
            now,
            &DeviceView {
                device: &self.device,
            },
        );
        self.stats.tb_rfms_skipped += u64::from(decision.skipped);
        if let Some(kind) = decision.issue {
            if let Some(end) = self.try_issue_rfm(now, RfmKind::from(kind)) {
                self.mitigation.rfm_issued(now, end);
                return true;
            }
            // Channel busy: the engine decides whether to defer or drop.
            self.mitigation.rfm_rejected(now);
            return false;
        }

        // Obfuscation: one injection decision per tREFI.
        if let Some(injection) = &mut self.injection {
            if now >= self.next_injection_check {
                self.next_injection_check += self.device.config().timing.t_refi;
                if injection.next_decision()
                    && self.try_issue_rfm(now, RfmKind::InjectedRfm).is_some()
                {
                    return true;
                }
            }
        }
        false
    }

    /// The command the FR-FCFS demand scheduler would attempt right now, as
    /// `(queue index, command)`.  Pure: both the per-tick scheduling path and
    /// the event engine's wake-up computation derive from this one function,
    /// which is what keeps the two engines cycle-exact.
    fn chosen_demand_command(&self) -> Option<(usize, DramCommand)> {
        if self.pending.is_empty() {
            return None;
        }
        let org = self.device.config().organization;
        // Stream the candidates straight out of the pending queue: this runs
        // on every scheduling poll *and* every wake-up computation, so it
        // must not allocate a candidate list per call.
        let candidates = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.completion_tick.is_none())
            .map(|(i, p)| {
                let bank = self.device.bank(p.address.flat_bank(&org));
                SchedulerCandidate {
                    queue_index: i,
                    address: p.address,
                    row_hit: bank.open_row() == Some(p.address.row),
                    arrival_tick: p.request.arrival_tick,
                }
            });
        let index = self.scheduler.choose_from(candidates)?.queue_index;
        let pending = &self.pending[index];
        let addr = pending.address;
        let cmd = match self.device.bank(addr.flat_bank(&org)).open_row() {
            Some(row) if row == addr.row => match pending.request.kind {
                RequestKind::Read => DramCommand::Read(addr),
                RequestKind::Write => DramCommand::Write(addr),
            },
            Some(_) => DramCommand::Precharge(addr),
            None => DramCommand::Activate(addr),
        };
        Some((index, cmd))
    }

    /// Picks a pending request with FR-FCFS and issues the next command it
    /// needs (PRE, ACT, or RD/WR).
    fn schedule_demand(&mut self, now: u64) {
        let Some((index, cmd)) = self.chosen_demand_command() else {
            return;
        };
        let org = self.device.config().organization;
        // The hit-streak update is committed only when the device accepts a
        // command: rejected attempts leave the scheduler (and therefore the
        // whole controller) untouched, so cycles in which nothing can issue
        // are pure no-ops the event-driven engine may skip.
        match cmd {
            DramCommand::Read(addr) | DramCommand::Write(addr) => {
                // Row open: issue the column command.
                match self.device.issue(cmd, now) {
                    Ok(done) => {
                        self.scheduler.note_scheduled(addr.flat_bank(&org), true);
                        let entry = &mut self.pending[index];
                        entry.completion_tick = Some(done);
                        // Classify the whole request by what it needed.
                        if entry.had_conflict {
                            self.stats.row_conflicts += 1;
                        } else if entry.needed_activate {
                            self.stats.row_misses += 1;
                        } else {
                            self.stats.row_hits += 1;
                        }
                        if self.config.page_policy == PagePolicy::Closed {
                            // Best effort immediate precharge; if it violates
                            // timing it will simply be retried by a later
                            // conflict/miss path.
                            let _ = self.device.issue(DramCommand::Precharge(addr), done);
                        }
                    }
                    Err(IssueError::TooEarly { .. }) => {}
                    Err(IssueError::IllegalState { .. }) => {
                        // The row was closed between candidate collection and
                        // issue (e.g. by a refresh); retry next tick.
                    }
                }
            }
            DramCommand::Precharge(addr) => {
                // Row conflict: precharge first.
                if self.device.issue(cmd, now).is_ok() {
                    self.scheduler.note_scheduled(addr.flat_bank(&org), false);
                    self.pending[index].had_conflict = true;
                }
            }
            DramCommand::Activate(addr) => {
                // Row closed: activate.
                if self.device.issue(cmd, now).is_ok() {
                    self.scheduler.note_scheduled(addr.flat_bank(&org), false);
                    self.pending[index].needed_activate = true;
                }
            }
            _ => unreachable!("demand scheduling only produces RD/WR/PRE/ACT"),
        }
    }

    /// Earliest tick strictly after `now` at which [`MemoryController::tick`]
    /// could do anything at all, or `None` when the controller is fully idle
    /// (no pending work and no timer armed).
    ///
    /// This is the controller's wake-up registration for the event-driven
    /// engine.  The contract mirrors `cpu_sim::core_model::Core::next_event_at`:
    /// the returned tick may be conservative (waking early is harmless
    /// because a tick in which nothing can happen mutates no state), but it
    /// must never be later than the first tick with an effect.  Every timer
    /// the per-tick path consults is covered:
    ///
    /// * in-flight request completions,
    /// * periodic refresh (gated by the channel-blocking window),
    /// * the ABO responder (a freshly asserted Alert, or an owed RFM),
    /// * the mitigation engine's own registration
    ///   ([`MitigationEngine::next_event_at`]: proactive-RFM eligibility,
    ///   timing deadlines, deferred-RFM retries),
    /// * the obfuscation injection check,
    /// * the next command the FR-FCFS demand scheduler would attempt.
    #[must_use]
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        fn earlier(wake: &mut Option<u64>, candidate: u64) {
            *wake = Some(wake.map_or(candidate, |w| w.min(candidate)));
        }
        let soonest = now + 1;
        let channel_ready = self.device.channel_ready_at();
        let mut wake: Option<u64> = None;

        for p in &self.pending {
            if let Some(done) = p.completion_tick {
                earlier(&mut wake, done.max(soonest));
            }
        }
        if self.config.refresh_enabled {
            earlier(&mut wake, self.next_refresh.max(channel_ready).max(soonest));
        }
        if self.mitigation.responds_to_alert() {
            if self.device.alert_asserted() && self.abo.pending() == 0 {
                // The responder has not seen this Alert yet; it reacts next
                // tick.
                earlier(&mut wake, soonest);
            }
            if self.abo.pending() > 0 {
                earlier(
                    &mut wake,
                    self.abo.next_rfm_at().max(channel_ready).max(soonest),
                );
            }
        }
        if let Some(engine_wake) = self.mitigation.next_event_at(
            now,
            &DeviceView {
                device: &self.device,
            },
            channel_ready,
        ) {
            earlier(&mut wake, engine_wake.max(soonest));
        }
        if self.injection.is_some() {
            earlier(&mut wake, self.next_injection_check.max(soonest));
        }
        // Deliberate recomputation: on a visited tick the demand choice was
        // already made once inside `tick()`.  Caching it across the two
        // calls would need invalidation on every mutation of the queue, the
        // banks and the streak — cheap to get subtly wrong, and the scan is
        // O(pending) with a 64-entry queue bound, so purity wins.
        if let Some((_, cmd)) = self.chosen_demand_command() {
            // When the attempted command is rejected for timing, the device
            // names the first violated constraint's release tick; waking
            // there re-runs the (pure) attempt against the next constraint,
            // so the walk terminates at the true issue tick.
            let demand_wake = match self.device.can_issue(&cmd, soonest) {
                Ok(()) => soonest,
                Err(IssueError::TooEarly { ready_at }) => ready_at.max(soonest),
                Err(IssueError::IllegalState { .. }) => soonest,
            };
            earlier(&mut wake, demand_wake);
        }
        wake
    }

    /// Removes requests whose completion tick has been reached, appending
    /// them to the caller-owned buffer.
    fn collect_completions_into(&mut self, now: u64, completed: &mut Vec<CompletedRequest>) {
        let mut i = 0;
        while i < self.pending.len() {
            if let Some(done) = self.pending[i].completion_tick {
                if done <= now {
                    let p = self.pending.swap_remove(i);
                    let record = CompletedRequest {
                        id: p.request.id,
                        core: p.request.core,
                        kind: p.request.kind,
                        arrival_tick: p.request.arrival_tick,
                        completion_tick: done,
                    };
                    match p.request.kind {
                        RequestKind::Read => self.stats.reads_completed += 1,
                        RequestKind::Write => self.stats.writes_completed += 1,
                    }
                    self.stats.record_latency(record.latency_ticks());
                    completed.push(record);
                    continue;
                }
            }
            i += 1;
        }
    }
}

impl MemoryController {
    /// Runs the controller until `deadline`, returning every completion in
    /// order.  Convenience wrapper used by tests and the attack drivers.
    pub fn run_until(&mut self, start: u64, deadline: u64) -> Vec<CompletedRequest> {
        let mut all = Vec::new();
        for now in start..deadline {
            all.extend(self.tick(now));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::device::DramDeviceConfig;
    use prac_core::config::PracConfig;
    use prac_core::timing::DramTimingSummary;
    use prac_core::tprac::TpracConfig;

    fn tiny_controller(policy: MitigationPolicy) -> MemoryController {
        let prac = PracConfig::builder()
            .rowhammer_threshold(16)
            .back_off_threshold(16)
            .policy(policy)
            .build();
        let mut device_config = DramDeviceConfig::tiny_for_tests(prac);
        device_config.queue_kind = prac_core::queue::QueueKind::SingleEntryFrequency;
        let config = ControllerConfig {
            mapping: MappingKind::RowInterleaved,
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        MemoryController::new(device_config, config)
    }

    fn physical_for(
        ctrl: &MemoryController,
        bank_group: u32,
        bank: u32,
        row: u32,
        col: u32,
    ) -> u64 {
        let org = ctrl.device().config().organization;
        ctrl.encode_address(&DramAddress::new(&org, 0, bank_group, bank, row, col))
    }

    #[test]
    fn single_read_completes_with_reasonable_latency() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let pa = physical_for(&ctrl, 0, 0, 3, 1);
        assert!(ctrl.enqueue(MemoryRequest::read(1, pa, 0, 0)));
        let completed = ctrl.run_until(0, 2_000);
        assert_eq!(completed.len(), 1);
        let c = completed[0];
        assert_eq!(c.id, 1);
        // ACT (tRCD 64) + RD (tCL+tBL 72) plus a couple of scheduling ticks.
        assert!(c.latency_ticks() >= 136);
        assert!(c.latency_ticks() < 400, "latency {}", c.latency_ticks());
        assert_eq!(ctrl.stats().reads_completed, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn second_access_to_open_row_is_a_hit() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let pa0 = physical_for(&ctrl, 0, 0, 3, 1);
        let pa1 = physical_for(&ctrl, 0, 0, 3, 2);
        ctrl.enqueue(MemoryRequest::read(1, pa0, 0, 0));
        let _ = ctrl.run_until(0, 2_000);
        ctrl.enqueue(MemoryRequest::read(2, pa1, 0, 2_000));
        let completed = ctrl.run_until(2_000, 3_000);
        assert_eq!(completed.len(), 1);
        assert_eq!(ctrl.stats().row_hits, 1);
        // A row hit is much faster than a miss.
        assert!(completed[0].latency_ticks() < 150);
    }

    #[test]
    fn conflicting_row_causes_precharge_then_activate() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let pa0 = physical_for(&ctrl, 0, 0, 3, 1);
        let pa1 = physical_for(&ctrl, 0, 0, 4, 1);
        ctrl.enqueue(MemoryRequest::read(1, pa0, 0, 0));
        let _ = ctrl.run_until(0, 2_000);
        ctrl.enqueue(MemoryRequest::read(2, pa1, 0, 2_000));
        let completed = ctrl.run_until(2_000, 5_000);
        assert_eq!(completed.len(), 1);
        assert_eq!(ctrl.stats().row_conflicts, 1);
    }

    #[test]
    fn writes_complete_and_are_counted() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let pa = physical_for(&ctrl, 1, 0, 2, 0);
        ctrl.enqueue(MemoryRequest::write(7, pa, 1, 0));
        let completed = ctrl.run_until(0, 2_000);
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].kind, RequestKind::Write);
        assert_eq!(ctrl.stats().writes_completed, 1);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let cap = ctrl.config().queue_capacity;
        for i in 0..cap {
            let pa = physical_for(&ctrl, 0, 0, (i % 8) as u32, 0);
            assert!(ctrl.enqueue(MemoryRequest::read(i as u64, pa, 0, 0)));
        }
        let pa = physical_for(&ctrl, 0, 0, 0, 0);
        assert!(!ctrl.enqueue(MemoryRequest::read(999, pa, 0, 0)));
        assert!(!ctrl.can_accept());
    }

    /// Issues `pairs` alternating, serialized (dependent) accesses to the two
    /// physical addresses, waiting for each to complete before issuing the
    /// next. This is the access pattern an attacker uses to guarantee one
    /// activation per access. Returns the tick after the last completion.
    fn hammer_pairs(
        ctrl: &mut MemoryController,
        pa_a: u64,
        pa_b: u64,
        pairs: u32,
        start: u64,
    ) -> u64 {
        let mut now = start;
        let mut id = 0u64;
        for _ in 0..pairs {
            for pa in [pa_a, pa_b] {
                ctrl.enqueue(MemoryRequest::read(id, pa, 0, now));
                id += 1;
                let mut done = false;
                while !done {
                    now += 1;
                    if !ctrl.tick(now).is_empty() {
                        done = true;
                    }
                    assert!(now < start + 10_000_000, "hammer loop did not converge");
                }
            }
        }
        now
    }

    #[test]
    fn hammering_triggers_abo_rfm_under_abo_only() {
        let mut ctrl = tiny_controller(MitigationPolicy::AboOnly);
        // Alternate two rows in the same bank to force one activation per
        // access; NBO = 16, so 20 pairs comfortably cross the threshold.
        let pa_a = physical_for(&ctrl, 0, 0, 1, 0);
        let pa_b = physical_for(&ctrl, 0, 0, 2, 0);
        hammer_pairs(&mut ctrl, pa_a, pa_b, 20, 0);
        assert!(
            ctrl.stats().abo_rfms >= 1,
            "expected at least one ABO-RFM, stats: {:?}",
            ctrl.stats()
        );
        assert!(ctrl.device().stats().alerts_asserted >= 1);
    }

    #[test]
    fn acb_rfms_fire_before_alert_under_abo_plus_acb() {
        // BAT = 4 with NBO = 64: the proactive engine must fire long before
        // any row reaches the Back-Off threshold.
        let prac = PracConfig::builder()
            .rowhammer_threshold(64)
            .back_off_threshold(64)
            .bank_activation_threshold(4)
            .policy(MitigationPolicy::AboPlusAcbRfm)
            .build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let config = ControllerConfig {
            mapping: MappingKind::RowInterleaved,
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let pa_a = physical_for(&ctrl, 0, 0, 1, 0);
        let pa_b = physical_for(&ctrl, 0, 0, 2, 0);
        hammer_pairs(&mut ctrl, pa_a, pa_b, 20, 0);
        assert!(ctrl.stats().acb_rfms >= 1, "stats: {:?}", ctrl.stats());
        assert_eq!(ctrl.stats().abo_rfms, 0, "ACB-RFMs should pre-empt Alerts");
    }

    #[test]
    fn tprac_issues_tb_rfms_at_fixed_intervals_without_any_traffic() {
        let timing = DramTimingSummary::ddr5_8000b();
        let tprac_cfg = TpracConfig::with_window_trefi(0.5, &timing);
        let window = tprac_cfg.tb_window_ticks;
        let prac = PracConfig::builder()
            .rowhammer_threshold(1024)
            .policy(MitigationPolicy::Tprac(tprac_cfg))
            .build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let config = ControllerConfig {
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let _ = ctrl.run_until(0, window * 4 + 10);
        assert_eq!(ctrl.stats().tb_rfms, 4);
        // And the log timestamps are (close to) multiples of the window.
        for (i, (tick, kind)) in ctrl.rfm_log().iter().enumerate() {
            assert_eq!(*kind, RfmKind::TbRfm);
            let expected = window * (i as u64 + 1);
            assert!(
                tick.abs_diff(expected) <= window / 10,
                "TB-RFM {i} at {tick}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn tprac_prevents_abo_rfms_under_hammering_serialized() {
        let timing = DramTimingSummary::ddr5_8000b();
        // Aggressive window so even the tiny test device stays below NBO.
        let tprac_cfg = TpracConfig::with_window_trefi(0.25, &timing);
        let prac = PracConfig::builder()
            .rowhammer_threshold(64)
            .back_off_threshold(64)
            .policy(MitigationPolicy::Tprac(tprac_cfg))
            .build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let config = ControllerConfig {
            mapping: MappingKind::RowInterleaved,
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let pa_a = physical_for(&ctrl, 0, 0, 1, 0);
        let pa_b = physical_for(&ctrl, 0, 0, 2, 0);
        // 100 serialized pairs would reach NBO = 64 without mitigation; with
        // TB-RFMs every 0.25 tREFI the hot row is mitigated long before that.
        hammer_pairs(&mut ctrl, pa_a, pa_b, 100, 0);
        assert_eq!(ctrl.stats().abo_rfms, 0, "TPRAC must eliminate ABO-RFMs");
        assert!(ctrl.stats().tb_rfms > 0);
        assert_eq!(ctrl.device().stats().alerts_asserted, 0);
    }

    #[test]
    fn disabled_policy_issues_no_rfms_under_hammering() {
        let mut ctrl = tiny_controller(MitigationPolicy::Disabled);
        let pa_a = physical_for(&ctrl, 0, 0, 1, 0);
        let pa_b = physical_for(&ctrl, 0, 0, 2, 0);
        // NBO = 16: 40 serialized pairs would assert Alert many times over
        // under ABO-Only; the explicit baseline must stay silent.
        hammer_pairs(&mut ctrl, pa_a, pa_b, 40, 0);
        assert_eq!(ctrl.stats().total_rfms(), 0);
        assert_eq!(ctrl.device().stats().alerts_asserted, 0);
        assert!(!ctrl.mitigation_engine().responds_to_alert());
    }

    #[test]
    fn prfm_issues_rfms_on_the_trefi_cadence_without_traffic() {
        let prac = PracConfig::builder()
            .rowhammer_threshold(1024)
            .policy(MitigationPolicy::PeriodicRfm { every_trefi: 2 })
            .build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let period = device_config.timing.t_refi * 2;
        let config = ControllerConfig {
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let _ = ctrl.run_until(0, period * 4 + 10);
        assert_eq!(ctrl.stats().periodic_rfms, 4);
        for (i, (tick, kind)) in ctrl.rfm_log().iter().enumerate() {
            assert_eq!(*kind, RfmKind::PeriodicRfm);
            let expected = period * (i as u64 + 1);
            assert!(
                tick.abs_diff(expected) <= period / 10,
                "periodic RFM {i} at {tick}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn para_issues_probabilistic_rfms_under_traffic_and_none_without() {
        let build = || {
            let prac = PracConfig::builder()
                .rowhammer_threshold(1024)
                .policy(MitigationPolicy::Para {
                    one_in: 4,
                    seed: 11,
                })
                .build();
            let device_config = DramDeviceConfig::tiny_for_tests(prac);
            let config = ControllerConfig {
                mapping: MappingKind::RowInterleaved,
                refresh_enabled: false,
                ..ControllerConfig::default()
            };
            MemoryController::new(device_config, config)
        };
        // No activations → no draws → no RFMs.
        let mut idle = build();
        let _ = idle.run_until(0, 100_000);
        assert_eq!(idle.stats().total_rfms(), 0);
        // Hammering produces activations, each with a 1-in-4 issue chance.
        let mut busy = build();
        let pa_a = physical_for(&busy, 0, 0, 1, 0);
        let pa_b = physical_for(&busy, 0, 0, 2, 0);
        hammer_pairs(&mut busy, pa_a, pa_b, 20, 0);
        assert!(
            busy.stats().para_rfms > 0,
            "expected PARA RFMs, stats: {:?}",
            busy.stats()
        );
        // Determinism: an identical run replays the exact same RFM log.
        let mut replay = build();
        hammer_pairs(&mut replay, pa_a, pa_b, 20, 0);
        assert_eq!(busy.rfm_log(), replay.rfm_log());
    }

    #[test]
    fn custom_engines_can_be_injected_directly() {
        use prac_core::mitigation::PrfmEngine;
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let t_refi = device_config.timing.t_refi;
        let config = ControllerConfig {
            refresh_enabled: false,
            ..ControllerConfig::default()
        };
        // A downstream defense: PRFM wired in without any policy variant.
        let engine = Box::new(PrfmEngine::new(1, t_refi, 0));
        let mut ctrl = MemoryController::with_mitigation_engine(device_config, config, engine);
        let _ = ctrl.run_until(0, t_refi * 3 + 10);
        assert_eq!(ctrl.stats().periodic_rfms, 3);
        assert_eq!(ctrl.mitigation_engine().label(), "PRFM");
        // The declarative policy still reports what the device was built
        // with; behaviour came from the injected engine.
        assert_eq!(ctrl.policy(), &MitigationPolicy::AboOnly);
    }

    #[test]
    fn refresh_is_issued_every_trefi_when_enabled() {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let t_refi = device_config.timing.t_refi;
        let config = ControllerConfig {
            refresh_enabled: true,
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let _ = ctrl.run_until(0, t_refi * 4 + 10);
        assert_eq!(ctrl.stats().refreshes_issued, 4);
    }

    #[test]
    fn obfuscation_injects_random_rfms() {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let device_config = DramDeviceConfig::tiny_for_tests(prac);
        let t_refi = device_config.timing.t_refi;
        let config = ControllerConfig {
            refresh_enabled: false,
            obfuscation: Some(ObfuscationConfig::new(1.0).unwrap()),
            ..ControllerConfig::default()
        };
        let mut ctrl = MemoryController::new(device_config, config);
        let _ = ctrl.run_until(0, t_refi * 5 + 10);
        assert!(
            ctrl.stats().injected_rfms >= 4,
            "expected injected RFMs every tREFI, got {}",
            ctrl.stats().injected_rfms
        );
    }

    #[test]
    fn address_round_trip_through_controller() {
        let ctrl = tiny_controller(MitigationPolicy::AboOnly);
        let pa = 0x1_2340u64;
        let decoded = ctrl.decode_address(pa);
        assert_eq!(ctrl.encode_address(&decoded), pa);
    }
}
