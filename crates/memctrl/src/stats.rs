//! Controller-side statistics: request latencies, row-buffer behaviour and
//! RFM accounting.

use serde::{Deserialize, Serialize};

use crate::rfm::RfmKind;

/// Counters accumulated by the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Read requests completed.
    pub reads_completed: u64,
    /// Write requests completed.
    pub writes_completed: u64,
    /// Requests serviced with the target row already open.
    pub row_hits: u64,
    /// Requests serviced after opening a closed row.
    pub row_misses: u64,
    /// Requests serviced after closing a different open row (conflicts).
    pub row_conflicts: u64,
    /// Periodic refreshes issued.
    pub refreshes_issued: u64,
    /// RFMs issued by the Alert Back-Off responder.
    pub abo_rfms: u64,
    /// Proactive Activation-Based RFMs issued.
    pub acb_rfms: u64,
    /// TPRAC Timing-Based RFMs issued.
    pub tb_rfms: u64,
    /// Periodic (PRFM) RFMs issued on the fixed tREFI cadence.
    pub periodic_rfms: u64,
    /// PARA-style probabilistic RFMs issued.
    pub para_rfms: u64,
    /// Randomly injected (obfuscation) RFMs issued.
    pub injected_rfms: u64,
    /// TB-RFMs skipped thanks to Targeted Refreshes.
    pub tb_rfms_skipped: u64,
    /// Sum of completed-request latencies, in ticks.
    pub total_latency_ticks: u64,
    /// Maximum observed request latency, in ticks.
    pub max_latency_ticks: u64,
}

impl ControllerStats {
    /// Total requests completed.
    #[must_use]
    pub fn requests_completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Total RFMs issued, of any kind.
    #[must_use]
    pub fn total_rfms(&self) -> u64 {
        self.abo_rfms
            + self.acb_rfms
            + self.tb_rfms
            + self.periodic_rfms
            + self.para_rfms
            + self.injected_rfms
    }

    /// Average request latency in ticks (0 when nothing completed).
    #[must_use]
    pub fn average_latency_ticks(&self) -> f64 {
        let n = self.requests_completed();
        if n == 0 {
            0.0
        } else {
            self.total_latency_ticks as f64 / n as f64
        }
    }

    /// Average request latency in nanoseconds.
    #[must_use]
    pub fn average_latency_ns(&self) -> f64 {
        self.average_latency_ticks() * 0.25
    }

    /// Row-buffer hit rate over all completed requests.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Records an issued RFM of the given kind.
    pub fn record_rfm(&mut self, kind: RfmKind) {
        match kind {
            RfmKind::AboRfm => self.abo_rfms += 1,
            RfmKind::AcbRfm => self.acb_rfms += 1,
            RfmKind::TbRfm => self.tb_rfms += 1,
            RfmKind::PeriodicRfm => self.periodic_rfms += 1,
            RfmKind::ParaRfm => self.para_rfms += 1,
            RfmKind::InjectedRfm => self.injected_rfms += 1,
        }
    }

    /// Records a completed request's latency.
    pub fn record_latency(&mut self, latency_ticks: u64) {
        self.total_latency_ticks += latency_ticks;
        self.max_latency_ticks = self.max_latency_ticks.max(latency_ticks);
    }

    /// Merges another statistics block into this one (used when aggregating
    /// across the channels of a memory subsystem): counters add, the
    /// maximum latency takes the max.
    ///
    /// The exhaustive destructuring makes adding a field to
    /// [`ControllerStats`] without aggregating it here a compile error.
    pub fn merge(&mut self, other: &ControllerStats) {
        let ControllerStats {
            reads_completed,
            writes_completed,
            row_hits,
            row_misses,
            row_conflicts,
            refreshes_issued,
            abo_rfms,
            acb_rfms,
            tb_rfms,
            periodic_rfms,
            para_rfms,
            injected_rfms,
            tb_rfms_skipped,
            total_latency_ticks,
            max_latency_ticks,
        } = *other;
        self.reads_completed += reads_completed;
        self.writes_completed += writes_completed;
        self.row_hits += row_hits;
        self.row_misses += row_misses;
        self.row_conflicts += row_conflicts;
        self.refreshes_issued += refreshes_issued;
        self.abo_rfms += abo_rfms;
        self.acb_rfms += acb_rfms;
        self.tb_rfms += tb_rfms;
        self.periodic_rfms += periodic_rfms;
        self.para_rfms += para_rfms;
        self.injected_rfms += injected_rfms;
        self.tb_rfms_skipped += tb_rfms_skipped;
        self.total_latency_ticks += total_latency_ticks;
        self.max_latency_ticks = self.max_latency_ticks.max(max_latency_ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_stats() {
        let s = ControllerStats::default();
        assert_eq!(s.average_latency_ticks(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.total_rfms(), 0);
    }

    #[test]
    fn rfm_recording_by_kind() {
        let mut s = ControllerStats::default();
        s.record_rfm(RfmKind::AboRfm);
        s.record_rfm(RfmKind::TbRfm);
        s.record_rfm(RfmKind::TbRfm);
        s.record_rfm(RfmKind::AcbRfm);
        s.record_rfm(RfmKind::InjectedRfm);
        s.record_rfm(RfmKind::PeriodicRfm);
        s.record_rfm(RfmKind::ParaRfm);
        assert_eq!(s.abo_rfms, 1);
        assert_eq!(s.tb_rfms, 2);
        assert_eq!(s.acb_rfms, 1);
        assert_eq!(s.injected_rfms, 1);
        assert_eq!(s.periodic_rfms, 1);
        assert_eq!(s.para_rfms, 1);
        assert_eq!(s.total_rfms(), 7);
    }

    #[test]
    fn latency_accumulates_and_tracks_max() {
        let mut s = ControllerStats {
            reads_completed: 2,
            ..Default::default()
        };
        s.record_latency(100);
        s.record_latency(300);
        assert_eq!(s.total_latency_ticks, 400);
        assert_eq!(s.max_latency_ticks, 300);
        assert!((s.average_latency_ticks() - 200.0).abs() < 1e-9);
        assert!((s.average_latency_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters_and_maxes_latency() {
        let mut a = ControllerStats {
            reads_completed: 3,
            row_hits: 2,
            tb_rfms: 1,
            total_latency_ticks: 500,
            max_latency_ticks: 400,
            ..Default::default()
        };
        let b = ControllerStats {
            reads_completed: 1,
            row_hits: 4,
            abo_rfms: 2,
            total_latency_ticks: 100,
            max_latency_ticks: 90,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads_completed, 4);
        assert_eq!(a.row_hits, 6);
        assert_eq!(a.tb_rfms, 1);
        assert_eq!(a.abo_rfms, 2);
        assert_eq!(a.total_latency_ticks, 600);
        assert_eq!(a.max_latency_ticks, 400);
    }

    #[test]
    fn hit_rate_computation() {
        let s = ControllerStats {
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-9);
    }
}
