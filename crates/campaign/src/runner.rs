//! The parallel campaign runner.
//!
//! Splits a campaign into cached hits and cells that must execute, fans the
//! misses out over [`system_sim::parallel_map`]'s work-stealing pool with
//! per-scenario timing and live progress lines, stores fresh results back
//! into the cache, and writes the JSON/CSV artifacts.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use serde_json::Map;
use system_sim::{parallel_map, EngineKind};

use crate::artifact::{ArtifactPaths, ArtifactStore};
use crate::cache::{CachedResult, ResultCache};
use crate::exec::{execute_perf_group_sharded, execute_sharded};
use crate::scenario::{Campaign, Scenario, ScenarioSpec};

/// One unit of parallel work: a lone scenario, or a group of perf cells
/// sharing everything but their mitigation setup (executed together so the
/// common prefix is simulated once).
#[derive(Debug)]
enum WorkUnit {
    /// A scenario executed on its own, with its campaign index.
    Single(usize, Scenario),
    /// Perf cells with identical sweep parameters, as `(index, scenario)`.
    PrefixGroup(Vec<(usize, Scenario)>),
}

impl WorkUnit {
    /// The scenario this unit holds at campaign index `index`.
    fn scenario_at(&self, index: usize) -> &Scenario {
        match self {
            WorkUnit::Single(_, scenario) => scenario,
            WorkUnit::PrefixGroup(cells) => {
                &cells
                    .iter()
                    .find(|(cell_index, _)| *cell_index == index)
                    .expect("index belongs to this unit")
                    .1
            }
        }
    }
}

/// The grouping key of a perf cell: its canonical spec JSON with the
/// `setup` field removed.  Cells with equal keys share traces, baseline leg
/// and fork prefix; non-perf cells never group.
fn prefix_group_key(spec: &ScenarioSpec) -> Option<String> {
    if !matches!(spec, ScenarioSpec::Perf(_)) {
        return None;
    }
    match spec.to_json() {
        serde_json::Value::Object(mut map) => {
            map.remove("setup");
            Some(serde_json::Value::Object(map).to_string())
        }
        _ => None,
    }
}

/// Splits the pending cells into work units, preserving campaign order of
/// first appearance.  With `fork_prefix` off (or for groups of one) every
/// cell becomes its own unit.
fn plan_work_units(pending: Vec<(usize, Scenario)>, fork_prefix: bool) -> Vec<WorkUnit> {
    if !fork_prefix {
        return pending
            .into_iter()
            .map(|(index, scenario)| WorkUnit::Single(index, scenario))
            .collect();
    }
    let mut units: Vec<WorkUnit> = Vec::new();
    let mut group_of: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (index, scenario) in pending {
        match prefix_group_key(&scenario.spec) {
            Some(key) => match group_of.get(&key) {
                Some(&unit) => match &mut units[unit] {
                    WorkUnit::PrefixGroup(cells) => cells.push((index, scenario)),
                    WorkUnit::Single(..) => unreachable!("grouped units are PrefixGroup"),
                },
                None => {
                    group_of.insert(key, units.len());
                    units.push(WorkUnit::PrefixGroup(vec![(index, scenario)]));
                }
            },
            None => units.push(WorkUnit::Single(index, scenario)),
        }
    }
    units
}

/// The outcome of one scenario within a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario that produced this record.
    pub scenario: Scenario,
    /// Flat metric map.
    pub metrics: Map,
    /// Whether the result came from the incremental cache.
    pub cached: bool,
    /// Wall-clock milliseconds of the (original) execution.
    pub wall_ms: f64,
}

/// Summary of a completed campaign run.
#[derive(Debug)]
pub struct RunSummary {
    /// Per-scenario records, in campaign order.
    pub records: Vec<ScenarioRecord>,
    /// How many cells were served from the cache.
    pub cached: usize,
    /// How many cells actually executed.
    pub executed: usize,
    /// Total wall-clock milliseconds of the run (including cache lookups).
    pub wall_ms: f64,
    /// Artifact paths, when an artifact store was configured.
    pub artifacts: Option<ArtifactPaths>,
}

/// Campaign execution policy: parallelism, caching, artifacts, verbosity.
#[derive(Debug)]
pub struct CampaignRunner {
    workers: usize,
    cache: Option<ResultCache>,
    artifacts: Option<ArtifactStore>,
    progress: bool,
    engine: EngineKind,
    fork_prefix: bool,
    sim_threads: usize,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            cache: None,
            artifacts: None,
            progress: false,
            engine: EngineKind::default(),
            fork_prefix: true,
            sim_threads: 1,
        }
    }
}

impl CampaignRunner {
    /// Creates a runner with default parallelism and no cache or artifacts.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables the incremental result cache.
    #[must_use]
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables JSON/CSV artifact output.
    #[must_use]
    pub fn with_artifacts(mut self, artifacts: ArtifactStore) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Enables per-scenario progress lines on stdout.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Selects the simulation engine scenarios execute under.  Results (and
    /// therefore cache entries) are engine-independent; this only changes
    /// how fast the misses run.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables checkpoint/fork prefix sharing (default: on).
    ///
    /// When on, performance cells that differ only in their mitigation setup
    /// are grouped: the group's traces and baseline leg run once, and the
    /// shared mitigation-free prefix of the protected legs is simulated once
    /// and forked per cell ([`crate::exec::execute_perf_group`]).  Results
    /// are bit-identical either way — this knob only trades memory (the
    /// paused prefix state) for wall-clock time, and exists as an escape
    /// hatch and for benchmarking the speedup itself.
    #[must_use]
    pub fn with_fork_prefix(mut self, fork_prefix: bool) -> Self {
        self.fork_prefix = fork_prefix;
        self
    }

    /// Sets the worker-thread count each simulation uses to step due
    /// channels of one event round in parallel (default 1: sequential).
    /// Results and cache entries are thread-count-independent — like
    /// [`CampaignRunner::with_engine`], this only changes how fast the
    /// misses run.  Note this parallelism *multiplies* with
    /// [`CampaignRunner::with_workers`]: `workers` runs scenarios
    /// concurrently, `sim_threads` parallelises channels inside each one.
    #[must_use]
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// Runs every scenario of `campaign`, returning records in campaign
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the cache or artifact store; simulation
    /// itself is infallible.
    pub fn run(&self, campaign: &Campaign) -> io::Result<RunSummary> {
        let started = Instant::now();
        let total = campaign.scenarios.len();

        // Phase 1: serve what we can from the cache.
        let mut records: Vec<Option<ScenarioRecord>> = Vec::with_capacity(total);
        let mut pending: Vec<(usize, Scenario)> = Vec::new();
        for (index, scenario) in campaign.scenarios.iter().enumerate() {
            let hit = self.cache.as_ref().and_then(|cache| cache.lookup(scenario));
            match hit {
                Some(cached) => records.push(Some(ScenarioRecord {
                    scenario: scenario.clone(),
                    metrics: cached.metrics,
                    cached: true,
                    wall_ms: cached.wall_ms,
                })),
                None => {
                    records.push(None);
                    pending.push((index, scenario.clone()));
                }
            }
        }
        let cached = total - pending.len();
        if self.progress && cached > 0 {
            println!(
                "[{}] {cached}/{total} scenarios served from cache",
                campaign.name
            );
        }

        // Phase 2: fan the misses out over the work-stealing pool.  With
        // prefix sharing on, perf cells that differ only in their mitigation
        // setup travel as one work unit so the group executor can simulate
        // their common prefix once; everything else stays per-cell.
        let executed = pending.len();
        let units = plan_work_units(pending, self.fork_prefix);
        let done = AtomicUsize::new(0);
        let campaign_name = campaign.name.as_str();
        let progress = self.progress;
        let engine = self.engine;
        let sim_threads = self.sim_threads;
        let fresh: Vec<(usize, ScenarioRecord)> = parallel_map(units, self.workers, |unit| {
            let unit_started = Instant::now();
            let results: Vec<(usize, Map)> = match unit {
                WorkUnit::Single(index, scenario) => {
                    vec![(*index, execute_sharded(&scenario.spec, engine, sim_threads))]
                }
                WorkUnit::PrefixGroup(cells) => {
                    let perfs: Vec<&crate::scenario::PerfScenario> = cells
                        .iter()
                        .map(|(_, scenario)| match &scenario.spec {
                            ScenarioSpec::Perf(perf) => perf.as_ref(),
                            _ => unreachable!("prefix groups contain only perf cells"),
                        })
                        .collect();
                    let metrics = execute_perf_group_sharded(&perfs, engine, sim_threads);
                    cells.iter().map(|(index, _)| *index).zip(metrics).collect()
                }
            };
            // Shared work cannot be attributed to one cell; spread the
            // unit's wall time evenly so per-cell costs stay meaningful.
            let wall_ms = unit_started.elapsed().as_secs_f64() * 1e3 / results.len() as f64;
            results
                .into_iter()
                .map(|(index, metrics)| {
                    let scenario = unit.scenario_at(index);
                    if progress {
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        println!(
                            "[{campaign_name}] {finished}/{executed} {} ({wall_ms:.0} ms)",
                            scenario.name
                        );
                    }
                    (
                        index,
                        ScenarioRecord {
                            scenario: scenario.clone(),
                            metrics,
                            cached: false,
                            wall_ms,
                        },
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Phase 3: store fresh results and stitch the record list together.
        for (index, record) in fresh {
            if let Some(cache) = &self.cache {
                cache.store(
                    &record.scenario,
                    &CachedResult {
                        metrics: record.metrics.clone(),
                        wall_ms: record.wall_ms,
                    },
                )?;
            }
            records[index] = Some(record);
        }
        let records: Vec<ScenarioRecord> = records
            .into_iter()
            .map(|slot| slot.expect("every scenario produced a record"))
            .collect();

        let artifacts = match &self.artifacts {
            Some(store) => Some(store.write(campaign, &records)?),
            None => None,
        };

        Ok(RunSummary {
            records,
            cached,
            executed,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            artifacts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    fn tiny_campaign() -> Campaign {
        let mut campaign = Campaign::new("tiny", "Tiny smoke campaign", "none");
        campaign.push(Scenario::new(
            "solve-1024",
            ScenarioSpec::SolveWindow {
                nrh: 1024,
                counter_reset: true,
            },
        ));
        campaign.push(Scenario::new(
            "storage-single",
            ScenarioSpec::Storage {
                queue: prac_core::queue::QueueKind::SingleEntryFrequency,
                banks: 128,
            },
        ));
        campaign
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prac-campaign-run-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn runs_and_writes_valid_artifacts() {
        let root = temp_dir("artifacts");
        let runner = CampaignRunner::new()
            .with_workers(2)
            .with_artifacts(ArtifactStore::new(&root));
        let summary = runner.run(&tiny_campaign()).unwrap();
        assert_eq!(summary.records.len(), 2);
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.cached, 0);

        let paths = summary.artifacts.unwrap();
        let json = serde_json::from_str(&std::fs::read_to_string(&paths.json).unwrap()).unwrap();
        assert_eq!(json.get("campaign").and_then(|v| v.as_str()), Some("tiny"));
        assert_eq!(
            json.get("scenarios")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(2)
        );
        let csv = std::fs::read_to_string(&paths.csv).unwrap();
        assert!(csv.starts_with("scenario,key,cached,wall_ms"));
        assert_eq!(csv.lines().count(), 3, "header + one row per scenario");
    }

    #[test]
    fn second_run_hits_the_cache() {
        let root = temp_dir("cache");
        let campaign = tiny_campaign();
        let make_runner = || {
            CampaignRunner::new()
                .with_workers(2)
                .with_cache(ResultCache::open(root.join("cache")).unwrap())
        };

        let first = make_runner().run(&campaign).unwrap();
        assert_eq!((first.cached, first.executed), (0, 2));

        let second = make_runner().run(&campaign).unwrap();
        assert_eq!((second.cached, second.executed), (2, 0));
        assert_eq!(
            first.records[0].metrics, second.records[0].metrics,
            "cached metrics must round-trip exactly"
        );

        // Changing one cell re-runs only that cell.
        let mut changed = campaign.clone();
        changed.scenarios[0] = Scenario::new(
            "solve-2048",
            ScenarioSpec::SolveWindow {
                nrh: 2048,
                counter_reset: true,
            },
        );
        let third = make_runner().run(&changed).unwrap();
        assert_eq!((third.cached, third.executed), (1, 1));
    }
}
