//! The declarative scenario model.
//!
//! A [`Scenario`] is one cell of the paper's evaluation matrix — a mitigation
//! setup × RowHammer threshold × workload × instruction budget for the
//! performance figures, or the equivalent declarative description of an
//! attack / analytical experiment for the security figures.  A [`Campaign`]
//! is a named, ordered list of scenarios (one paper figure or table).
//!
//! Scenarios are *data*: they serialise to canonical JSON (the `serde_json`
//! shim keeps object members sorted), and the [`Scenario::key`] cache key is
//! a stable FNV-1a hash of that canonical form prefixed with the simulator's
//! [`SIM_REVISION`].  Any change to any field — threshold, seed, budget,
//! workload shape — changes the key, which is what lets the incremental
//! result cache re-run only the cells that changed; bumping the revision
//! when simulation semantics change retires every stale cache entry at once.

use dram_sim::DeviceProfile;
use prac_core::config::PracLevel;
use prac_core::queue::QueueKind;
use prac_core::tprac::TrefRate;
use pracleak::covert::CovertChannelKind;
use serde_json::{Map, Value};
use system_sim::MitigationSetup;
use workloads::attack::AttackKind;
use workloads::{MemoryIntensity, WorkloadGroup, WorkloadSpec};

/// Simulation-semantics revision mixed into every cache key.
///
/// Bump this whenever a change alters simulation *results* without changing
/// any scenario field — e.g. revision 2 covers the FR-FCFS hit-streak
/// accounting fix that landed with the event-driven engine.  Bumping it
/// orphans every existing `target/campaigns/cache/` entry (they simply miss
/// and re-execute), which is exactly the point: a cached metric must always
/// mean "what the current simulator would produce".  The golden snapshot in
/// `tests/cache_key_snapshot.rs` pins the combined effect of this constant
/// and the canonical spec serialisation.
pub const SIM_REVISION: u32 = 2;

/// One cell of a campaign: a unique name plus the declarative spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Name of the cell, unique within its campaign (used in reports and
    /// artifact rows).
    pub name: String,
    /// What to run.
    pub spec: ScenarioSpec,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(name: impl Into<String>, spec: ScenarioSpec) -> Self {
        Self {
            name: name.into(),
            spec,
        }
    }

    /// Stable 64-bit cache key of the scenario *configuration* (the name is
    /// excluded, so renaming a cell does not invalidate its cached result).
    ///
    /// The simulator's semantics revision is mixed into the hash, so results
    /// cached by a binary with different simulation behaviour miss instead
    /// of being silently mixed with fresh ones.
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(key_preimage(&self.spec).as_bytes())
    }
}

/// The cache-key preimage: the revision prefix plus the canonical spec JSON.
/// [`Scenario::key`] is the FNV-1a hash of exactly these bytes, and the
/// result store uses the same string as the record *identity* — which is
/// what makes store keys and pre-existing cache keys the same keys.
#[must_use]
pub fn key_preimage(spec: &ScenarioSpec) -> String {
    let mut preimage = format!("sim-r{SIM_REVISION}:");
    preimage.push_str(&spec.to_json().to_string());
    preimage
}

/// A named, ordered scenario matrix — typically one paper figure or table.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Registry name (`fig10`, `table5`, …).
    pub name: String,
    /// One-line human title.
    pub title: String,
    /// What the paper reports for this figure, for context in artifacts.
    pub reference: String,
    /// The ordered scenario matrix.
    pub scenarios: Vec<Scenario>,
}

impl Campaign {
    /// Creates an empty campaign.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        reference: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            reference: reference.into(),
            scenarios: Vec::new(),
        }
    }

    /// Adds a scenario.
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }
}

/// A full-system performance cell: one protected run and one baseline run of
/// the same workload, reported as normalised performance.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfScenario {
    /// The mitigation configuration under test.
    pub setup: MitigationSetup,
    /// RowHammer threshold (`NRH`, with `NBO` set equal to it).
    pub rowhammer_threshold: u32,
    /// PRAC level (RFMs per Alert).
    pub prac_level: PracLevel,
    /// The workload (with its intensity/group labels).
    pub workload: WorkloadSpec,
    /// Instructions per core.
    pub instructions_per_core: u64,
    /// Number of cores running copies of the workload.
    pub cores: u32,
    /// Number of memory channels (1 reproduces the paper's system).
    pub channels: u32,
    /// Rank-count override (`0` keeps the organisation's default rank count
    /// and the exact pre-rank cache keys).
    pub ranks: u32,
    /// Named device timing profile ([`DeviceProfile::JedecBaseline`]
    /// reproduces the paper's system and its exact cache keys).
    pub profile: DeviceProfile,
    /// Optional adversarial co-runner on one extra core (`None` reproduces
    /// the paper's benign runs and their exact cache keys).
    pub attack: Option<AttackKind>,
    /// Trace-generation seed: the entire run is a pure function of the
    /// scenario including this value.
    pub seed: u64,
}

/// The declarative description of what a scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// Figure 10–14 / Table 5 style performance cell.
    Perf(Box<PerfScenario>),
    /// Figure 3: attacker-observed latency with / without concurrent ABOs.
    AboLatency {
        /// `Some(level)` runs the victim hammer alongside the attacker;
        /// `None` is the "No ABO" panel.
        prac_level: Option<PracLevel>,
        /// Back-Off threshold.
        nbo: u32,
        /// Observation window in nanoseconds.
        window_ns: f64,
    },
    /// Figure 4 / 5 / 9: one instance of the AES T-table side channel.
    SideChannel {
        /// Back-Off threshold.
        nbo: u32,
        /// Encryptions in the victim phase.
        encryptions: u32,
        /// Secret key byte 0.
        k0: u8,
        /// Fixed plaintext byte 0.
        p0: u8,
        /// Run under the TPRAC defense instead of plain ABO.
        defended: bool,
        /// Experiment seed.
        seed: u64,
    },
    /// Figure 7 (left): worst-case activations (TMAX) over the standard
    /// TB-Window sweep.
    TmaxSeries {
        /// Back-Off threshold.
        nbo: u32,
        /// Whether per-row counters reset every tREFW.
        counter_reset: bool,
    },
    /// Figure 7 (right): solved TB-Window for a RowHammer threshold.
    SolveWindow {
        /// RowHammer threshold.
        nrh: u32,
        /// Whether per-row counters reset every tREFW.
        counter_reset: bool,
    },
    /// Table 2: one covert-channel measurement point.
    Covert {
        /// Channel variant.
        kind: CovertChannelKind,
        /// Back-Off threshold.
        nbo: u32,
        /// Symbols transmitted.
        symbols: usize,
        /// Channel seed.
        seed: u64,
    },
    /// Section 6.8: storage overhead of one mitigation-queue design.
    Storage {
        /// Queue design.
        queue: QueueKind,
        /// Banks per channel.
        banks: u32,
    },
    /// `attacks` campaign cell: one registered attack pattern raced against
    /// one registered mitigation at a RowHammer threshold, through the
    /// serialized flush+access attacker model of `pracleak::adversary`.
    Attack {
        /// The attack pattern under test.
        attack: AttackKind,
        /// The defending mitigation configuration.
        setup: MitigationSetup,
        /// RowHammer threshold (`NBO` set equal to it).
        nrh: u32,
        /// Serialized attacker accesses per run.
        accesses: u64,
        /// Device timing profile of the defending DRAM
        /// ([`DeviceProfile::JedecBaseline`] keeps the pre-profile cache
        /// keys; the vendor profiles add the on-die ECC adjudication to the
        /// cell's security metrics).
        profile: DeviceProfile,
        /// Seed mixed into the pattern's own seeded streams.
        seed: u64,
    },
}

impl ScenarioSpec {
    /// Canonical JSON form of the spec.  This is the serialisation the cache
    /// key hashes and the artifact store embeds, so it must be stable: the
    /// `serde_json` shim's sorted objects plus the explicit field names here
    /// guarantee that.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        match self {
            ScenarioSpec::Perf(perf) => {
                map.insert("kind".into(), "perf".into());
                map.insert("setup".into(), setup_to_json(&perf.setup));
                map.insert("nrh".into(), perf.rowhammer_threshold.into());
                map.insert("prac_level".into(), perf.prac_level.rfms_per_alert().into());
                map.insert("workload".into(), workload_spec_to_json(&perf.workload));
                map.insert(
                    "instructions_per_core".into(),
                    perf.instructions_per_core.into(),
                );
                map.insert("cores".into(), perf.cores.into());
                // Emitted only for multi-channel cells: single-channel specs
                // keep the exact canonical JSON (and therefore cache key)
                // they had before the channel dimension existed, so no
                // cached result is orphaned by the field's introduction.
                if perf.channels > 1 {
                    map.insert("channels".into(), perf.channels.into());
                }
                // Same key-stability rule as `channels`: `0` means "no rank
                // override" and is omitted, so every pre-rank spec keeps its
                // exact canonical JSON and cache key.
                if perf.ranks > 0 {
                    map.insert("ranks".into(), perf.ranks.into());
                }
                // And again for the device profile: the JEDEC baseline (the
                // paper's system) is omitted.
                if perf.profile != DeviceProfile::JedecBaseline {
                    map.insert("profile".into(), perf.profile.slug().into());
                }
                // Same key-stability rule as `channels`: benign cells keep
                // the exact canonical JSON they had before the attacker
                // dimension existed, so no cached result is orphaned.
                if let Some(attack) = &perf.attack {
                    map.insert("attack".into(), attack_to_json(attack));
                }
                map.insert("seed".into(), perf.seed.into());
            }
            ScenarioSpec::AboLatency {
                prac_level,
                nbo,
                window_ns,
            } => {
                map.insert("kind".into(), "abo_latency".into());
                map.insert(
                    "prac_level".into(),
                    prac_level.map_or(Value::Null, |l| l.rfms_per_alert().into()),
                );
                map.insert("nbo".into(), (*nbo).into());
                map.insert("window_ns".into(), (*window_ns).into());
            }
            ScenarioSpec::SideChannel {
                nbo,
                encryptions,
                k0,
                p0,
                defended,
                seed,
            } => {
                map.insert("kind".into(), "side_channel".into());
                map.insert("nbo".into(), (*nbo).into());
                map.insert("encryptions".into(), (*encryptions).into());
                map.insert("k0".into(), u64::from(*k0).into());
                map.insert("p0".into(), u64::from(*p0).into());
                map.insert("defended".into(), (*defended).into());
                map.insert("seed".into(), (*seed).into());
            }
            ScenarioSpec::TmaxSeries { nbo, counter_reset } => {
                map.insert("kind".into(), "tmax_series".into());
                map.insert("nbo".into(), (*nbo).into());
                map.insert("counter_reset".into(), (*counter_reset).into());
            }
            ScenarioSpec::SolveWindow { nrh, counter_reset } => {
                map.insert("kind".into(), "solve_window".into());
                map.insert("nrh".into(), (*nrh).into());
                map.insert("counter_reset".into(), (*counter_reset).into());
            }
            ScenarioSpec::Covert {
                kind,
                nbo,
                symbols,
                seed,
            } => {
                map.insert("kind".into(), "covert".into());
                map.insert(
                    "channel".into(),
                    match kind {
                        CovertChannelKind::ActivityBased => "activity",
                        CovertChannelKind::ActivationCountBased => "activation_count",
                    }
                    .into(),
                );
                map.insert("nbo".into(), (*nbo).into());
                map.insert("symbols".into(), (*symbols).into());
                map.insert("seed".into(), (*seed).into());
            }
            ScenarioSpec::Storage { queue, banks } => {
                map.insert("kind".into(), "storage".into());
                map.insert("queue".into(), queue_kind_to_json(queue));
                map.insert("banks".into(), (*banks).into());
            }
            ScenarioSpec::Attack {
                attack,
                setup,
                nrh,
                accesses,
                profile,
                seed,
            } => {
                map.insert("kind".into(), "attack".into());
                map.insert("attack".into(), attack_to_json(attack));
                map.insert("setup".into(), setup_to_json(setup));
                map.insert("nrh".into(), (*nrh).into());
                map.insert("accesses".into(), (*accesses).into());
                // Key stability: the JEDEC baseline is omitted so every
                // pre-profile attack cell keeps its exact cache key.
                if *profile != DeviceProfile::JedecBaseline {
                    map.insert("profile".into(), profile.slug().into());
                }
                map.insert("seed".into(), (*seed).into());
            }
        }
        Value::Object(map)
    }

    /// Parses a spec back from its canonical JSON form — the inverse of
    /// [`ScenarioSpec::to_json`], used by the serve protocol to turn a query
    /// payload into a runnable cell.  Round-tripping any registry scenario
    /// through `to_json` → `from_json` reproduces the spec (and therefore
    /// the cache key) exactly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a field is missing, has the
    /// wrong type, or names an unknown kind/policy/pattern.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("spec missing string `kind`")?;
        match kind {
            "perf" => Ok(ScenarioSpec::Perf(Box::new(PerfScenario {
                setup: setup_from_json(field(value, "setup")?)?,
                rowhammer_threshold: u64_field(value, "nrh")? as u32,
                prac_level: prac_level_from_rfms(u64_field(value, "prac_level")?)?,
                workload: workload_spec_from_json(field(value, "workload")?)?,
                instructions_per_core: u64_field(value, "instructions_per_core")?,
                cores: u64_field(value, "cores")? as u32,
                // Omitted in canonical JSON when 1 (key stability).
                channels: value.get("channels").and_then(Value::as_u64).unwrap_or(1) as u32,
                // Omitted in canonical JSON when 0 / baseline (key
                // stability).
                ranks: value.get("ranks").and_then(Value::as_u64).unwrap_or(0) as u32,
                profile: profile_from_json(value)?,
                // Omitted in canonical JSON when benign (key stability).
                attack: match value.get("attack") {
                    None | Some(Value::Null) => None,
                    Some(attack) => Some(attack_from_json(attack)?),
                },
                seed: u64_field(value, "seed")?,
            }))),
            "abo_latency" => Ok(ScenarioSpec::AboLatency {
                prac_level: match field(value, "prac_level")? {
                    Value::Null => None,
                    rfms => Some(prac_level_from_rfms(
                        rfms.as_u64().ok_or("non-integer `prac_level`")?,
                    )?),
                },
                nbo: u64_field(value, "nbo")? as u32,
                window_ns: f64_field(value, "window_ns")?,
            }),
            "side_channel" => Ok(ScenarioSpec::SideChannel {
                nbo: u64_field(value, "nbo")? as u32,
                encryptions: u64_field(value, "encryptions")? as u32,
                k0: u64_field(value, "k0")? as u8,
                p0: u64_field(value, "p0")? as u8,
                defended: bool_field(value, "defended")?,
                seed: u64_field(value, "seed")?,
            }),
            "tmax_series" => Ok(ScenarioSpec::TmaxSeries {
                nbo: u64_field(value, "nbo")? as u32,
                counter_reset: bool_field(value, "counter_reset")?,
            }),
            "solve_window" => Ok(ScenarioSpec::SolveWindow {
                nrh: u64_field(value, "nrh")? as u32,
                counter_reset: bool_field(value, "counter_reset")?,
            }),
            "covert" => Ok(ScenarioSpec::Covert {
                kind: match str_field(value, "channel")? {
                    "activity" => CovertChannelKind::ActivityBased,
                    "activation_count" => CovertChannelKind::ActivationCountBased,
                    other => return Err(format!("unknown covert channel `{other}`")),
                },
                nbo: u64_field(value, "nbo")? as u32,
                symbols: u64_field(value, "symbols")? as usize,
                seed: u64_field(value, "seed")?,
            }),
            "storage" => Ok(ScenarioSpec::Storage {
                queue: queue_kind_from_json(str_field(value, "queue")?)?,
                banks: u64_field(value, "banks")? as u32,
            }),
            "attack" => Ok(ScenarioSpec::Attack {
                attack: attack_from_json(field(value, "attack")?)?,
                setup: setup_from_json(field(value, "setup")?)?,
                nrh: u64_field(value, "nrh")? as u32,
                accesses: u64_field(value, "accesses")?,
                profile: profile_from_json(value)?,
                seed: u64_field(value, "seed")?,
            }),
            other => Err(format!("unknown scenario kind `{other}`")),
        }
    }
}

fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, String> {
    value.get(name).ok_or_else(|| format!("missing `{name}`"))
}

fn u64_field(value: &Value, name: &str) -> Result<u64, String> {
    field(value, name)?
        .as_u64()
        .ok_or_else(|| format!("missing or non-integer `{name}`"))
}

fn f64_field(value: &Value, name: &str) -> Result<f64, String> {
    field(value, name)?
        .as_f64()
        .ok_or_else(|| format!("missing or non-numeric `{name}`"))
}

fn bool_field(value: &Value, name: &str) -> Result<bool, String> {
    field(value, name)?
        .as_bool()
        .ok_or_else(|| format!("missing or non-boolean `{name}`"))
}

fn str_field<'v>(value: &'v Value, name: &str) -> Result<&'v str, String> {
    field(value, name)?
        .as_str()
        .ok_or_else(|| format!("missing or non-string `{name}`"))
}

/// Parses the optional `profile` member of a spec object: omitted (the
/// canonical form of the JEDEC baseline) resolves to the default profile.
fn profile_from_json(value: &Value) -> Result<DeviceProfile, String> {
    match value.get("profile") {
        None | Some(Value::Null) => Ok(DeviceProfile::JedecBaseline),
        Some(profile) => {
            let slug = profile.as_str().ok_or("non-string `profile`")?;
            DeviceProfile::parse(slug).ok_or_else(|| format!("unknown device profile `{slug}`"))
        }
    }
}

fn prac_level_from_rfms(rfms: u64) -> Result<PracLevel, String> {
    match rfms {
        1 => Ok(PracLevel::One),
        2 => Ok(PracLevel::Two),
        4 => Ok(PracLevel::Four),
        other => Err(format!("no PRAC level issues {other} RFMs per Alert")),
    }
}

fn setup_from_json(value: &Value) -> Result<MitigationSetup, String> {
    match str_field(value, "policy")? {
        "baseline_no_abo" => Ok(MitigationSetup::BaselineNoAbo),
        "abo_only" => Ok(MitigationSetup::AboOnly),
        "abo_plus_acb_rfm" => Ok(MitigationSetup::AboPlusAcbRfm),
        "tprac" => Ok(MitigationSetup::Tprac {
            tref_rate: match field(value, "tref_per_trefi")? {
                Value::Null => TrefRate::None,
                n => TrefRate::EveryTrefi(n.as_u64().ok_or("non-integer `tref_per_trefi`")? as u32),
            },
            counter_reset: bool_field(value, "counter_reset")?,
        }),
        "prfm" => Ok(MitigationSetup::Prfm {
            every_trefi: u64_field(value, "every_trefi")? as u32,
        }),
        "para" => Ok(MitigationSetup::Para {
            one_in: u64_field(value, "one_in")? as u32,
            seed: u64_field(value, "para_seed")?,
        }),
        other => Err(format!("unknown mitigation policy `{other}`")),
    }
}

fn attack_from_json(value: &Value) -> Result<AttackKind, String> {
    match str_field(value, "pattern")? {
        "single_sided" => Ok(AttackKind::SingleSided),
        "double_sided" => Ok(AttackKind::DoubleSided),
        "many_sided" => Ok(AttackKind::ManySided {
            sides: u64_field(value, "sides")? as u32,
        }),
        "half_double" => Ok(AttackKind::HalfDouble),
        "decoy_blast" => Ok(AttackKind::DecoyBlast {
            decoys: u64_field(value, "decoys")? as u32,
            seed: u64_field(value, "decoy_seed")?,
        }),
        "rfm_pressure" => Ok(AttackKind::RfmPressure {
            duty_percent: u64_field(value, "duty_percent")? as u32,
        }),
        other => Err(format!("unknown attack pattern `{other}`")),
    }
}

fn workload_spec_from_json(value: &Value) -> Result<WorkloadSpec, String> {
    Ok(WorkloadSpec {
        workload: workloads::SyntheticWorkload {
            name: str_field(value, "name")?.to_string(),
            mem_ops_per_kilo_instr: u64_field(value, "mem_ops_per_kilo_instr")? as u32,
            store_fraction: f64_field(value, "store_fraction")?,
            pattern: match str_field(value, "pattern")? {
                "streaming" => workloads::AccessPattern::Streaming,
                "randomlarge" => workloads::AccessPattern::RandomLarge,
                "cacheresident" => workloads::AccessPattern::CacheResident,
                "rowstrided" => workloads::AccessPattern::RowStrided,
                other => return Err(format!("unknown access pattern `{other}`")),
            },
            footprint_bytes: u64_field(value, "footprint_bytes")?,
            base_address: u64_field(value, "base_address")?,
        },
        intensity: match str_field(value, "intensity")? {
            "high" => MemoryIntensity::High,
            "medium" => MemoryIntensity::Medium,
            "low" => MemoryIntensity::Low,
            other => return Err(format!("unknown intensity `{other}`")),
        },
        group: match str_field(value, "group")? {
            "spec2006" => WorkloadGroup::Spec2006Like,
            "spec2017" => WorkloadGroup::Spec2017Like,
            "cloudsuite" => WorkloadGroup::CloudSuiteLike,
            other => return Err(format!("unknown workload group `{other}`")),
        },
    })
}

fn queue_kind_from_json(text: &str) -> Result<QueueKind, String> {
    if let Some(capacity) = text.strip_prefix("fifo_") {
        return Ok(QueueKind::Fifo {
            capacity: capacity
                .parse()
                .map_err(|_| format!("bad FIFO capacity in `{text}`"))?,
        });
    }
    match text {
        "single_entry_frequency" => Ok(QueueKind::SingleEntryFrequency),
        "priority" => Ok(QueueKind::Priority),
        other => Err(format!("unknown queue kind `{other}`")),
    }
}

/// Canonical JSON form of an attack kind (the attacker-side mirror of
/// [`setup_to_json`]).  Field spellings are pinned by the cache-key golden
/// snapshot — additive changes only.
fn attack_to_json(attack: &AttackKind) -> Value {
    let mut map = Map::new();
    match attack {
        AttackKind::SingleSided => {
            map.insert("pattern".into(), "single_sided".into());
        }
        AttackKind::DoubleSided => {
            map.insert("pattern".into(), "double_sided".into());
        }
        AttackKind::ManySided { sides } => {
            map.insert("pattern".into(), "many_sided".into());
            map.insert("sides".into(), (*sides).into());
        }
        AttackKind::HalfDouble => {
            map.insert("pattern".into(), "half_double".into());
        }
        AttackKind::DecoyBlast { decoys, seed } => {
            map.insert("pattern".into(), "decoy_blast".into());
            map.insert("decoys".into(), (*decoys).into());
            map.insert("decoy_seed".into(), (*seed).into());
        }
        AttackKind::RfmPressure { duty_percent } => {
            map.insert("pattern".into(), "rfm_pressure".into());
            map.insert("duty_percent".into(), (*duty_percent).into());
        }
    }
    Value::Object(map)
}

fn setup_to_json(setup: &MitigationSetup) -> Value {
    let mut map = Map::new();
    match setup {
        MitigationSetup::BaselineNoAbo => {
            map.insert("policy".into(), "baseline_no_abo".into());
        }
        MitigationSetup::AboOnly => {
            map.insert("policy".into(), "abo_only".into());
        }
        MitigationSetup::AboPlusAcbRfm => {
            map.insert("policy".into(), "abo_plus_acb_rfm".into());
        }
        MitigationSetup::Tprac {
            tref_rate,
            counter_reset,
        } => {
            map.insert("policy".into(), "tprac".into());
            map.insert(
                "tref_per_trefi".into(),
                match tref_rate {
                    TrefRate::None => Value::Null,
                    TrefRate::EveryTrefi(n) => (*n).into(),
                },
            );
            map.insert("counter_reset".into(), (*counter_reset).into());
        }
        MitigationSetup::Prfm { every_trefi } => {
            map.insert("policy".into(), "prfm".into());
            map.insert("every_trefi".into(), (*every_trefi).into());
        }
        MitigationSetup::Para { one_in, seed } => {
            map.insert("policy".into(), "para".into());
            map.insert("one_in".into(), (*one_in).into());
            map.insert("para_seed".into(), (*seed).into());
        }
    }
    Value::Object(map)
}

fn workload_spec_to_json(spec: &WorkloadSpec) -> Value {
    let w = &spec.workload;
    let mut map = Map::new();
    map.insert("name".into(), w.name.as_str().into());
    map.insert(
        "mem_ops_per_kilo_instr".into(),
        w.mem_ops_per_kilo_instr.into(),
    );
    map.insert("store_fraction".into(), w.store_fraction.into());
    map.insert(
        "pattern".into(),
        format!("{:?}", w.pattern).to_lowercase().into(),
    );
    map.insert("footprint_bytes".into(), w.footprint_bytes.into());
    map.insert("base_address".into(), w.base_address.into());
    map.insert(
        "intensity".into(),
        match spec.intensity {
            MemoryIntensity::High => "high",
            MemoryIntensity::Medium => "medium",
            MemoryIntensity::Low => "low",
        }
        .into(),
    );
    map.insert(
        "group".into(),
        match spec.group {
            WorkloadGroup::Spec2006Like => "spec2006",
            WorkloadGroup::Spec2017Like => "spec2017",
            WorkloadGroup::CloudSuiteLike => "cloudsuite",
        }
        .into(),
    );
    Value::Object(map)
}

fn queue_kind_to_json(kind: &QueueKind) -> Value {
    match kind {
        QueueKind::SingleEntryFrequency => "single_entry_frequency".into(),
        QueueKind::Fifo { capacity } => format!("fifo_{capacity}").into(),
        QueueKind::Priority => "priority".into(),
    }
}

/// 64-bit FNV-1a: simple, dependency-free and stable across platforms and
/// compiler versions (unlike `DefaultHasher`, whose algorithm is unspecified).
/// Delegates to the result store's hash so the campaign layer and the store
/// provably address content with the same function.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    result_store::fnv1a64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prac_core::tprac::TrefRate;
    use workloads::quick_suite;

    fn perf_scenario(nrh: u32) -> Scenario {
        Scenario::new(
            "cell",
            ScenarioSpec::Perf(Box::new(PerfScenario {
                setup: MitigationSetup::Tprac {
                    tref_rate: TrefRate::None,
                    counter_reset: true,
                },
                rowhammer_threshold: nrh,
                prac_level: PracLevel::One,
                workload: quick_suite().remove(0),
                instructions_per_core: 10_000,
                cores: 2,
                channels: 1,
                ranks: 0,
                profile: DeviceProfile::JedecBaseline,
                attack: None,
                seed: 7,
            })),
        )
    }

    #[test]
    fn same_config_hashes_identically() {
        assert_eq!(perf_scenario(1024).key(), perf_scenario(1024).key());
    }

    #[test]
    fn changed_threshold_changes_the_key() {
        assert_ne!(perf_scenario(1024).key(), perf_scenario(2048).key());
    }

    #[test]
    fn changed_seed_changes_the_key() {
        let a = perf_scenario(1024);
        let mut b = a.clone();
        if let ScenarioSpec::Perf(perf) = &mut b.spec {
            perf.seed = 8;
        }
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn renaming_does_not_change_the_key() {
        let a = perf_scenario(1024);
        let mut b = a.clone();
        b.name = "renamed".into();
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn single_channel_specs_omit_the_channel_field() {
        // Key-stability guarantee: a channels = 1 cell serialises exactly as
        // it did before the channel dimension existed.
        let json = perf_scenario(1024).spec.to_json().to_string();
        assert!(
            !json.contains("channels"),
            "unexpected channel field: {json}"
        );
    }

    #[test]
    fn benign_specs_omit_the_attack_field() {
        // Same key-stability guarantee for the attacker dimension.
        let json = perf_scenario(1024).spec.to_json().to_string();
        assert!(!json.contains("attack"), "unexpected attack field: {json}");
    }

    #[test]
    fn attacked_perf_cells_change_the_key() {
        let benign = perf_scenario(1024);
        let mut attacked = benign.clone();
        if let ScenarioSpec::Perf(perf) = &mut attacked.spec {
            perf.attack = Some(AttackKind::ManySided { sides: 8 });
        }
        assert_ne!(benign.key(), attacked.key());
        let json = attacked.spec.to_json().to_string();
        assert!(json.contains("\"attack\""), "{json}");
        assert!(json.contains("many_sided"), "{json}");
    }

    #[test]
    fn attack_cells_serialise_canonically_per_kind() {
        let mut keys = std::collections::HashSet::new();
        for descriptor in workloads::attack::attack_registry() {
            let scenario = Scenario::new(
                "cell",
                ScenarioSpec::Attack {
                    attack: descriptor.kind,
                    setup: MitigationSetup::AboOnly,
                    nrh: 1024,
                    accesses: 1_000,
                    profile: DeviceProfile::JedecBaseline,
                    seed: 3,
                },
            );
            let json = scenario.spec.to_json();
            assert_eq!(
                json.get("kind").and_then(Value::as_str),
                Some("attack"),
                "{json}"
            );
            assert!(
                keys.insert(scenario.key()),
                "key collision for {}",
                descriptor.slug
            );
            // Canonical round trip, like every other kind.
            let text = json.to_string();
            let reparsed: Value = serde_json::from_str(&text).unwrap();
            assert_eq!(reparsed.to_string(), text);
        }
    }

    #[test]
    fn default_rank_and_profile_are_omitted_from_the_canonical_json() {
        // Key-stability guarantee: a cell with no rank override on the JEDEC
        // baseline profile serialises exactly as it did before either
        // dimension existed, for both perf and attack kinds.
        let json = perf_scenario(1024).spec.to_json().to_string();
        assert!(!json.contains("ranks"), "unexpected ranks field: {json}");
        assert!(
            !json.contains("profile"),
            "unexpected profile field: {json}"
        );
        let attack = ScenarioSpec::Attack {
            attack: AttackKind::SingleSided,
            setup: MitigationSetup::AboOnly,
            nrh: 1024,
            accesses: 1_000,
            profile: DeviceProfile::JedecBaseline,
            seed: 3,
        };
        let json = attack.to_json().to_string();
        assert!(
            !json.contains("profile"),
            "unexpected profile field: {json}"
        );
    }

    #[test]
    fn changed_ranks_or_profile_change_the_key_and_round_trip() {
        let base = perf_scenario(1024);
        let mut ranked = base.clone();
        if let ScenarioSpec::Perf(perf) = &mut ranked.spec {
            perf.ranks = 2;
        }
        assert_ne!(base.key(), ranked.key());
        assert!(ranked.spec.to_json().to_string().contains("\"ranks\":2"));
        assert_eq!(
            ScenarioSpec::from_json(&ranked.spec.to_json()).unwrap(),
            ranked.spec
        );

        let mut profiled = base.clone();
        if let ScenarioSpec::Perf(perf) = &mut profiled.spec {
            perf.profile = DeviceProfile::VendorA;
        }
        assert_ne!(base.key(), profiled.key());
        assert_ne!(ranked.key(), profiled.key());
        assert!(profiled
            .spec
            .to_json()
            .to_string()
            .contains("\"profile\":\"vendor-a\""));
        assert_eq!(
            ScenarioSpec::from_json(&profiled.spec.to_json()).unwrap(),
            profiled.spec
        );

        let ecc_attack = ScenarioSpec::Attack {
            attack: AttackKind::SingleSided,
            setup: MitigationSetup::AboOnly,
            nrh: 1024,
            accesses: 1_000,
            profile: DeviceProfile::VendorB,
            seed: 3,
        };
        assert!(ecc_attack
            .to_json()
            .to_string()
            .contains("\"profile\":\"vendor-b\""));
        assert_eq!(
            ScenarioSpec::from_json(&ecc_attack.to_json()).unwrap(),
            ecc_attack
        );
    }

    #[test]
    fn unknown_profiles_are_rejected_by_from_json() {
        let bad = serde_json::from_str(
            r#"{"kind":"attack","attack":{"pattern":"single_sided"},"setup":{"policy":"abo_only"},"nrh":1024,"accesses":1000,"profile":"vendor-z","seed":3}"#,
        )
        .unwrap();
        assert!(ScenarioSpec::from_json(&bad)
            .unwrap_err()
            .contains("vendor-z"));
    }

    #[test]
    fn changed_channel_count_changes_the_key() {
        let a = perf_scenario(1024);
        let mut b = a.clone();
        if let ScenarioSpec::Perf(perf) = &mut b.spec {
            perf.channels = 4;
        }
        assert_ne!(a.key(), b.key());
        assert!(b.spec.to_json().to_string().contains("channels"));
    }

    #[test]
    fn every_registry_scenario_roundtrips_through_from_json() {
        // `from_json` must be an exact inverse of `to_json` for every cell
        // the registry can produce — specs, and therefore cache keys, must
        // survive the serve protocol's JSON hop bit-for-bit.
        for profile in [
            crate::registry::Profile::quick(),
            crate::registry::Profile::full(),
        ] {
            for campaign in crate::registry::all_campaigns(&profile) {
                for scenario in &campaign.scenarios {
                    let json = scenario.spec.to_json();
                    let parsed = ScenarioSpec::from_json(&json).unwrap_or_else(|error| {
                        panic!("{}/{}: {error}", campaign.name, scenario.name)
                    });
                    assert_eq!(parsed, scenario.spec, "{}/{}", campaign.name, scenario.name);
                    assert_eq!(parsed.to_json().to_string(), json.to_string());
                }
            }
        }
    }

    #[test]
    fn from_json_rejects_unknown_kinds_and_bad_fields() {
        let bad = serde_json::from_str(r#"{"kind":"warp_drive"}"#).unwrap();
        assert!(ScenarioSpec::from_json(&bad)
            .unwrap_err()
            .contains("warp_drive"));
        let missing = serde_json::from_str(r#"{"kind":"solve_window","nrh":512}"#).unwrap();
        assert!(ScenarioSpec::from_json(&missing)
            .unwrap_err()
            .contains("counter_reset"));
        let not_an_object = serde_json::from_str("42").unwrap();
        assert!(ScenarioSpec::from_json(&not_an_object).is_err());
    }

    #[test]
    fn spec_json_is_canonical_and_roundtrips() {
        let json = perf_scenario(1024).spec.to_json();
        let text = json.to_string();
        let reparsed = serde_json::from_str(&text).unwrap();
        assert_eq!(reparsed, json);
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn every_spec_kind_serialises() {
        let specs = vec![
            ScenarioSpec::AboLatency {
                prac_level: Some(PracLevel::Two),
                nbo: 256,
                window_ns: 2e6,
            },
            ScenarioSpec::SideChannel {
                nbo: 128,
                encryptions: 100,
                k0: 3,
                p0: 0,
                defended: true,
                seed: 1,
            },
            ScenarioSpec::TmaxSeries {
                nbo: 4096,
                counter_reset: false,
            },
            ScenarioSpec::SolveWindow {
                nrh: 512,
                counter_reset: true,
            },
            ScenarioSpec::Covert {
                kind: CovertChannelKind::ActivityBased,
                nbo: 256,
                symbols: 8,
                seed: 2,
            },
            ScenarioSpec::Storage {
                queue: QueueKind::Fifo { capacity: 4 },
                banks: 128,
            },
        ];
        let mut keys = std::collections::HashSet::new();
        for spec in specs {
            let scenario = Scenario::new("s", spec);
            assert!(scenario.spec.to_json().get("kind").is_some());
            assert!(keys.insert(scenario.key()), "key collision across kinds");
        }
    }
}
