//! Append-only JSON perf-trajectory files (`BENCH_sim.json`,
//! `BENCH_store.json`).
//!
//! A trajectory file is a pretty-printed JSON array of measurement objects.
//! CI appends one entry per run on `main` (via `prac-bench bench sim
//! --append` / `prac-bench store bench --append`), so regressions show up
//! as a widening series instead of a lost prose note.  Every entry carries
//! a `unix_time` and — when the caller passes one via `--commit` — the
//! short git commit hash, so each point is attributable.  The commit hash
//! is handed in by CI rather than read from the repository at runtime: the
//! bench binary must not grow a git dependency or behave differently
//! inside and outside a checkout.
//!
//! Appending is strict: a file that exists but does not parse as a JSON
//! array of objects fails with [`std::io::ErrorKind::InvalidData`] instead
//! of being clobbered — a half-written or hand-mangled trajectory is
//! evidence to keep, not to overwrite.

use std::io;
use std::path::Path;

use result_store::write_atomic;
use serde_json::{Map, Value};

/// Loads a trajectory file as its list of measurement entries.
///
/// A missing file is an empty trajectory.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the file exists but is not a
/// JSON array of objects, and propagates other read errors.
pub fn load(path: &Path) -> io::Result<Vec<Map>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(error) => return Err(error),
    };
    let malformed = |detail: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} is not a JSON array of measurement objects ({detail}); \
                 refusing to touch it",
                path.display()
            ),
        )
    };
    let entries = match serde_json::from_str(&text) {
        Ok(Value::Array(entries)) => entries,
        Ok(_) => return Err(malformed("top level is not an array")),
        Err(error) => return Err(malformed(&error.to_string())),
    };
    entries
        .into_iter()
        .enumerate()
        .map(|(index, entry)| match entry {
            Value::Object(map) => Ok(map),
            _ => Err(malformed(&format!("entry {index} is not an object"))),
        })
        .collect()
}

/// Appends one measurement entry to the trajectory at `path`, atomically.
///
/// When the new entry carries a `commit` hash that an existing entry
/// already has, the old entry is replaced in place instead of appended:
/// re-running the bench job for one commit (a CI retry, a local re-measure)
/// refreshes that point rather than recording the same commit twice.
/// Entries without a commit hash are always strictly appended.
///
/// # Errors
///
/// Fails loudly (without modifying the file) when the existing file is
/// malformed — see [`load`] — and propagates write errors.
pub fn append(path: &Path, entry: Map) -> io::Result<()> {
    let mut entries = load(path)?;
    let duplicate = entry.get("commit").and_then(Value::as_str).and_then(|new| {
        entries
            .iter()
            .position(|existing| existing.get("commit").and_then(Value::as_str) == Some(new))
    });
    match duplicate {
        Some(index) => entries[index] = entry,
        None => entries.push(entry),
    }
    let entries: Vec<Value> = entries.into_iter().map(Value::Object).collect();
    let text = serde_json::to_string_pretty(&Value::Array(entries))
        .expect("JSON serialisation is infallible");
    write_atomic(path, text.as_bytes())
}

/// Starts a measurement entry with the bookkeeping fields every trajectory
/// point carries: `unix_time` and, when provided, the short `commit` hash.
#[must_use]
pub fn base_entry(commit: Option<&str>) -> Map {
    let mut entry = Map::new();
    entry.insert(
        "unix_time".into(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs())
            .into(),
    );
    if let Some(commit) = commit {
        entry.insert("commit".into(), commit.into());
    }
    entry
}

/// Renders the simulator-core and store trajectories as the markdown
/// "Perf trajectory" tables embedded in the README (and printed by
/// `prac-bench bench trajectory`).
#[must_use]
pub fn render_markdown(sim: &[Map], store: &[Map]) -> String {
    let mut out = String::new();
    out.push_str("### Simulator core (`BENCH_sim.json`)\n\n");
    if sim.is_empty() {
        out.push_str("_No entries yet — see the bench-append workflow below._\n");
    } else {
        out.push_str(
            "| commit | wheel push/pop (ns) | bank min-reduce (ns) \
             | scheduler scan (ns) | fig10 --quick (ms) | fig10 forked (ms) \
             | scaling --quick 4ch (ms) |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|\n");
        for entry in sim {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                commit_cell(entry),
                number_cell(entry, "wheel_push_pop_ns"),
                number_cell(entry, "bank_min_reduce_ns"),
                number_cell(entry, "scheduler_scan_ns"),
                number_cell(entry, "fig10_quick_wall_ms"),
                number_cell(entry, "fig10_quick_fork_wall_ms"),
                number_cell(entry, "scaling_quick_4ch_wall_ms"),
            ));
        }
    }
    out.push_str("\n### Result store (`BENCH_store.json`)\n\n");
    if store.is_empty() {
        out.push_str("_No entries yet — see the bench-append workflow below._\n");
    } else {
        out.push_str("| commit | lookup mean (ns) | lookup p50 (ns) | fig10 --quick (ms) |\n");
        out.push_str("|---|---|---|---|\n");
        for entry in store {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                commit_cell(entry),
                number_cell(entry, "store_lookup_ns_mean"),
                number_cell(entry, "store_lookup_ns_p50"),
                number_cell(entry, "fig10_quick_wall_ms"),
            ));
        }
    }
    out
}

/// The `commit` column: the short hash when recorded, else a dash (entries
/// predating the commit field stay renderable).
fn commit_cell(entry: &Map) -> String {
    match entry.get("commit").and_then(Value::as_str) {
        Some(commit) => format!("`{commit}`"),
        None => "—".to_string(),
    }
}

/// A numeric metric formatted to one decimal, or a dash when absent.
fn number_cell(entry: &Map, key: &str) -> String {
    match entry.get(key).and_then(Value::as_f64) {
        Some(value) => format!("{value:.1}"),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("prac-trajectory-{}-{tag}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn entry(commit: &str, value: f64) -> Map {
        let mut entry = base_entry(Some(commit));
        entry.insert("fig10_quick_wall_ms".into(), value.into());
        entry
    }

    #[test]
    fn append_creates_then_extends_the_file() {
        let path = temp_file("extend");
        append(&path, entry("abc1234", 100.0)).unwrap();
        append(&path, entry("def5678", 90.0)).unwrap();
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("commit").and_then(Value::as_str),
            Some("abc1234")
        );
        assert_eq!(
            entries[1]
                .get("fig10_quick_wall_ms")
                .and_then(Value::as_f64),
            Some(90.0)
        );
        assert!(entries[0].contains_key("unix_time"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_replaces_an_entry_with_the_same_commit() {
        let path = temp_file("dedupe");
        append(&path, entry("abc1234", 100.0)).unwrap();
        append(&path, entry("def5678", 90.0)).unwrap();
        // A re-measure of the first commit replaces it in place.
        append(&path, entry("abc1234", 80.0)).unwrap();
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("commit").and_then(Value::as_str),
            Some("abc1234")
        );
        assert_eq!(
            entries[0]
                .get("fig10_quick_wall_ms")
                .and_then(Value::as_f64),
            Some(80.0)
        );
        assert_eq!(
            entries[1].get("commit").and_then(Value::as_str),
            Some("def5678")
        );
        // Commitless entries never dedupe: strict append.
        let mut anonymous = Map::new();
        anonymous.insert("fig10_quick_wall_ms".into(), 70.0.into());
        append(&path, anonymous.clone()).unwrap();
        append(&path, anonymous).unwrap();
        assert_eq!(load(&path).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_refuses_to_clobber_a_malformed_file() {
        for broken in [r#"{"not":"an array"}"#, "[{\"ok\":true}, 7]", "not json"] {
            let path = temp_file("malformed");
            std::fs::write(&path, broken).unwrap();
            let error = append(&path, entry("abc1234", 1.0)).unwrap_err();
            assert_eq!(error.kind(), io::ErrorKind::InvalidData, "{broken}");
            // Fail loudly means fail read-only: the file is untouched.
            assert_eq!(std::fs::read_to_string(&path).unwrap(), broken);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn missing_file_is_an_empty_trajectory() {
        let path = temp_file("missing");
        assert_eq!(load(&path).unwrap(), Vec::new());
    }

    #[test]
    fn markdown_renders_entries_and_tolerates_legacy_fields() {
        let mut sim = base_entry(Some("abc1234"));
        sim.insert("wheel_push_pop_ns".into(), 74.7.into());
        sim.insert("bank_min_reduce_ns".into(), 220.1.into());
        sim.insert("scheduler_scan_ns".into(), 591.4.into());
        sim.insert("fig10_quick_wall_ms".into(), 188.2.into());
        sim.insert("fig10_quick_fork_wall_ms".into(), 121.6.into());
        sim.insert("scaling_quick_4ch_wall_ms".into(), 402.5.into());
        // A legacy store entry without a commit field renders with a dash.
        let mut store = Map::new();
        store.insert("store_lookup_ns_mean".into(), 3108.9.into());
        store.insert("store_lookup_ns_p50".into(), 2129u32.into());
        store.insert("fig10_quick_wall_ms".into(), 188.2.into());
        let text = render_markdown(&[sim], &[store]);
        assert!(text.contains("`abc1234`"), "{text}");
        assert!(text.contains("| 74.7 |"), "{text}");
        assert!(text.contains("| 188.2 | 121.6 | 402.5 |"), "{text}");
        assert!(text.contains("| — | 3108.9 |"), "{text}");
        let empty = render_markdown(&[], &[]);
        assert!(empty.contains("No entries yet"), "{empty}");
    }
}
