//! Per-campaign artifact store.
//!
//! Every campaign run writes two machine-readable artifacts under
//! `target/campaigns/<name>/`:
//!
//! * `results.json` — the campaign metadata plus one record per scenario
//!   (spec, cache key, metrics, timing),
//! * `results.csv` — the same metrics flattened to one row per scenario,
//!   with the header built from the sorted union of metric keys.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use result_store::write_atomic;
use serde_json::{Map, Value};

use crate::runner::ScenarioRecord;
use crate::scenario::Campaign;

/// Writes campaign artifacts under a root directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

/// Paths of the artifacts written for one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactPaths {
    /// The JSON artifact.
    pub json: PathBuf,
    /// The CSV artifact.
    pub csv: PathBuf,
}

impl ArtifactStore {
    /// Creates a store rooted at `root` (typically `target/campaigns`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The default on-disk location, `target/campaigns`.
    #[must_use]
    pub fn default_root() -> PathBuf {
        Path::new("target").join("campaigns")
    }

    /// Writes `results.json` and `results.csv` for a completed campaign.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory or either file cannot be
    /// written.
    pub fn write(
        &self,
        campaign: &Campaign,
        records: &[ScenarioRecord],
    ) -> io::Result<ArtifactPaths> {
        let dir = self.root.join(&campaign.name);
        fs::create_dir_all(&dir)?;
        let paths = ArtifactPaths {
            json: dir.join("results.json"),
            csv: dir.join("results.csv"),
        };
        // Atomic (temp + rename) so a crash mid-write can never leave a
        // torn artifact that poisons later consumers.
        write_atomic(&paths.json, render_json(campaign, records).as_bytes())?;
        write_atomic(&paths.csv, render_csv(records).as_bytes())?;
        Ok(paths)
    }
}

fn render_json(campaign: &Campaign, records: &[ScenarioRecord]) -> String {
    let mut doc = Map::new();
    doc.insert("campaign".into(), campaign.name.as_str().into());
    doc.insert("title".into(), campaign.title.as_str().into());
    doc.insert("paper_reference".into(), campaign.reference.as_str().into());
    doc.insert(
        "scenarios".into(),
        Value::Array(
            records
                .iter()
                .map(|record| {
                    let mut row = Map::new();
                    row.insert("name".into(), record.scenario.name.as_str().into());
                    row.insert(
                        "key".into(),
                        format!("{:016x}", record.scenario.key()).into(),
                    );
                    row.insert("spec".into(), record.scenario.spec.to_json());
                    row.insert("cached".into(), record.cached.into());
                    row.insert("wall_ms".into(), record.wall_ms.into());
                    row.insert("metrics".into(), Value::Object(record.metrics.clone()));
                    Value::Object(row)
                })
                .collect(),
        ),
    );
    serde_json::to_string_pretty(&Value::Object(doc)).expect("JSON serialisation is infallible")
}

fn render_csv(records: &[ScenarioRecord]) -> String {
    // Header: fixed columns plus the sorted union of metric keys, so
    // heterogeneous campaigns still produce a rectangular table.
    let mut metric_keys: Vec<&str> = Vec::new();
    for record in records {
        for key in record.metrics.keys() {
            if !metric_keys.contains(&key.as_str()) {
                metric_keys.push(key);
            }
        }
    }
    metric_keys.sort_unstable();

    let mut out = String::from("scenario,key,cached,wall_ms");
    for key in &metric_keys {
        out.push(',');
        out.push_str(&csv_field(key));
    }
    out.push('\n');

    for record in records {
        out.push_str(&csv_field(&record.scenario.name));
        out.push_str(&format!(
            ",{:016x},{},{:.3}",
            record.scenario.key(),
            record.cached,
            record.wall_ms
        ));
        for key in &metric_keys {
            out.push(',');
            if let Some(value) = record.metrics.get(*key) {
                out.push_str(&csv_value(value));
            }
        }
        out.push('\n');
    }
    out
}

fn csv_value(value: &Value) -> String {
    match value {
        Value::Null => String::new(),
        Value::String(s) => csv_field(s),
        other => csv_field(&other.to_string()),
    }
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioSpec};

    fn record(name: &str, key: &str, value: f64) -> ScenarioRecord {
        let mut metrics = Map::new();
        metrics.insert(key.into(), value.into());
        ScenarioRecord {
            scenario: Scenario::new(
                name,
                ScenarioSpec::SolveWindow {
                    nrh: 1024,
                    counter_reset: true,
                },
            ),
            metrics,
            cached: false,
            wall_ms: 1.0,
        }
    }

    #[test]
    fn csv_has_union_header_and_one_row_per_record() {
        let csv = render_csv(&[record("a", "x", 1.0), record("b", "y", 2.0)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("scenario,key,cached,wall_ms,x,y"));
        assert_eq!(lines.clone().count(), 2);
        // Record "a" has no "y": its last field is empty.
        assert!(lines.next().unwrap().ends_with(",1.0,"));
    }

    #[test]
    fn csv_escapes_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
