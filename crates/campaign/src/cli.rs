//! The `prac-bench` command-line interface.
//!
//! * `prac-bench list` — enumerate the registered campaigns,
//! * `prac-bench run <name>... | --all` — run campaigns through the parallel
//!   runner with the incremental cache and JSON/CSV artifacts,
//! * the former `fig*`/`table*` binaries delegate here via [`delegate`].

use std::path::PathBuf;

use serde_json::Value;
use system_sim::{AttackKind, EngineKind};

use crate::artifact::ArtifactStore;
use crate::cache::ResultCache;
use crate::registry::{all_campaigns, find_campaign, Profile};
use crate::runner::{CampaignRunner, RunSummary, ScenarioRecord};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: Command,
    names: Vec<String>,
    all: bool,
    full: bool,
    instructions_per_core: Option<u64>,
    cores: Option<u32>,
    channels: Option<u32>,
    attack: Option<AttackKind>,
    workers: Option<usize>,
    engine: EngineKind,
    no_cache: bool,
    out_dir: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    List,
    Mitigations,
    Attacks,
    Run,
    Help,
}

const USAGE: &str = "prac-bench — unified campaign runner for the PRACLeak/TPRAC evaluation

USAGE:
    prac-bench list [--full]
    prac-bench mitigations
    prac-bench attacks
    prac-bench run <name>... [options]
    prac-bench run --all [options]

COMMANDS:
    list              Enumerate the registered campaigns
    mitigations       Enumerate the registered mitigation setups
    attacks           Enumerate the registered attack patterns
    run               Execute campaigns through the parallel runner

OPTIONS:
    --all             Run every registered campaign
    --quick           Reduced sweeps and budgets (default)
    --full            Paper-scale sweeps and budgets
    --instr <N>       Override instructions per core for performance cells
    --cores <N>       Override core count for performance cells
    --channels <N>    Override memory-channel count for performance cells
                      (power of two; the `scaling` campaign sweeps its own
                      channel counts and ignores this knob)
    --attack <SLUG>   Run performance cells with an adversarial co-runner on
                      one extra core (see `prac-bench attacks` for slugs;
                      the `attacks` campaign sweeps its own patterns and
                      ignores this knob)
    --workers <N>     Worker threads (default: all hardware threads)
    --engine <E>      Simulation engine: `event` (default) jumps between
                      component wake-ups; `tick` is the legacy per-cycle
                      loop.  Results are bit-identical either way.
    --no-cache        Ignore and do not update the incremental result cache
    --out <DIR>       Artifact root (default: target/campaigns)
    --cache-dir <DIR> Cache root (default: target/campaigns/cache)

Artifacts are written to <out>/<campaign>/results.{json,csv}; cached cells
are reused when the scenario configuration (including seeds and budgets) is
unchanged.";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        command: Command::Help,
        names: Vec::new(),
        all: false,
        full: false,
        instructions_per_core: None,
        cores: None,
        channels: None,
        attack: None,
        workers: None,
        engine: EngineKind::default(),
        no_cache: false,
        out_dir: None,
        cache_dir: None,
    };
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("list") => options.command = Command::List,
        Some("mitigations") => options.command = Command::Mitigations,
        Some("attacks") => options.command = Command::Attacks,
        Some("run") => options.command = Command::Run,
        Some("help" | "--help" | "-h") | None => return Ok(options),
        Some(other) => return Err(format!("unknown command `{other}`")),
    }
    let mut iter = iter.peekable();
    while let Some(arg) = iter.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            iter.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a numeric argument"))
        };
        match arg.as_str() {
            "--all" => options.all = true,
            "--full" => options.full = true,
            "--quick" => options.full = false,
            "--no-cache" => options.no_cache = true,
            "--instr" => options.instructions_per_core = Some(numeric("--instr")?),
            "--cores" => options.cores = Some(numeric("--cores")? as u32),
            "--channels" => {
                let channels = numeric("--channels")? as u32;
                if channels == 0 || !channels.is_power_of_two() {
                    return Err(format!("--channels must be a power of two, got {channels}"));
                }
                options.channels = Some(channels);
            }
            "--attack" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--attack requires a pattern slug".to_string())?;
                options.attack = Some(AttackKind::parse_slug(value).ok_or_else(|| {
                    let known: Vec<String> = workloads::attack_registry()
                        .into_iter()
                        .map(|descriptor| descriptor.slug)
                        .collect();
                    format!(
                        "unknown attack pattern `{value}` (known: {})",
                        known.join(", ")
                    )
                })?);
            }
            "--workers" => options.workers = Some(numeric("--workers")? as usize),
            "--engine" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--engine requires `tick` or `event`".to_string())?;
                options.engine = EngineKind::parse(value)
                    .ok_or_else(|| format!("unknown engine `{value}` (use `tick` or `event`)"))?;
            }
            "--out" => {
                options.out_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--cache-dir" => {
                options.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--cache-dir requires a directory".to_string())?,
                );
            }
            name if name.starts_with("--") => return Err(format!("unknown option `{name}`")),
            name => options.names.push(name.to_string()),
        }
    }
    Ok(options)
}

fn profile_for(options: &Options) -> Profile {
    let mut profile = if options.full {
        Profile::full()
    } else {
        Profile::quick()
    };
    if let Some(instr) = options.instructions_per_core {
        profile.instructions_per_core = instr;
    }
    if let Some(cores) = options.cores {
        profile.cores = cores;
    }
    if let Some(channels) = options.channels {
        profile.channels = channels;
    }
    if let Some(attack) = options.attack {
        profile.attack = Some(attack);
    }
    profile
}

/// Runs the CLI against explicit arguments (everything after the binary
/// name) and returns the process exit code.
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return 2;
        }
    };
    match options.command {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::List => {
            let profile = profile_for(&options);
            println!(
                "{} registered campaigns ({} profile):\n",
                all_campaigns(&profile).len(),
                if profile.full { "full" } else { "quick" }
            );
            println!("{:<10} {:>9}  title", "name", "scenarios");
            for campaign in all_campaigns(&profile) {
                println!(
                    "{:<10} {:>9}  {}",
                    campaign.name,
                    campaign.scenarios.len(),
                    campaign.title
                );
            }
            0
        }
        Command::Mitigations => {
            let registry = system_sim::mitigation_registry();
            println!("{} registered mitigation setups:\n", registry.len());
            println!("{:<14} {:<34} {:<9}  summary", "slug", "label", "timing");
            for descriptor in registry {
                println!(
                    "{:<14} {:<34} {:<9}  {}",
                    descriptor.slug,
                    descriptor.label,
                    if descriptor.is_activity_dependent() {
                        "leaky"
                    } else {
                        "constant"
                    },
                    descriptor.summary
                );
            }
            0
        }
        Command::Attacks => {
            let registry = workloads::attack_registry();
            println!("{} registered attack patterns:\n", registry.len());
            println!("{:<16} {:<24} summary", "slug", "label");
            for descriptor in registry {
                println!(
                    "{:<16} {:<24} {}",
                    descriptor.slug, descriptor.label, descriptor.summary
                );
            }
            0
        }
        Command::Run => run_command(&options),
    }
}

/// Entry point for `std::env::args`-based binaries.
#[must_use]
pub fn main_from_env() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_cli(&args)
}

/// Delegation shim for the former per-figure bench binaries: forwards any
/// recognised legacy flags (`--full`, `--instr`, `--workers`) and runs the
/// named campaign.
#[must_use]
pub fn delegate(campaign_name: &str) -> i32 {
    let mut args = vec!["run".to_string(), campaign_name.to_string()];
    let mut env = std::env::args().skip(1);
    while let Some(arg) = env.next() {
        match arg.as_str() {
            "--full" => args.push(arg),
            "--instr" | "--workers" | "--engine" | "--channels" | "--attack" => {
                if let Some(value) = env.next() {
                    args.push(arg);
                    args.push(value);
                }
            }
            _ => {}
        }
    }
    run_cli(&args)
}

fn run_command(options: &Options) -> i32 {
    let profile = profile_for(options);
    let campaigns = if options.all {
        all_campaigns(&profile)
    } else if options.names.is_empty() {
        eprintln!("error: `run` needs campaign names or --all\n\n{USAGE}");
        return 2;
    } else {
        let mut selected = Vec::new();
        for name in &options.names {
            match find_campaign(name, &profile) {
                Some(campaign) => selected.push(campaign),
                None => {
                    let known: Vec<String> = all_campaigns(&profile)
                        .into_iter()
                        .map(|c| c.name)
                        .collect();
                    eprintln!(
                        "error: unknown campaign `{name}` (known: {})",
                        known.join(", ")
                    );
                    return 2;
                }
            }
        }
        selected
    };

    let artifact_root = options
        .out_dir
        .clone()
        .unwrap_or_else(ArtifactStore::default_root);
    let cache_root = options
        .cache_dir
        .clone()
        .unwrap_or_else(ResultCache::default_root);

    for campaign in &campaigns {
        let mut runner = CampaignRunner::new()
            .with_progress(true)
            .with_engine(options.engine)
            .with_artifacts(ArtifactStore::new(&artifact_root));
        if let Some(workers) = options.workers {
            runner = runner.with_workers(workers);
        }
        if !options.no_cache {
            match ResultCache::open(&cache_root) {
                Ok(cache) => runner = runner.with_cache(cache),
                Err(error) => {
                    eprintln!(
                        "error: cannot open cache at {}: {error}",
                        cache_root.display()
                    );
                    return 1;
                }
            }
        }

        println!("== {} — {}", campaign.name, campaign.title);
        match runner.run(campaign) {
            Ok(summary) => print_summary(campaign.name.as_str(), &summary),
            Err(error) => {
                eprintln!("error: campaign {} failed: {error}", campaign.name);
                return 1;
            }
        }
        println!();
    }
    0
}

fn print_summary(name: &str, summary: &RunSummary) {
    println!(
        "[{name}] {} scenarios ({} cached, {} executed) in {:.1} s",
        summary.records.len(),
        summary.cached,
        summary.executed,
        summary.wall_ms / 1e3
    );
    // Cells that could not be configured as specified (e.g. no safe
    // TB-Window for the threshold) record a `config_error` metric instead
    // of results; surface them so a sweep cannot silently lose a setup.
    let broken: Vec<&ScenarioRecord> = summary
        .records
        .iter()
        .filter(|r| r.metrics.contains_key("config_error"))
        .collect();
    if !broken.is_empty() {
        println!(
            "[{name}] WARNING: {} scenario(s) failed to configure:",
            broken.len()
        );
        for record in broken {
            println!(
                "[{name}]   {}: {}",
                record.scenario.name,
                record
                    .metrics
                    .get("config_error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
            );
        }
    }
    for (label, mean) in mean_normalized_by_setup(&summary.records) {
        println!("[{name}]   mean normalised performance, {label}: {mean:.3}");
    }
    if let Some(paths) = &summary.artifacts {
        println!("[{name}] artifacts: {}", paths.json.display());
        println!("[{name}]            {}", paths.csv.display());
    }
}

/// Mean of the `normalized_performance` metric grouped by the `setup` label,
/// in first-seen order — the headline number of every performance campaign.
fn mean_normalized_by_setup(records: &[ScenarioRecord]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, (f64, usize)> =
        std::collections::HashMap::new();
    for record in records {
        let (Some(setup), Some(value)) = (
            record.metrics.get("setup").and_then(Value::as_str),
            record
                .metrics
                .get("normalized_performance")
                .and_then(Value::as_f64),
        ) else {
            continue;
        };
        let entry = sums.entry(setup.to_string()).or_insert_with(|| {
            order.push(setup.to_string());
            (0.0, 0)
        });
        entry.0 += value;
        entry.1 += 1;
    }
    order
        .into_iter()
        .map(|label| {
            let (sum, count) = sums[&label];
            (label, sum / count as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_run_flags() {
        let options = parse(&args(&[
            "run",
            "fig10",
            "--full",
            "--instr",
            "5000",
            "--workers",
            "3",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Run);
        assert_eq!(options.names, vec!["fig10".to_string()]);
        assert!(options.full && options.no_cache);
        assert_eq!(options.instructions_per_core, Some(5000));
        assert_eq!(options.workers, Some(3));
    }

    #[test]
    fn rejects_unknown_options_and_commands() {
        assert!(parse(&args(&["run", "--bogus"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_and_validates_channels() {
        let options = parse(&args(&["run", "scaling", "--channels", "4"])).unwrap();
        assert_eq!(options.channels, Some(4));
        assert_eq!(profile_for(&options).channels, 4);
        assert!(parse(&args(&["run", "fig10", "--channels", "3"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--channels", "0"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--channels"])).is_err());
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).channels,
            1
        );
    }

    #[test]
    fn parses_engine_selection() {
        let options = parse(&args(&["run", "fig10", "--engine", "tick"])).unwrap();
        assert_eq!(options.engine, EngineKind::Tick);
        let options = parse(&args(&["run", "fig10", "--engine", "event"])).unwrap();
        assert_eq!(options.engine, EngineKind::Event);
        assert_eq!(
            parse(&args(&["run", "fig10"])).unwrap().engine,
            EngineKind::Event
        );
        assert!(parse(&args(&["run", "fig10", "--engine", "warp"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--engine"])).is_err());
    }

    #[test]
    fn listing_and_unknown_campaigns_exit_cleanly() {
        assert_eq!(run_cli(&args(&["list"])), 0);
        assert_eq!(run_cli(&args(&["mitigations"])), 0);
        assert_eq!(run_cli(&args(&["attacks"])), 0);
        assert_eq!(run_cli(&args(&["help"])), 0);
        assert_eq!(run_cli(&args(&["run", "no-such-campaign"])), 2);
        assert_eq!(run_cli(&args(&["run"])), 2);
    }

    #[test]
    fn parses_and_validates_attack_slugs() {
        let options = parse(&args(&["run", "fig10", "--attack", "nsided8"])).unwrap();
        assert_eq!(options.attack, Some(AttackKind::ManySided { sides: 8 }));
        assert_eq!(
            profile_for(&options).attack,
            Some(AttackKind::ManySided { sides: 8 })
        );
        assert!(parse(&args(&["run", "fig10", "--attack", "bogus"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--attack"])).is_err());
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).attack,
            None
        );
    }
}
