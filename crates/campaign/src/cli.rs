//! The `prac-bench` command-line interface.
//!
//! * `prac-bench list` — enumerate the registered campaigns,
//! * `prac-bench run <name>... | --all` — run campaigns through the parallel
//!   runner with the incremental cache and JSON/CSV artifacts,
//! * `prac-bench serve` / `query` — the result store as a long-running
//!   NDJSON query service and its scripting client,
//! * `prac-bench store <stats|verify|compact|export|import|bench>` — direct
//!   store maintenance,
//! * the former `fig*`/`table*` binaries delegate here via [`delegate`].

use std::path::PathBuf;

use dram_sim::DeviceProfile;
use result_store::{Bundle, ResultStore};
use serde_json::{Map, Value};
use system_sim::{AttackKind, EngineKind};

use crate::artifact::ArtifactStore;
use crate::cache::ResultCache;
use crate::registry::{all_campaigns, find_campaign, Profile};
use crate::runner::{CampaignRunner, RunSummary, ScenarioRecord};
use crate::serve::{client, Server};
use crate::trajectory;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: Command,
    names: Vec<String>,
    all: bool,
    full: bool,
    instructions_per_core: Option<u64>,
    cores: Option<u32>,
    channels: Option<u32>,
    ranks: Option<u32>,
    device_profile: Option<DeviceProfile>,
    attack: Option<AttackKind>,
    workers: Option<usize>,
    engine: EngineKind,
    fork_prefix: bool,
    sim_threads: usize,
    no_cache: bool,
    out_dir: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    addr: Option<String>,
    socket: Option<PathBuf>,
    spec_json: Option<String>,
    key: Option<String>,
    protocol_op: Option<&'static str>,
    append: Option<PathBuf>,
    lookups: Option<u64>,
    commit: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    List,
    Mitigations,
    Attacks,
    Profiles,
    Run,
    Serve,
    Query,
    Store,
    Bench,
    Help,
}

/// Default TCP endpoint of `prac-bench serve`.
const DEFAULT_ADDR: &str = "127.0.0.1:7117";

const USAGE: &str = "prac-bench — unified campaign runner for the PRACLeak/TPRAC evaluation

USAGE:
    prac-bench list [--full]
    prac-bench mitigations
    prac-bench attacks
    prac-bench profiles
    prac-bench run <name>... [options]
    prac-bench run --all [options]
    prac-bench serve [--addr H:P | --socket PATH] [--cache-dir DIR] [--engine E]
    prac-bench query [--addr H:P | --socket PATH] <what>
    prac-bench store <stats|verify|compact> [--cache-dir DIR]
    prac-bench store <export|import> <FILE> [--cache-dir DIR]
    prac-bench store bench [--lookups N] [--append FILE] [--commit HASH]
    prac-bench bench sim [--engine E] [--append FILE] [--commit HASH]
    prac-bench bench trajectory [SIM_FILE] [STORE_FILE]

COMMANDS:
    list              Enumerate the registered campaigns
    mitigations       Enumerate the registered mitigation setups
    attacks           Enumerate the registered attack patterns
    profiles          Enumerate the named DDR5 device timing profiles
    run               Execute campaigns through the parallel runner
    serve             Answer scenario queries from the result store over
                      newline-delimited JSON (run-on-miss, persist, reply)
    query             One-shot client for a running `serve`; <what> is a
                      <campaign> <scenario> pair, --spec-json JSON,
                      --key HEX, --ping, --stats or --shutdown
    store             Inspect or maintain the result store directly
    bench             Perf-trajectory tooling: `bench sim` micro-benchmarks
                      the event-core kernels (wheel churn, bank min-reduce,
                      scheduler scan) plus the fig10-quick and 4-channel
                      scaling-quick wall clocks; `bench trajectory` renders
                      the recorded trajectories (default BENCH_sim.json +
                      BENCH_store.json) as markdown tables

OPTIONS:
    --all             Run every registered campaign
    --quick           Reduced sweeps and budgets (default)
    --full            Paper-scale sweeps and budgets
    --instr <N>       Override instructions per core for performance cells
    --cores <N>       Override core count for performance cells
    --channels <N>    Override memory-channel count for performance cells
                      (power of two; the `scaling` campaign sweeps its own
                      channel counts and ignores this knob)
    --ranks <N>       Override ranks per channel for performance cells
                      (power of two; default: the device organization's own
                      rank count; the `scaling` campaign sweeps its own
                      rank counts and ignores this knob)
    --profile <SLUG>  Run cells against a named DDR5 device timing profile
                      (see `prac-bench profiles` for slugs; default:
                      jedec-baseline)
    --attack <SLUG>   Run performance cells with an adversarial co-runner on
                      one extra core (see `prac-bench attacks` for slugs;
                      the `attacks` campaign sweeps its own patterns and
                      ignores this knob)
    --workers <N>     Worker threads (default: all hardware threads)
    --engine <E>      Simulation engine: `event` (default) jumps between
                      component wake-ups; `tick` is the legacy per-cycle
                      loop.  Results are bit-identical either way.
    --fork-prefix <M> `on` (default) groups performance cells that differ
                      only in their mitigation setup, simulates their shared
                      traces/baseline/prefix once and forks per cell; `off`
                      runs every cell cold.  Results are bit-identical
                      either way.
    --sim-threads <N> Worker threads stepping due memory channels of one
                      event round in parallel inside each simulation
                      (default 1: sequential).  Multiplies with --workers.
                      Results are bit-identical for every value.
    --no-cache        Ignore and do not update the incremental result cache
    --out <DIR>       Artifact root (default: target/campaigns)
    --cache-dir <DIR> Result store root (default: target/campaigns/cache)
    --addr <H:P>      serve/query TCP endpoint (default: 127.0.0.1:7117)
    --socket <PATH>   serve/query Unix domain socket instead of TCP
    --spec-json <J>   query: canonical scenario spec JSON to look up / run
    --key <HEX>       query: fetch a stored record by 16-hex-digit key
    --ping            query: liveness check
    --stats           query: store statistics from the server
    --shutdown        query: ask the server to stop cleanly
    --lookups <N>     store bench: lookups to time (default: 10000)
    --append <FILE>   store/sim bench: append the measurement to a JSON
                      trajectory file (e.g. BENCH_store.json / BENCH_sim.json);
                      fails loudly if the existing file is malformed
    --commit <HASH>   store/sim bench: record this short git commit hash in
                      the appended entry (CI passes `git rev-parse --short
                      HEAD`; the bench never shells out to git itself)

Artifacts are written to <out>/<campaign>/results.{json,csv}; cached cells
are reused when the scenario configuration (including seeds and budgets) is
unchanged.";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        command: Command::Help,
        names: Vec::new(),
        all: false,
        full: false,
        instructions_per_core: None,
        cores: None,
        channels: None,
        ranks: None,
        device_profile: None,
        attack: None,
        workers: None,
        engine: EngineKind::default(),
        fork_prefix: true,
        sim_threads: 1,
        no_cache: false,
        out_dir: None,
        cache_dir: None,
        addr: None,
        socket: None,
        spec_json: None,
        key: None,
        protocol_op: None,
        append: None,
        lookups: None,
        commit: None,
    };
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("list") => options.command = Command::List,
        Some("mitigations") => options.command = Command::Mitigations,
        Some("attacks") => options.command = Command::Attacks,
        Some("profiles") => options.command = Command::Profiles,
        Some("run") => options.command = Command::Run,
        Some("serve") => options.command = Command::Serve,
        Some("query") => options.command = Command::Query,
        Some("store") => options.command = Command::Store,
        Some("bench") => options.command = Command::Bench,
        Some("help" | "--help" | "-h") | None => return Ok(options),
        Some(other) => return Err(format!("unknown command `{other}`")),
    }
    let mut iter = iter.peekable();
    while let Some(arg) = iter.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            iter.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a numeric argument"))
        };
        match arg.as_str() {
            "--all" => options.all = true,
            "--full" => options.full = true,
            "--quick" => options.full = false,
            "--no-cache" => options.no_cache = true,
            "--instr" => options.instructions_per_core = Some(numeric("--instr")?),
            "--cores" => options.cores = Some(numeric("--cores")? as u32),
            "--channels" => {
                options.channels = Some(power_of_two_flag("--channels", numeric("--channels")?)?);
            }
            "--ranks" => {
                options.ranks = Some(power_of_two_flag("--ranks", numeric("--ranks")?)?);
            }
            "--profile" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--profile requires a device-profile slug".to_string())?;
                options.device_profile = Some(DeviceProfile::parse(value).ok_or_else(|| {
                    let known: Vec<&str> = DeviceProfile::registry()
                        .into_iter()
                        .map(DeviceProfile::slug)
                        .collect();
                    format!(
                        "unknown device profile `{value}` (known: {})",
                        known.join(", ")
                    )
                })?);
            }
            "--attack" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--attack requires a pattern slug".to_string())?;
                options.attack = Some(AttackKind::parse_slug(value).ok_or_else(|| {
                    let known: Vec<String> = workloads::attack_registry()
                        .into_iter()
                        .map(|descriptor| descriptor.slug)
                        .collect();
                    format!(
                        "unknown attack pattern `{value}` (known: {})",
                        known.join(", ")
                    )
                })?);
            }
            "--workers" => options.workers = Some(numeric("--workers")? as usize),
            "--engine" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--engine requires `tick` or `event`".to_string())?;
                options.engine = EngineKind::parse(value)
                    .ok_or_else(|| format!("unknown engine `{value}` (use `tick` or `event`)"))?;
            }
            "--sim-threads" => {
                let sim_threads = numeric("--sim-threads")? as usize;
                if sim_threads == 0 {
                    return Err("--sim-threads must be at least 1".to_string());
                }
                options.sim_threads = sim_threads;
            }
            "--fork-prefix" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--fork-prefix requires `on` or `off`".to_string())?;
                options.fork_prefix = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "unknown --fork-prefix value `{other}` (use `on` or `off`)"
                        ))
                    }
                };
            }
            "--out" => {
                options.out_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--cache-dir" => {
                options.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--cache-dir requires a directory".to_string())?,
                );
            }
            "--addr" => {
                options.addr = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| "--addr requires host:port".to_string())?,
                );
            }
            "--socket" => {
                options.socket = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--socket requires a path".to_string())?,
                );
            }
            "--spec-json" => {
                options.spec_json = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| "--spec-json requires a JSON object".to_string())?,
                );
            }
            "--key" => {
                options.key = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| "--key requires a 16-hex-digit key".to_string())?,
                );
            }
            "--ping" => options.protocol_op = Some("ping"),
            "--stats" => options.protocol_op = Some("stats"),
            "--shutdown" => options.protocol_op = Some("shutdown"),
            "--lookups" => options.lookups = Some(numeric("--lookups")?),
            "--append" => {
                options.append = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--append requires a file".to_string())?,
                );
            }
            "--commit" => {
                options.commit = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| "--commit requires a hash".to_string())?,
                );
            }
            name if name.starts_with("--") => return Err(format!("unknown option `{name}`")),
            name => options.names.push(name.to_string()),
        }
    }
    Ok(options)
}

/// Validates a power-of-two topology flag.  The wording mirrors the
/// simulator's own `ExperimentConfig` validation so the CLI and the library
/// reject a bad count with the same message, naming the accepted range.
fn power_of_two_flag(name: &str, value: u64) -> Result<u32, String> {
    let value = u32::try_from(value)
        .map_err(|_| format!("{name} must be a power of two (1, 2, 4, ...), got {value}"))?;
    if value == 0 || !value.is_power_of_two() {
        return Err(format!(
            "{name} must be a power of two (1, 2, 4, ...), got {value}"
        ));
    }
    Ok(value)
}

fn profile_for(options: &Options) -> Profile {
    let mut profile = if options.full {
        Profile::full()
    } else {
        Profile::quick()
    };
    if let Some(instr) = options.instructions_per_core {
        profile.instructions_per_core = instr;
    }
    if let Some(cores) = options.cores {
        profile.cores = cores;
    }
    if let Some(channels) = options.channels {
        profile.channels = channels;
    }
    if let Some(ranks) = options.ranks {
        profile.ranks = ranks;
    }
    if let Some(device_profile) = options.device_profile {
        profile.device_profile = device_profile;
    }
    if let Some(attack) = options.attack {
        profile.attack = Some(attack);
    }
    profile
}

/// Runs the CLI against explicit arguments (everything after the binary
/// name) and returns the process exit code.
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return 2;
        }
    };
    match options.command {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::List => {
            let profile = profile_for(&options);
            println!(
                "{} registered campaigns ({} profile):\n",
                all_campaigns(&profile).len(),
                if profile.full { "full" } else { "quick" }
            );
            println!("{:<10} {:>9}  title", "name", "scenarios");
            for campaign in all_campaigns(&profile) {
                println!(
                    "{:<10} {:>9}  {}",
                    campaign.name,
                    campaign.scenarios.len(),
                    campaign.title
                );
            }
            0
        }
        Command::Mitigations => {
            let registry = system_sim::mitigation_registry();
            println!("{} registered mitigation setups:\n", registry.len());
            println!("{:<14} {:<34} {:<9}  summary", "slug", "label", "timing");
            for descriptor in registry {
                println!(
                    "{:<14} {:<34} {:<9}  {}",
                    descriptor.slug,
                    descriptor.label,
                    if descriptor.is_activity_dependent() {
                        "leaky"
                    } else {
                        "constant"
                    },
                    descriptor.summary
                );
            }
            0
        }
        Command::Attacks => {
            let registry = workloads::attack_registry();
            println!("{} registered attack patterns:\n", registry.len());
            println!("{:<16} {:<24} summary", "slug", "label");
            for descriptor in registry {
                println!(
                    "{:<16} {:<24} {}",
                    descriptor.slug, descriptor.label, descriptor.summary
                );
            }
            0
        }
        Command::Profiles => {
            let registry = DeviceProfile::registry();
            println!("{} named device timing profiles:\n", registry.len());
            println!(
                "{:<16} {:<22} {:>8} {:>9} {:>11} {:<10}  summary",
                "slug", "label", "tRFC", "tRFMab", "PRAC", "on-die ECC"
            );
            for profile in registry {
                let timing = profile.timing();
                let prac: Vec<String> = prac_core::config::PracLevel::all()
                    .into_iter()
                    .filter(|level| profile.supports_prac_level(*level))
                    .map(|level| level.rfms_per_alert().to_string())
                    .collect();
                let ecc = profile.on_die_ecc().map_or_else(
                    || "none".to_string(),
                    |ecc| format!("SEC/{}b", ecc.codeword_bits),
                );
                println!(
                    "{:<16} {:<22} {:>7}t {:>8}t {:>11} {:<10}  {}",
                    profile.slug(),
                    profile.label(),
                    timing.t_rfc,
                    timing.t_rfmab,
                    prac.join("/"),
                    ecc,
                    profile.summary()
                );
            }
            0
        }
        Command::Run => run_command(&options),
        Command::Serve => serve_command(&options),
        Command::Query => query_command(&options),
        Command::Store => store_command(&options),
        Command::Bench => bench_command(&options),
    }
}

/// Entry point for `std::env::args`-based binaries.
#[must_use]
pub fn main_from_env() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_cli(&args)
}

/// Delegation shim for the former per-figure bench binaries: forwards any
/// recognised legacy flags (`--full`, `--instr`, `--workers`) and runs the
/// named campaign.
#[must_use]
pub fn delegate(campaign_name: &str) -> i32 {
    let mut args = vec!["run".to_string(), campaign_name.to_string()];
    let mut env = std::env::args().skip(1);
    while let Some(arg) = env.next() {
        match arg.as_str() {
            "--full" => args.push(arg),
            "--instr" | "--workers" | "--engine" | "--channels" | "--ranks" | "--profile"
            | "--attack" => {
                if let Some(value) = env.next() {
                    args.push(arg);
                    args.push(value);
                }
            }
            _ => {}
        }
    }
    run_cli(&args)
}

fn run_command(options: &Options) -> i32 {
    let profile = profile_for(options);
    let campaigns = if options.all {
        all_campaigns(&profile)
    } else if options.names.is_empty() {
        eprintln!("error: `run` needs campaign names or --all\n\n{USAGE}");
        return 2;
    } else {
        let mut selected = Vec::new();
        for name in &options.names {
            match find_campaign(name, &profile) {
                Some(campaign) => selected.push(campaign),
                None => {
                    let known: Vec<String> = all_campaigns(&profile)
                        .into_iter()
                        .map(|c| c.name)
                        .collect();
                    eprintln!(
                        "error: unknown campaign `{name}` (known: {})",
                        known.join(", ")
                    );
                    return 2;
                }
            }
        }
        selected
    };

    let artifact_root = options
        .out_dir
        .clone()
        .unwrap_or_else(ArtifactStore::default_root);
    let cache_root = options
        .cache_dir
        .clone()
        .unwrap_or_else(ResultCache::default_root);

    // One store handle for the whole invocation: campaigns share the index
    // (and its single writer) instead of re-opening the store per campaign.
    let cache = if options.no_cache {
        None
    } else {
        match ResultCache::open(&cache_root) {
            Ok(cache) => Some(cache),
            Err(error) => {
                eprintln!(
                    "error: cannot open cache at {}: {error}",
                    cache_root.display()
                );
                return 1;
            }
        }
    };

    for campaign in &campaigns {
        let mut runner = CampaignRunner::new()
            .with_progress(true)
            .with_engine(options.engine)
            .with_fork_prefix(options.fork_prefix)
            .with_sim_threads(options.sim_threads)
            .with_artifacts(ArtifactStore::new(&artifact_root));
        if let Some(workers) = options.workers {
            runner = runner.with_workers(workers);
        }
        if let Some(cache) = &cache {
            runner = runner.with_cache(cache.clone());
        }

        println!("== {} — {}", campaign.name, campaign.title);
        match runner.run(campaign) {
            Ok(summary) => print_summary(campaign.name.as_str(), &summary),
            Err(error) => {
                eprintln!("error: campaign {} failed: {error}", campaign.name);
                return 1;
            }
        }
        println!();
    }
    if let Some(cache) = &cache {
        if let Err(error) = cache.flush() {
            eprintln!("warning: cache flush failed: {error}");
        }
    }
    0
}

fn serve_command(options: &Options) -> i32 {
    let store_root = options
        .cache_dir
        .clone()
        .unwrap_or_else(ResultCache::default_root);
    let cache = match ResultCache::open(&store_root) {
        Ok(cache) => cache,
        Err(error) => {
            eprintln!(
                "error: cannot open store at {}: {error}",
                store_root.display()
            );
            return 1;
        }
    };
    let server = Server::new(cache, options.engine);

    if let Some(socket) = &options.socket {
        #[cfg(unix)]
        {
            let _ = std::fs::remove_file(socket);
            let listener = match std::os::unix::net::UnixListener::bind(socket) {
                Ok(listener) => listener,
                Err(error) => {
                    eprintln!("error: cannot bind {}: {error}", socket.display());
                    return 1;
                }
            };
            println!(
                "serving result store {} on unix socket {}",
                store_root.display(),
                socket.display()
            );
            let outcome = server.serve_unix(&listener);
            let _ = std::fs::remove_file(socket);
            return finish_serve(outcome);
        }
        #[cfg(not(unix))]
        {
            eprintln!("error: --socket is only available on Unix platforms");
            return 1;
        }
    }

    let addr = options.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.into());
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("error: cannot bind {addr}: {error}");
            return 1;
        }
    };
    let resolved = listener
        .local_addr()
        .map_or(addr.clone(), |a| a.to_string());
    println!(
        "serving result store {} on {resolved}",
        store_root.display()
    );
    finish_serve(server.serve_tcp(&listener))
}

fn finish_serve(outcome: std::io::Result<()>) -> i32 {
    match outcome {
        Ok(()) => {
            println!("serve: clean shutdown, store flushed");
            0
        }
        Err(error) => {
            eprintln!("error: serve loop failed: {error}");
            1
        }
    }
}

fn query_command(options: &Options) -> i32 {
    let request = match build_query_request(options) {
        Ok(request) => request,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return 2;
        }
    };
    let response = if let Some(socket) = &options.socket {
        #[cfg(unix)]
        {
            client::request_unix(socket, &request)
        }
        #[cfg(not(unix))]
        {
            let _ = socket;
            Err(std::io::Error::other(
                "--socket is only available on Unix platforms",
            ))
        }
    } else {
        let addr = options.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.into());
        client::request_tcp(addr.as_str(), &request)
    };
    match response {
        Ok(reply) => {
            println!("{reply}");
            i32::from(reply.get("ok") != Some(&Value::Bool(true)))
        }
        Err(error) => {
            eprintln!("error: query failed: {error}");
            1
        }
    }
}

/// Builds the protocol request for `prac-bench query` from the flags (or a
/// `<campaign> <scenario>` pair resolved through the registry).
fn build_query_request(options: &Options) -> Result<Value, String> {
    let mut request = Map::new();
    if let Some(op) = options.protocol_op {
        request.insert("op".into(), op.into());
        return Ok(Value::Object(request));
    }
    if let Some(key) = &options.key {
        request.insert("op".into(), "get".into());
        request.insert("key".into(), key.as_str().into());
        return Ok(Value::Object(request));
    }
    if let Some(text) = &options.spec_json {
        let spec =
            serde_json::from_str(text).map_err(|error| format!("bad --spec-json: {error}"))?;
        request.insert("op".into(), "query".into());
        request.insert("spec".into(), spec);
        return Ok(Value::Object(request));
    }
    if let [campaign_name, scenario_name] = options.names.as_slice() {
        let profile = profile_for(options);
        let campaign = find_campaign(campaign_name, &profile)
            .ok_or_else(|| format!("unknown campaign `{campaign_name}`"))?;
        let scenario = campaign
            .scenarios
            .iter()
            .find(|scenario| &scenario.name == scenario_name)
            .ok_or_else(|| {
                format!("campaign `{campaign_name}` has no scenario `{scenario_name}`")
            })?;
        request.insert("op".into(), "query".into());
        request.insert("spec".into(), scenario.spec.to_json());
        return Ok(Value::Object(request));
    }
    Err(
        "`query` needs <campaign> <scenario>, --spec-json, --key, --ping, --stats or --shutdown"
            .into(),
    )
}

fn store_command(options: &Options) -> i32 {
    let store_root = options
        .cache_dir
        .clone()
        .unwrap_or_else(ResultCache::default_root);
    let action = options.names.first().map(String::as_str);
    if action == Some("bench") {
        return store_bench(options);
    }
    let store = match ResultStore::open(&store_root) {
        Ok(store) => store,
        Err(error) => {
            eprintln!(
                "error: cannot open store at {}: {error}",
                store_root.display()
            );
            return 1;
        }
    };
    match action {
        Some("stats") => {
            let stats = store.stats();
            println!("store:              {}", store_root.display());
            println!("live records:       {}", stats.live_records);
            println!("total records:      {}", stats.total_records);
            println!("superseded records: {}", stats.superseded_records);
            println!("corrupt lines:      {}", stats.corrupt_lines);
            println!("segments:           {}", stats.segments);
            println!("bytes:              {}", stats.bytes);
            println!("dedup ratio:        {:.3}", stats.dedup_ratio());
            0
        }
        Some("verify") => match store.verify() {
            Ok(report) => {
                println!("records verified:   {}", report.records_verified);
                println!("corrupt lines:      {}", report.corrupt_lines);
                println!("key mismatches:     {}", report.key_mismatches);
                println!("missing from index: {}", report.missing_from_index);
                if report.is_clean() {
                    println!("store verifies clean");
                    0
                } else {
                    eprintln!("error: store verification FAILED");
                    1
                }
            }
            Err(error) => {
                eprintln!("error: verify failed: {error}");
                1
            }
        },
        Some("compact") => match store.compact() {
            Ok(report) => {
                println!(
                    "compacted {} records ({} bytes) -> {} records ({} bytes)",
                    report.records_before,
                    report.bytes_before,
                    report.records_after,
                    report.bytes_after
                );
                0
            }
            Err(error) => {
                eprintln!("error: compact failed: {error}");
                1
            }
        },
        Some(verb @ ("export" | "import")) => {
            let Some(file) = options.names.get(1).map(PathBuf::from) else {
                eprintln!("error: `store {verb}` needs a bundle file\n\n{USAGE}");
                return 2;
            };
            let outcome = if verb == "export" {
                Bundle::export(&store, &file)
            } else {
                Bundle::import(&store, &file)
            };
            match outcome {
                Ok(report) if verb == "export" => {
                    println!("exported {} records to {}", report.records, file.display());
                    0
                }
                Ok(report) => {
                    println!(
                        "imported {} of {} records from {} ({} already present)",
                        report.imported,
                        report.records,
                        file.display(),
                        report.skipped
                    );
                    0
                }
                Err(error) => {
                    eprintln!("error: {verb} failed: {error}");
                    1
                }
            }
        }
        _ => {
            eprintln!(
                "error: `store` needs stats, verify, compact, export, import or bench\n\n{USAGE}"
            );
            2
        }
    }
}

/// `prac-bench store bench`: measures store lookup latency on a synthetic
/// store plus the no-cache fig10-quick wall-clock, and optionally appends
/// the measurement to a JSON trajectory file (ROADMAP item 3's tracked
/// baseline).
fn store_bench(options: &Options) -> i32 {
    use std::time::Instant;

    const BENCH_RECORDS: u64 = 1_000;
    let lookups = options.lookups.unwrap_or(10_000).max(1);

    // A throwaway store with a known population.
    let root = std::env::temp_dir().join(format!("prac-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = match ResultStore::open(&root) {
        Ok(store) => store,
        Err(error) => {
            eprintln!("error: cannot open bench store: {error}");
            return 1;
        }
    };
    for n in 0..BENCH_RECORDS {
        let mut payload = Map::new();
        payload.insert("value".into(), n.into());
        let record = result_store::StoreRecord::new(format!("bench-{n}"), Value::Object(payload));
        if let Err(error) = store.insert(&record) {
            eprintln!("error: bench insert failed: {error}");
            return 1;
        }
    }
    let keys = store.keys();
    let mut samples_ns: Vec<u64> = Vec::with_capacity(lookups as usize);
    for n in 0..lookups {
        let key = keys[(n % BENCH_RECORDS) as usize];
        let started = Instant::now();
        let hit = store.get(key).is_some();
        samples_ns.push(started.elapsed().as_nanos() as u64);
        assert!(hit, "bench store lookup must hit");
    }
    samples_ns.sort_unstable();
    let mean_ns = samples_ns.iter().sum::<u64>() as f64 / samples_ns.len() as f64;
    let p50_ns = samples_ns[samples_ns.len() / 2];
    let _ = std::fs::remove_dir_all(&root);

    // The end-to-end yardstick: fig10 quick, no cache.
    let campaign = find_campaign("fig10", &Profile::quick()).expect("fig10 is registered");
    let runner = CampaignRunner::new().with_engine(options.engine);
    let fig10_wall_ms = match runner.run(&campaign) {
        Ok(summary) => summary.wall_ms,
        Err(error) => {
            eprintln!("error: fig10 bench run failed: {error}");
            return 1;
        }
    };

    println!("store lookups:        {lookups} over {BENCH_RECORDS} records");
    println!("lookup latency mean:  {mean_ns:.0} ns");
    println!("lookup latency p50:   {p50_ns} ns");
    println!("fig10 quick no-cache: {fig10_wall_ms:.1} ms");

    if let Some(path) = &options.append {
        let mut entry = trajectory::base_entry(options.commit.as_deref());
        entry.insert("records".into(), BENCH_RECORDS.into());
        entry.insert("lookups".into(), lookups.into());
        entry.insert("store_lookup_ns_mean".into(), mean_ns.into());
        entry.insert("store_lookup_ns_p50".into(), p50_ns.into());
        entry.insert("fig10_quick_wall_ms".into(), fig10_wall_ms.into());
        if let Err(error) = trajectory::append(path, entry) {
            eprintln!("error: cannot append to {}: {error}", path.display());
            return 1;
        }
        println!("appended measurement to {}", path.display());
    }
    0
}

fn bench_command(options: &Options) -> i32 {
    match options.names.first().map(String::as_str) {
        Some("sim") => sim_bench(options),
        Some("trajectory") => trajectory_report(options),
        _ => {
            eprintln!("error: `bench` needs sim or trajectory\n\n{USAGE}");
            2
        }
    }
}

/// `prac-bench bench sim`: micro-benchmarks the three event-core hot paths
/// reshaped by the data-layout pass — event-wheel churn, the branchless
/// per-device bank min-reduce and the allocation-free FR-FCFS candidate
/// scan — plus the end-to-end fig10-quick wall clock (cold and forked) and
/// the cold 4-channel scaling-quick wall clock, and optionally appends the
/// measurement to the `BENCH_sim.json` trajectory.
fn sim_bench(options: &Options) -> i32 {
    use std::hint::black_box;
    use std::time::Instant;

    use dram_sim::command::DramCommand;
    use dram_sim::device::{DramDevice, DramDeviceConfig};
    use dram_sim::org::DramAddress;
    use memctrl::scheduler::{FrFcfsScheduler, SchedulerCandidate};
    use system_sim::event::{EventSource, EventWheel};

    const WHEEL_ROUNDS: u64 = 1_000_000;
    const REDUCE_ROUNDS: u64 = 100_000;
    const SCAN_ROUNDS: u64 = 100_000;
    const SCAN_CANDIDATES: usize = 64;

    // Event-wheel churn: the engine's steady state is "re-register a few
    // sources, pop the next wake-up" — three pushes and one pop per round.
    let mut wheel = EventWheel::new();
    let started = Instant::now();
    let mut now = 0u64;
    for _ in 0..WHEEL_ROUNDS {
        wheel.reregister(EventSource::Cluster, Some(now + 3));
        wheel.reregister(EventSource::Controller, Some(now + 1));
        wheel.reregister(EventSource::Forwarding, Some(now + 2));
        now = wheel
            .next_after(now)
            .expect("an armed wheel yields a wake-up");
    }
    black_box(now);
    let wheel_push_pop_ns = started.elapsed().as_nanos() as f64 / WHEEL_ROUNDS as f64;

    // Bank min-reduce over the full paper geometry with half the banks
    // open, so both sides of the branchless open/precharged select stay
    // live.
    let config = DramDeviceConfig::paper_default();
    let org = config.organization;
    let mut device = DramDevice::new(config);
    for bank in 0..org.total_banks() {
        if bank % 2 != 0 {
            continue;
        }
        let addr = DramAddress {
            channel: 0,
            rank: bank / org.banks_per_rank(),
            bank_group: (bank / org.banks_per_group) % org.bank_groups,
            bank: bank % org.banks_per_group,
            row: bank,
            column: 0,
        };
        let _ = device.issue(DramCommand::Activate(addr), u64::from(bank) * 1_000);
    }
    let started = Instant::now();
    let mut acc = 0u64;
    for _ in 0..REDUCE_ROUNDS {
        acc = acc.wrapping_add(black_box(device.next_bank_transition_at()));
    }
    black_box(acc);
    let bank_min_reduce_ns = started.elapsed().as_nanos() as f64 / REDUCE_ROUNDS as f64;

    // FR-FCFS candidate scan: one `choose_from` pass over a queue-sized
    // candidate iterator, no per-call allocation.
    let template: Vec<SchedulerCandidate> = (0..SCAN_CANDIDATES)
        .map(|index| SchedulerCandidate {
            queue_index: index,
            address: DramAddress {
                channel: 0,
                rank: (index as u32) % org.ranks,
                bank_group: (index as u32) % org.bank_groups,
                bank: (index as u32) % org.banks_per_group,
                row: index as u32,
                column: 0,
            },
            row_hit: index % 3 == 0,
            arrival_tick: (97 * index as u64) % 1_024,
        })
        .collect();
    let scheduler = FrFcfsScheduler::paper_default();
    let started = Instant::now();
    let mut picked = 0usize;
    for _ in 0..SCAN_ROUNDS {
        let chosen = scheduler
            .choose_from(black_box(template.iter().copied()))
            .expect("a non-empty candidate set schedules something");
        picked = picked.wrapping_add(chosen.queue_index);
    }
    black_box(picked);
    let scheduler_scan_ns = started.elapsed().as_nanos() as f64 / SCAN_ROUNDS as f64;

    // The end-to-end yardstick: fig10 quick, no cache — once cold and once
    // with checkpoint/fork prefix sharing, so the trajectory tracks the
    // fork path's speedup alongside the kernel timings.
    let campaign = find_campaign("fig10", &Profile::quick()).expect("fig10 is registered");
    let fig10 = |fork_prefix: bool| {
        let runner = CampaignRunner::new()
            .with_engine(options.engine)
            .with_fork_prefix(fork_prefix);
        runner.run(&campaign).map(|summary| summary.wall_ms)
    };
    let (fig10_wall_ms, fig10_fork_wall_ms) = match (fig10(false), fig10(true)) {
        (Ok(cold), Ok(forked)) => (cold, forked),
        (Err(error), _) | (_, Err(error)) => {
            eprintln!("error: fig10 bench run failed: {error}");
            return 1;
        }
    };

    // The multi-channel yardstick: the 4-channel slice of the scaling
    // campaign, cold — the run whose wall clock the channel-sharded
    // execution work targets.
    let mut scaling = find_campaign("scaling", &Profile::quick()).expect("scaling is registered");
    scaling
        .scenarios
        .retain(|scenario| scenario.name.starts_with("ch4/"));
    assert!(
        !scaling.scenarios.is_empty(),
        "the scaling campaign lost its 4-channel cells"
    );
    let runner = CampaignRunner::new().with_engine(options.engine);
    let scaling_4ch_wall_ms = match runner.run(&scaling) {
        Ok(summary) => summary.wall_ms,
        Err(error) => {
            eprintln!("error: scaling 4ch bench run failed: {error}");
            return 1;
        }
    };

    println!("wheel push/pop:       {wheel_push_pop_ns:.1} ns/round ({WHEEL_ROUNDS} rounds)");
    println!(
        "bank min-reduce:      {bank_min_reduce_ns:.1} ns/call over {} banks",
        org.total_banks()
    );
    println!(
        "scheduler scan:       {scheduler_scan_ns:.1} ns/call over {SCAN_CANDIDATES} candidates"
    );
    println!("fig10 quick no-cache: {fig10_wall_ms:.1} ms");
    println!("fig10 quick forked:   {fig10_fork_wall_ms:.1} ms");
    println!("scaling quick 4ch:    {scaling_4ch_wall_ms:.1} ms");

    if let Some(path) = &options.append {
        let mut entry = trajectory::base_entry(options.commit.as_deref());
        entry.insert("wheel_push_pop_ns".into(), wheel_push_pop_ns.into());
        entry.insert("bank_min_reduce_ns".into(), bank_min_reduce_ns.into());
        entry.insert("scheduler_scan_ns".into(), scheduler_scan_ns.into());
        entry.insert("fig10_quick_wall_ms".into(), fig10_wall_ms.into());
        entry.insert("fig10_quick_fork_wall_ms".into(), fig10_fork_wall_ms.into());
        entry.insert(
            "scaling_quick_4ch_wall_ms".into(),
            scaling_4ch_wall_ms.into(),
        );
        if let Err(error) = trajectory::append(path, entry) {
            eprintln!("error: cannot append to {}: {error}", path.display());
            return 1;
        }
        println!("appended measurement to {}", path.display());
    }
    0
}

/// `prac-bench bench trajectory`: renders the recorded perf trajectories
/// (default `BENCH_sim.json` + `BENCH_store.json`) as the markdown tables
/// embedded in the README's "Perf trajectory" section.
fn trajectory_report(options: &Options) -> i32 {
    let sim_path = options
        .names
        .get(1)
        .map_or_else(|| PathBuf::from("BENCH_sim.json"), PathBuf::from);
    let store_path = options
        .names
        .get(2)
        .map_or_else(|| PathBuf::from("BENCH_store.json"), PathBuf::from);
    let sim = match trajectory::load(&sim_path) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("error: cannot read {}: {error}", sim_path.display());
            return 1;
        }
    };
    let store = match trajectory::load(&store_path) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("error: cannot read {}: {error}", store_path.display());
            return 1;
        }
    };
    print!("{}", trajectory::render_markdown(&sim, &store));
    0
}

fn print_summary(name: &str, summary: &RunSummary) {
    println!(
        "[{name}] {} scenarios ({} cached, {} executed) in {:.1} s",
        summary.records.len(),
        summary.cached,
        summary.executed,
        summary.wall_ms / 1e3
    );
    // Cells that could not be configured as specified (e.g. no safe
    // TB-Window for the threshold) record a `config_error` metric instead
    // of results; surface them so a sweep cannot silently lose a setup.
    let broken: Vec<&ScenarioRecord> = summary
        .records
        .iter()
        .filter(|r| r.metrics.contains_key("config_error"))
        .collect();
    if !broken.is_empty() {
        println!(
            "[{name}] WARNING: {} scenario(s) failed to configure:",
            broken.len()
        );
        for record in broken {
            println!(
                "[{name}]   {}: {}",
                record.scenario.name,
                record
                    .metrics
                    .get("config_error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
            );
        }
    }
    for (label, mean) in mean_normalized_by_setup(&summary.records) {
        println!("[{name}]   mean normalised performance, {label}: {mean:.3}");
    }
    if let Some(paths) = &summary.artifacts {
        println!("[{name}] artifacts: {}", paths.json.display());
        println!("[{name}]            {}", paths.csv.display());
    }
}

/// Mean of the `normalized_performance` metric grouped by the `setup` label,
/// in first-seen order — the headline number of every performance campaign.
fn mean_normalized_by_setup(records: &[ScenarioRecord]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, (f64, usize)> =
        std::collections::HashMap::new();
    for record in records {
        let (Some(setup), Some(value)) = (
            record.metrics.get("setup").and_then(Value::as_str),
            record
                .metrics
                .get("normalized_performance")
                .and_then(Value::as_f64),
        ) else {
            continue;
        };
        let entry = sums.entry(setup.to_string()).or_insert_with(|| {
            order.push(setup.to_string());
            (0.0, 0)
        });
        entry.0 += value;
        entry.1 += 1;
    }
    order
        .into_iter()
        .map(|label| {
            let (sum, count) = sums[&label];
            (label, sum / count as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_run_flags() {
        let options = parse(&args(&[
            "run",
            "fig10",
            "--full",
            "--instr",
            "5000",
            "--workers",
            "3",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Run);
        assert_eq!(options.names, vec!["fig10".to_string()]);
        assert!(options.full && options.no_cache);
        assert_eq!(options.instructions_per_core, Some(5000));
        assert_eq!(options.workers, Some(3));
    }

    #[test]
    fn rejects_unknown_options_and_commands() {
        assert!(parse(&args(&["run", "--bogus"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_and_validates_channels() {
        let options = parse(&args(&["run", "scaling", "--channels", "4"])).unwrap();
        assert_eq!(options.channels, Some(4));
        assert_eq!(profile_for(&options).channels, 4);
        assert!(parse(&args(&["run", "fig10", "--channels", "3"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--channels", "0"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--channels"])).is_err());
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).channels,
            1
        );
    }

    #[test]
    fn topology_flags_reject_bad_counts_naming_the_accepted_range() {
        // Both topology knobs share one validator, so a bad count is
        // rejected with identical wording that names the accepted range.
        for flag in ["--channels", "--ranks"] {
            let error = parse(&args(&["run", "fig10", flag, "3"])).unwrap_err();
            assert_eq!(
                error,
                format!("{flag} must be a power of two (1, 2, 4, ...), got 3")
            );
            let error = parse(&args(&["run", "fig10", flag, "0"])).unwrap_err();
            assert_eq!(
                error,
                format!("{flag} must be a power of two (1, 2, 4, ...), got 0")
            );
        }
    }

    #[test]
    fn parses_and_validates_ranks() {
        let options = parse(&args(&["run", "scaling", "--ranks", "2"])).unwrap();
        assert_eq!(options.ranks, Some(2));
        assert_eq!(profile_for(&options).ranks, 2);
        assert!(parse(&args(&["run", "fig10", "--ranks", "3"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--ranks"])).is_err());
        // Unset means "use the organization's own rank count".
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).ranks,
            0
        );
    }

    #[test]
    fn parses_and_validates_device_profiles() {
        let options = parse(&args(&["run", "fig10", "--profile", "vendor-a"])).unwrap();
        assert_eq!(options.device_profile, Some(DeviceProfile::VendorA));
        assert_eq!(profile_for(&options).device_profile, DeviceProfile::VendorA);
        let error = parse(&args(&["run", "fig10", "--profile", "vendor-z"])).unwrap_err();
        assert!(error.contains("unknown device profile `vendor-z`"));
        assert!(error.contains("jedec-baseline"));
        assert!(parse(&args(&["run", "fig10", "--profile"])).is_err());
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).device_profile,
            DeviceProfile::JedecBaseline
        );
    }

    #[test]
    fn parses_engine_selection() {
        let options = parse(&args(&["run", "fig10", "--engine", "tick"])).unwrap();
        assert_eq!(options.engine, EngineKind::Tick);
        let options = parse(&args(&["run", "fig10", "--engine", "event"])).unwrap();
        assert_eq!(options.engine, EngineKind::Event);
        assert_eq!(
            parse(&args(&["run", "fig10"])).unwrap().engine,
            EngineKind::Event
        );
        assert!(parse(&args(&["run", "fig10", "--engine", "warp"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--engine"])).is_err());
    }

    #[test]
    fn parses_and_validates_sim_threads() {
        let options = parse(&args(&["run", "scaling", "--sim-threads", "4"])).unwrap();
        assert_eq!(options.sim_threads, 4);
        assert_eq!(parse(&args(&["run", "scaling"])).unwrap().sim_threads, 1);
        assert!(parse(&args(&["run", "scaling", "--sim-threads", "0"])).is_err());
        assert!(parse(&args(&["run", "scaling", "--sim-threads", "two"])).is_err());
        assert!(parse(&args(&["run", "scaling", "--sim-threads"])).is_err());
    }

    #[test]
    fn listing_and_unknown_campaigns_exit_cleanly() {
        assert_eq!(run_cli(&args(&["list"])), 0);
        assert_eq!(run_cli(&args(&["mitigations"])), 0);
        assert_eq!(run_cli(&args(&["attacks"])), 0);
        assert_eq!(run_cli(&args(&["profiles"])), 0);
        assert_eq!(run_cli(&args(&["help"])), 0);
        assert_eq!(run_cli(&args(&["run", "no-such-campaign"])), 2);
        assert_eq!(run_cli(&args(&["run"])), 2);
    }

    #[test]
    fn parses_bench_subcommands_and_commit() {
        let options = parse(&args(&[
            "bench",
            "sim",
            "--append",
            "BENCH_sim.json",
            "--commit",
            "abc1234",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Bench);
        assert_eq!(options.names, vec!["sim".to_string()]);
        assert_eq!(options.append, Some(PathBuf::from("BENCH_sim.json")));
        assert_eq!(options.commit, Some("abc1234".to_string()));
        let options = parse(&args(&["bench", "trajectory", "a.json", "b.json"])).unwrap();
        assert_eq!(options.command, Command::Bench);
        assert_eq!(options.names, args(&["trajectory", "a.json", "b.json"]));
        assert!(parse(&args(&["store", "bench", "--commit"])).is_err());
        // `bench` without a recognised action is a usage error, not a panic.
        assert_eq!(run_cli(&args(&["bench"])), 2);
        assert_eq!(run_cli(&args(&["bench", "frobnicate"])), 2);
    }

    #[test]
    fn parses_and_validates_attack_slugs() {
        let options = parse(&args(&["run", "fig10", "--attack", "nsided8"])).unwrap();
        assert_eq!(options.attack, Some(AttackKind::ManySided { sides: 8 }));
        assert_eq!(
            profile_for(&options).attack,
            Some(AttackKind::ManySided { sides: 8 })
        );
        assert!(parse(&args(&["run", "fig10", "--attack", "bogus"])).is_err());
        assert!(parse(&args(&["run", "fig10", "--attack"])).is_err());
        assert_eq!(
            profile_for(&parse(&args(&["run", "fig10"])).unwrap()).attack,
            None
        );
    }
}
